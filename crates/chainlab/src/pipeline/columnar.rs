//! The columnar analyze path: fold straight off a mapped
//! [`DatasetReader`], no parse stage, workers sharded by row ranges.
//!
//! The TSV streaming path pays for a text parse of every row and funnels
//! the whole stream through one dispatch thread (the partition-dispatch
//! scan in [`super::ingest`]), because a chain's connections must reach
//! exactly one worker for the f64 fold order to match the sequential
//! reference. Columnar input removes both costs: fields decode with
//! offset arithmetic off the mapped columns, and workers take contiguous
//! *row ranges* instead of chain shards. Range sharding means one chain's
//! connections can land in several workers — which is sound here because
//! every on-disk row folds at weight 1.0, so all the f64 aggregates are
//! exact small integers and merging per-worker partials (in worker-index
//! order) is bit-identical to the sequential fold. The batch path's
//! fractional per-record weights are exactly why *it* cannot shard by
//! range and the columnar path can.

use super::categorize::{self, Prepared};
use super::enrich::CertIndex;
use super::ingest::{ChainAccum, IngestCounts};
use super::{resolve_threads, Analysis, Pipeline};
use crate::model::{CertRecord, ChainKey};
use certchain_colstore::{ColError, ColResult, DatasetReader, SslColumns, X509Columns};
use std::collections::HashMap;

impl Pipeline<'_> {
    /// Run the full analysis over an open columnar store. For a store
    /// converted from (or generated alongside) a TSV dataset, the result
    /// is byte-identical to [`Pipeline::analyze_stream`] over the Zeek
    /// readers, for every thread count.
    ///
    /// The first corrupt-data error aborts the analysis and is returned
    /// as-is (truncation is already caught by [`DatasetReader::open`]).
    pub fn analyze_colstore(&self, reader: &DatasetReader) -> Result<Analysis, ColError> {
        let threads = resolve_threads(self.options.threads);
        self.obs
            .add("colstore.rows_read", reader.ssl_rows() + reader.x509_rows());
        self.obs.set("colstore.bytes_mapped", reader.bytes_mapped());
        let (cert_index, unparseable) = {
            let _span = self.obs.stage("enrich");
            enrich_columns(&reader.x509()?)?
        };
        self.record_enrich(reader.x509_rows(), unparseable, cert_index.len());
        let (prepared, counts) = {
            let _span = self.obs.stage("ingest");
            ingest_columns(self, &reader.ssl()?, &cert_index, threads)?
        };
        Ok(self.finish(prepared, counts, threads))
    }
}

/// Enrich off the x509 columns: first occurrence of a fingerprint wins,
/// and a duplicate is skipped on the 4-byte fingerprint index alone —
/// the row's strings are never resolved. Returns the interned index and
/// the unparseable-row tally.
fn enrich_columns(cols: &X509Columns<'_>) -> ColResult<(CertIndex, u64)> {
    let mut cert_index: CertIndex = HashMap::new();
    let mut unparseable = 0u64;
    for row in 0..cols.rows {
        let fp = cols.fingerprint(row)?;
        if cert_index.contains_key(&fp) {
            continue;
        }
        let rec = cols.record(row)?;
        match CertRecord::from_record(&rec) {
            Some(cert) => {
                cert_index.insert(fp, std::sync::Arc::new(cert));
            }
            None => unparseable += 1,
        }
    }
    Ok((cert_index, unparseable))
}

/// Fold rows `lo..hi` into per-chain accumulators. This is the one body
/// both the sequential and the range-sharded parallel path run.
fn fold_range(
    cols: &SslColumns<'_>,
    lo: u64,
    hi: u64,
    cert_index: &CertIndex,
) -> ColResult<(HashMap<ChainKey, ChainAccum>, IngestCounts)> {
    let mut accums: HashMap<ChainKey, ChainAccum> = HashMap::new();
    let mut counts = IngestCounts::default();
    let mut fps = Vec::new();
    for row in lo..hi {
        counts.records += 1;
        cols.chain_fps_into(row, &mut fps)?;
        if fps.is_empty() {
            counts.no_chain += 1;
            continue;
        }
        if !fps.iter().all(|fp| cert_index.contains_key(fp)) {
            counts.unresolvable += 1;
            continue;
        }
        // Probe with the borrowed slice; allocate a key only on first
        // sight of a chain (same discipline as the streaming fold).
        if !accums.contains_key(fps.as_slice()) {
            accums.insert(ChainKey(fps.clone()), ChainAccum::default());
        }
        let entry = accums
            .get_mut(fps.as_slice())
            .expect("present or just inserted");
        let sni = cols.sni(row)?;
        entry.usage.add(
            cols.established(row),
            sni.is_some(),
            cols.resp_p(row),
            cols.orig_h(row),
            1.0,
        );
        if let Some(sni) = sni {
            entry.snis.insert(sni.to_string());
        }
    }
    Ok((accums, counts))
}

/// Ingest the ssl table: contiguous row ranges per worker, partials
/// merged in worker-index order, then one classification pass.
fn ingest_columns(
    pipe: &Pipeline<'_>,
    cols: &SslColumns<'_>,
    cert_index: &CertIndex,
    threads: usize,
) -> ColResult<(Vec<Prepared>, IngestCounts)> {
    let rows = cols.rows;
    let (accums, counts) = if threads <= 1 || rows < 2 {
        fold_range(cols, 0, rows, cert_index)?
    } else {
        let per = rows.div_ceil(threads as u64);
        let parts: Vec<ColResult<_>> = std::thread::scope(|scope| {
            let handles: Vec<_> = (0..threads as u64)
                .map(|w| {
                    let lo = (w * per).min(rows);
                    let hi = ((w + 1) * per).min(rows);
                    scope.spawn(move || fold_range(cols, lo, hi, cert_index))
                })
                .collect();
            handles
                .into_iter()
                .map(|h| h.join().expect("columnar ingest worker panicked"))
                .collect()
        });
        let mut merged: HashMap<ChainKey, ChainAccum> = HashMap::new();
        let mut counts = IngestCounts::default();
        for part in parts {
            let (accums, c) = part?;
            counts.records += c.records;
            counts.no_chain += c.no_chain;
            counts.unresolvable += c.unresolvable;
            // srclint: commutative -- per-chain merge into a keyed map; ChainAccum::merge is commutative at unit weight, so worker-map iteration order is invisible
            for (key, accum) in accums {
                match merged.get_mut(&key) {
                    Some(existing) => existing.merge(accum),
                    None => {
                        merged.insert(key, accum);
                    }
                }
            }
        }
        (merged, counts)
    };
    pipe.obs.finish_progress(counts.records);
    Ok((categorize::prepare(pipe, accums, cert_index), counts))
}
