//! Stage 4 — finalize: pass 2 over the sorted chains and [`Analysis`]
//! assembly.
//!
//! Everything here operates on the `ChainKey`-sorted `Prepared` vector,
//! which is the single total order the determinism guarantee hangs on:
//! contiguous chunks concatenate back in order, so the output sequence
//! equals the sequential one for every thread count.

use super::categorize::{self, Prepared};
use super::{Analysis, ChainAnalysis, Pipeline};
use crate::crosssign::CrossSignRegistry;
use certchain_x509::Fingerprint;
use std::collections::BTreeSet;

/// Pass 2: per-chain categorization and structure analysis, in parallel
/// over contiguous chunks of the sorted `prepared` vector.
pub(crate) fn analyze_chains(
    pipe: &Pipeline<'_>,
    prepared: Vec<Prepared>,
    entities: &BTreeSet<String>,
    registry: &CrossSignRegistry,
    threads: usize,
) -> (Vec<ChainAnalysis>, BTreeSet<Fingerprint>) {
    let total = prepared.len();
    let analyze_part = |part: Vec<Prepared>| {
        let mut chains = Vec::with_capacity(part.len());
        let mut distinct: BTreeSet<Fingerprint> = BTreeSet::new();
        for p in part {
            distinct.extend(p.key.0.iter().copied());
            chains.push(categorize::analyze_one(pipe, p, entities, registry));
        }
        (chains, distinct)
    };
    if threads <= 1 || total < 2 {
        return analyze_part(prepared);
    }
    let chunk_size = total.div_ceil(threads);
    let mut parts: Vec<Vec<Prepared>> = Vec::with_capacity(threads);
    let mut rest = prepared;
    while rest.len() > chunk_size {
        let tail = rest.split_off(chunk_size);
        parts.push(std::mem::replace(&mut rest, tail));
    }
    parts.push(rest);
    let results: Vec<(Vec<ChainAnalysis>, BTreeSet<Fingerprint>)> = std::thread::scope(|scope| {
        let handles: Vec<_> = parts
            .into_iter()
            .map(|part| scope.spawn(|| analyze_part(part)))
            .collect();
        handles
            .into_iter()
            .map(|h| h.join().expect("pass-2 worker panicked"))
            .collect()
    });
    let mut chains = Vec::with_capacity(total);
    let mut distinct = BTreeSet::new();
    for (part, part_distinct) in results {
        chains.extend(part);
        distinct.extend(part_distinct);
    }
    (chains, distinct)
}

/// Assemble the final [`Analysis`] value.
pub(crate) fn assemble(
    chains: Vec<ChainAnalysis>,
    distinct: BTreeSet<Fingerprint>,
    no_chain_records: u64,
    unresolvable_records: u64,
    interception_entities: BTreeSet<String>,
) -> Analysis {
    let index = chains
        .iter()
        .enumerate()
        .map(|(i, chain)| (chain.key.clone(), i))
        .collect();
    Analysis {
        chains,
        index,
        no_chain_records,
        unresolvable_records,
        distinct_certificates: distinct.len(),
        interception_entities,
    }
}
