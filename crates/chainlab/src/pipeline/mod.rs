//! The end-to-end analysis pipeline (Figure 2's "certificate chain
//! structure analyzer"), as four explicit stages:
//!
//! 1. [`ingest`] — fold the ssl.log record stream into per-chain
//!    accumulators, chunk by chunk with a fixed chunk size, so peak memory
//!    is O(distinct chains) rather than O(connections);
//! 2. [`enrich`] — intern x509.log rows into shared [`CertRecord`]s, one
//!    `Arc` per distinct fingerprint;
//! 3. [`categorize`] — interception-entity discovery (pass 1) and
//!    per-chain categorization + structure analysis (pass 2);
//! 4. [`finalize`] — the sorted merge and [`Analysis`] assembly that pin
//!    the byte-identical-across-thread-counts guarantee.
//!
//! Batch callers use [`Pipeline::analyze`] over in-memory slices; the
//! bounded-memory path is [`Pipeline::analyze_stream`], which consumes
//! `Result`-yielding record iterators (e.g. the streaming Zeek readers in
//! `certchain_netsim::zeek::stream`) and never materializes the connection
//! stream.

pub mod categorize;
pub mod columnar;
pub mod enrich;
pub mod finalize;
pub mod ingest;
pub(crate) mod observe;
pub mod state;

use crate::classify::CertClass;
use crate::crosssign::CrossSignRegistry;
use crate::hybrid::HybridCategory;
use crate::matchpath::PathReport;
use crate::model::{CertRecord, ChainKey};
use crate::usage::UsageStats;
use certchain_ctlog::DomainIndex;
use certchain_netsim::{SslRecord, X509Record};
use certchain_obs::{Progress, Registry, TraceJournal};
use certchain_trust::TrustDb;
use std::borrow::Borrow;
use std::collections::{BTreeSet, HashMap};
use std::sync::Arc;

pub use categorize::issuer_entity;
pub use state::{PipelineState, StateError};

/// §3.2.2 chain categories.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum ChainCategoryLabel {
    /// Exclusively public-DB-issued certificates.
    PublicOnly,
    /// Exclusively non-public-DB-issued certificates (interception
    /// excluded).
    NonPublicOnly,
    /// Both classes present.
    Hybrid,
    /// Issued by an entity identified as performing TLS interception.
    Interception,
}

/// Everything the pipeline learned about one distinct delivered chain.
#[derive(Debug, Clone)]
pub struct ChainAnalysis {
    /// Ordered fingerprints (the chain's identity).
    pub key: ChainKey,
    /// Resolved certificate records, delivery order. Certificates are
    /// interned once per fingerprint and shared across chains.
    pub certs: Vec<Arc<CertRecord>>,
    /// Per-certificate issuer classification.
    pub classes: Vec<CertClass>,
    /// §3.2.2 category.
    pub category: ChainCategoryLabel,
    /// Issuer–subject path report.
    pub path: PathReport,
    /// Hybrid taxonomy (only for hybrid chains).
    pub hybrid_category: Option<HybridCategory>,
    /// §4.2's 56-chain subgroup membership.
    pub pub_leaf_no_intermediate: bool,
    /// Whether the chain is in the DGA cluster (§4.3).
    pub is_dga: bool,
    /// For complete non-public→public chains: is the leaf CT-logged?
    pub leaf_ct_logged: Option<bool>,
    /// The intercepting entity key, when category is Interception.
    pub interception_entity: Option<String>,
    /// SNIs observed with this chain.
    pub snis: BTreeSet<String>,
    /// Aggregated usage over the chain's connections.
    pub usage: UsageStats,
}

/// Pipeline output.
#[derive(Debug)]
pub struct Analysis {
    /// Per-chain results.
    pub chains: Vec<ChainAnalysis>,
    /// Chain key → index into `chains`.
    pub index: HashMap<ChainKey, usize>,
    /// ssl.log records carrying no certificates (TLS 1.3 connections).
    pub no_chain_records: u64,
    /// Records referencing fingerprints absent from x509.log.
    pub unresolvable_records: u64,
    /// Distinct certificates seen across all analyzed chains.
    pub distinct_certificates: usize,
    /// The interception entities identified in pass 1.
    pub interception_entities: BTreeSet<String>,
}

/// A row-level predicate applied before any connection enters the
/// analysis. Filtered-out records are completely invisible: they are not
/// counted in `pipeline.ssl_records`, the no-chain tally, or the
/// unresolvable tally. That strong semantics is what lets the segmented
/// columnar path drop whole row bands via zone maps and category
/// digests — skipping a segment none of whose rows can match is then
/// *exactly* equivalent to testing every row, so filtered reports stay
/// byte-identical across the TSV, v1-columnar, and v2-columnar paths at
/// every thread count.
///
/// `port` and `sni` test record fields directly ([`RowFilter::admits`]);
/// `categories` tests the chain's structural category, which needs the
/// certificate table and trust DBs, so it is evaluated through a
/// [`crate::filtercat::CategoryOracle`] built after the x509 side has
/// fully folded.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct RowFilter {
    /// Keep only connections to this responder port.
    pub port: Option<u16>,
    /// Keep only connections that sent exactly this SNI.
    pub sni: Option<String>,
    /// Keep only connections whose chain's structural category
    /// ([`crate::filtercat::chain_category`]) is in the set.
    pub categories: Option<certchain_colstore::CategorySet>,
}

impl RowFilter {
    /// Whether the filter admits every record (the default).
    pub fn is_empty(&self) -> bool {
        self.port.is_none() && self.sni.is_none() && self.categories.is_none()
    }

    /// Whether a record with this responder port and SNI passes.
    pub fn admits(&self, resp_p: u16, sni: Option<&str>) -> bool {
        if let Some(p) = self.port {
            if resp_p != p {
                return false;
            }
        }
        match &self.sni {
            Some(want) => sni == Some(want.as_str()),
            None => true,
        }
    }
}

/// Tunable analysis options — the ablation knobs DESIGN.md calls out.
#[derive(Debug, Clone)]
pub struct PipelineOptions {
    /// Honor cross-signing disclosures during pair matching (§4.2 /
    /// Appendix D.1). Disabling reproduces the naive matcher and its
    /// false mismatches on cross-signed chains.
    pub honor_cross_signing: bool,
    /// Minimum number of distinct forged domains before an interception
    /// candidate is confirmed (the paper's manual-investigation step).
    /// 1 disables corroboration; the default is 2.
    pub confirmation_min_domains: usize,
    /// Worker threads for the parallel stages. `0` (the default) resolves
    /// to the machine's available parallelism; `1` runs the fully
    /// sequential path. The output is byte-identical for every value:
    /// chains are sharded by a stable hash of their fingerprint sequence,
    /// the record stream is partitioned to workers in order (so each
    /// chain's connections are folded in global record order), and
    /// per-chain results merge in `ChainKey` order.
    pub threads: usize,
    /// Connection predicate; the default admits everything. See
    /// [`RowFilter`] for the filtered-rows-are-invisible semantics.
    pub filter: RowFilter,
}

impl Default for PipelineOptions {
    fn default() -> PipelineOptions {
        PipelineOptions {
            honor_cross_signing: true,
            confirmation_min_domains: 2,
            threads: 0,
            filter: RowFilter::default(),
        }
    }
}

/// Resolve a thread-count knob: `0` means available parallelism.
pub(crate) fn resolve_threads(requested: usize) -> usize {
    if requested != 0 {
        requested
    } else {
        // srclint: allow(det-thread-sensitivity) -- knob resolution only; output is byte-identical for every thread count (determinism regression test)
        std::thread::available_parallelism()
            .map(|n| n.get())
            .unwrap_or(1)
    }
}

/// The configured analyzer.
pub struct Pipeline<'a> {
    pub(crate) trust: &'a TrustDb,
    pub(crate) ct: &'a DomainIndex,
    pub(crate) crosssign: CrossSignRegistry,
    pub(crate) options: PipelineOptions,
    pub(crate) obs: observe::PipelineObs,
}

impl<'a> Pipeline<'a> {
    /// Configure the analyzer.
    pub fn new(
        trust: &'a TrustDb,
        ct: &'a DomainIndex,
        crosssign: CrossSignRegistry,
    ) -> Pipeline<'a> {
        Pipeline::with_options(trust, ct, crosssign, PipelineOptions::default())
    }

    /// Configure with explicit [`PipelineOptions`] (ablation studies).
    pub fn with_options(
        trust: &'a TrustDb,
        ct: &'a DomainIndex,
        crosssign: CrossSignRegistry,
        options: PipelineOptions,
    ) -> Pipeline<'a> {
        Pipeline {
            trust,
            ct,
            crosssign,
            options,
            obs: observe::PipelineObs::default(),
        }
    }

    /// Attach a metrics registry. Every stage then records durations into
    /// the registry's timing section and per-stage record counts into its
    /// deterministic section; the analysis output itself is byte-identical
    /// with or without a registry attached (pinned by a regression test).
    pub fn with_metrics(mut self, registry: Arc<Registry>) -> Pipeline<'a> {
        self.obs.metrics = Some(registry);
        self
    }

    /// Attach a progress reporter, driven from the ingest dispatch loop
    /// (records/sec, chunk queue depth, per-worker throughput). Progress
    /// goes to stderr only and never into any emitted artifact.
    pub fn with_progress(mut self, progress: Arc<Progress>) -> Pipeline<'a> {
        self.obs.progress = Some(progress);
        self
    }

    /// Attach a trace journal. Fold, finalize, and dispatch stages then
    /// emit spans into the journal's bounded ring. Traces are wall-clock
    /// data and live strictly on the timing side of the observability
    /// split: the analysis output and the deterministic metrics section
    /// are byte-identical with tracing on or off (pinned by tests).
    pub fn with_trace(mut self, journal: Arc<TraceJournal>) -> Pipeline<'a> {
        self.obs.trace = Some(journal);
        self
    }

    /// Run the full analysis over in-memory record slices.
    ///
    /// `weights`, when given, must align with `ssl` and carries each
    /// record's statistical weight (1.0 when absent). The pipeline itself
    /// is weight-agnostic; weights only flow into the usage aggregates.
    ///
    /// The stages run on [`PipelineOptions::threads`] workers; the result
    /// is byte-identical for every thread count (see the options docs).
    pub fn analyze(
        &self,
        ssl: &[SslRecord],
        x509: &[X509Record],
        weights: Option<&[f64]>,
    ) -> Analysis {
        if let Some(w) = weights {
            assert_eq!(w.len(), ssl.len(), "weights must align with ssl records");
        }
        let threads = resolve_threads(self.options.threads);
        let mut state = PipelineState::new();
        self.fold_x509_slice(&mut state, x509, threads);
        let weight_of = |i: usize| weights.map(|w| w[i]).unwrap_or(1.0);
        let records = ssl.iter().enumerate().map(|(i, rec)| (rec, weight_of(i)));
        {
            let _span = self.obs.stage("ingest");
            let _trace = self.obs.trace_span("pipeline.ingest");
            let oracle = self.category_oracle(&state);
            let (accums, counts) = ingest::accumulate(self, records, threads, oracle.as_ref());
            state.absorb(accums, counts);
        }
        self.finalize_state(&state)
    }

    /// Run the full analysis over streaming record sources — the
    /// bounded-memory path. `x509` is drained first (the certificate index
    /// must exist before connections can be resolved); `ssl` is then
    /// consumed chunk by chunk, so peak memory is O(distinct chains +
    /// distinct certificates), never O(connections). Every record carries
    /// weight 1.0 (real Zeek logs have no statistical weights).
    ///
    /// The first reader error aborts the analysis and is returned as-is.
    /// For well-formed input the result is byte-identical to
    /// [`Pipeline::analyze`] over the collected records, for every thread
    /// count.
    pub fn analyze_stream<E, I, J>(&self, ssl: I, x509: J) -> Result<Analysis, E>
    where
        I: Iterator<Item = Result<SslRecord, E>>,
        J: Iterator<Item = Result<X509Record, E>>,
    {
        let mut state = PipelineState::new();
        self.fold_x509_stream(&mut state, x509)?;
        self.fold_ssl_stream(&mut state, ssl)?;
        Ok(self.finalize_state(&state))
    }

    /// Build the category predicate for the record paths, when the
    /// filter asks for one. Must run only after the x509 side has fully
    /// folded into `state` — the oracle snapshots the certificate table,
    /// and a partial table would call resolvable chains `incomplete`.
    pub(crate) fn category_oracle(
        &self,
        state: &PipelineState,
    ) -> Option<crate::filtercat::CategoryOracle> {
        self.options
            .filter
            .categories
            .map(|set| state.category_oracle(set, self.trust))
    }

    /// Record enrich-stage accounting: row totals, parse failures, and
    /// the interned-index size (all thread-count invariant). The intern
    /// hit rate is derivable as `1 - certs_interned / x509_rows`.
    fn record_enrich(&self, rows: u64, unparseable: u64, interned: usize) {
        self.obs.add("pipeline.x509_rows", rows);
        self.obs.add("pipeline.x509_unparseable_rows", unparseable);
        self.obs.set("pipeline.certs_interned", interned as u64);
    }

    /// The stages downstream of accumulation, shared by the batch and
    /// streaming paths: sorted merge, pass 1, pass 2, assembly.
    fn finish(
        &self,
        mut prepared: Vec<categorize::Prepared>,
        counts: ingest::IngestCounts,
        threads: usize,
    ) -> Analysis {
        // Ingest accounting: commutative integer sums plus the merged
        // chain set's size and length distribution — all invariant across
        // thread counts by the same argument as the tables themselves.
        self.obs.add("pipeline.ssl_records", counts.records);
        self.obs.add("pipeline.no_chain_records", counts.no_chain);
        self.obs
            .add("pipeline.unresolvable_records", counts.unresolvable);
        self.obs
            .set("pipeline.distinct_chains", prepared.len() as u64);
        if let Some(r) = &self.obs.metrics {
            let lengths = r.histogram("pipeline.chain_length");
            for p in &prepared {
                lengths.observe(p.key.0.len() as u64);
            }
        }

        // A single total order over chains: everything downstream —
        // pass-1 scans, pass-2 chunking, the output vector — derives from
        // it, which is what makes the result thread-count-invariant.
        prepared.sort_by(|a, b| a.key.cmp(&b.key));

        // Pass 1: identify interception entities via CT cross-referencing
        // over SNI-bearing observations. The paper confirmed candidates
        // "through manual investigation"; the automatic proxy here is
        // corroboration — an entity must be seen forging at least two
        // distinct domains.
        let interception_entities = {
            let _span = self.obs.stage("categorize");
            let _trace = self.obs.trace_span("pipeline.categorize");
            categorize::find_entities(self, &prepared, threads)
        };

        // Pass 2: categorize every chain and run structure analysis. The
        // effective registry is resolved once, outside the per-chain work.
        let _span = self.obs.stage("finalize");
        let trace = self.obs.trace_span("pipeline.finalize");
        if let Some(t) = &trace {
            t.attr("distinct_chains", prepared.len().to_string());
            t.attr("threads", threads.to_string());
        }
        let empty_registry = CrossSignRegistry::new();
        let registry = if self.options.honor_cross_signing {
            &self.crosssign
        } else {
            &empty_registry
        };
        let (chains, distinct) =
            finalize::analyze_chains(self, prepared, &interception_entities, registry, threads);
        let analysis = finalize::assemble(
            chains,
            distinct,
            counts.no_chain,
            counts.unresolvable,
            interception_entities,
        );
        self.obs.set(
            "pipeline.distinct_certificates",
            analysis.distinct_certificates as u64,
        );
        self.obs.set(
            "pipeline.interception_entities",
            analysis.interception_entities.len() as u64,
        );
        analysis
    }
}

/// Iterator adapter: yields `(record, 1.0)` until the first `Err`, which
/// is parked in `err` and ends the stream. This lets the infallible
/// accumulation engine drive fallible sources without buffering them.
pub(crate) struct FuseOnErr<'e, E, I> {
    pub(crate) inner: I,
    pub(crate) err: &'e mut Option<E>,
}

impl<E, I, T> Iterator for FuseOnErr<'_, E, I>
where
    I: Iterator<Item = Result<T, E>>,
{
    type Item = (T, f64);

    fn next(&mut self) -> Option<(T, f64)> {
        if self.err.is_some() {
            return None;
        }
        match self.inner.next()? {
            Ok(rec) => Some((rec, 1.0)),
            Err(e) => {
                *self.err = Some(e);
                None
            }
        }
    }
}

/// Marker trait bound used by the accumulation engine: it folds either
/// borrowed records (batch) or owned records (streaming).
pub(crate) trait SslItem: Borrow<SslRecord> + Send {}
impl<T: Borrow<SslRecord> + Send> SslItem for T {}

impl Analysis {
    /// Chains of one category.
    pub fn chains_in(&self, category: ChainCategoryLabel) -> impl Iterator<Item = &ChainAnalysis> {
        self.chains.iter().filter(move |c| c.category == category)
    }

    /// Weighted usage aggregate over a chain subset.
    pub fn usage_of(&self, mut pred: impl FnMut(&ChainAnalysis) -> bool) -> UsageStats {
        let mut out = UsageStats::default();
        for chain in self.chains.iter().filter(|c| pred(c)) {
            out.merge(&chain.usage);
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use certchain_workload::{CampusProfile, CampusTrace};

    fn analysis() -> &'static (CampusTrace, Analysis) {
        static CELL: std::sync::OnceLock<(CampusTrace, Analysis)> = std::sync::OnceLock::new();
        CELL.get_or_init(|| {
            let trace = CampusTrace::generate(CampusProfile::quick());
            let weights: Vec<f64> = trace.conn_meta.iter().map(|m| m.weight).collect();
            let pipeline = Pipeline::new(
                &trace.eco.trust,
                &trace.ct_index,
                CrossSignRegistry::from_disclosures(&trace.cross_sign_disclosures),
            );
            let analysis =
                pipeline.analyze(&trace.ssl_records, &trace.x509_records, Some(&weights));
            // `analysis` borrows nothing from `trace` (all owned data), so
            // moving both into the cell is fine.
            (trace, analysis)
        })
    }

    #[test]
    fn hybrid_count_is_exactly_321() {
        let (_trace, analysis) = analysis();
        let hybrid = analysis.chains_in(ChainCategoryLabel::Hybrid).count();
        assert_eq!(hybrid, 321);
    }

    #[test]
    fn table3_categories_from_logs_alone() {
        use crate::hybrid::HybridCategory as H;
        let (_trace, analysis) = analysis();
        let mut complete_np = 0;
        let mut complete_prv = 0;
        let mut contains = 0;
        let mut no_path = 0;
        for c in analysis.chains_in(ChainCategoryLabel::Hybrid) {
            match c.hybrid_category.expect("hybrid chains are categorized") {
                H::CompleteNonPubToPub => complete_np += 1,
                H::CompletePubToPrv => complete_prv += 1,
                H::ContainsPath => contains += 1,
                H::NoPath(_) => no_path += 1,
            }
        }
        assert_eq!(complete_np, 26, "Table 3: non-pub chained to pub");
        assert_eq!(complete_prv, 10, "Table 3: pub chained to prv");
        assert_eq!(contains, 70, "Table 3: contains a matched path");
        assert_eq!(no_path, 215, "Table 3: no matched path");
    }

    #[test]
    fn table7_rows_recovered() {
        use crate::hybrid::{HybridCategory as H, NoPathCategory as N};
        let (_trace, analysis) = analysis();
        let mut counts: HashMap<N, usize> = HashMap::new();
        for c in analysis.chains_in(ChainCategoryLabel::Hybrid) {
            if let Some(H::NoPath(n)) = c.hybrid_category {
                *counts.entry(n).or_default() += 1;
            }
        }
        assert_eq!(counts[&N::SelfSignedLeafMismatches], 108);
        assert_eq!(counts[&N::SelfSignedLeafValidSubchain], 13);
        assert_eq!(counts[&N::AllMismatched], 61);
        assert_eq!(counts[&N::PartialMismatched], 27);
        assert_eq!(counts[&N::RootAppendedToValidSubchain], 5);
        assert_eq!(counts[&N::RootAndMismatches], 1);
    }

    #[test]
    fn fifty_six_group_recovered() {
        let (_trace, analysis) = analysis();
        let in_56 = analysis
            .chains
            .iter()
            .filter(|c| c.pub_leaf_no_intermediate)
            .count();
        assert_eq!(in_56, 56);
    }

    #[test]
    fn ct_compliance_all_logged() {
        let (_trace, analysis) = analysis();
        let logged: Vec<_> = analysis
            .chains
            .iter()
            .filter_map(|c| c.leaf_ct_logged)
            .collect();
        assert_eq!(logged.len(), 26);
        assert!(logged.iter().all(|&l| l), "§4.2: all 26 leaves CT-logged");
    }

    #[test]
    fn interception_entities_found() {
        let (trace, analysis) = analysis();
        // The generator plants 80 vendors; the detector should find most
        // of them (the single-cert and no-SNI tails are only attributable
        // via entity matching, which is exactly what pass 2 does).
        assert!(
            analysis.interception_entities.len() >= 60,
            "found {} entities",
            analysis.interception_entities.len()
        );
        // And interception chains should be a large population.
        let interception = analysis.chains_in(ChainCategoryLabel::Interception).count();
        let truth_interception = trace
            .servers
            .iter()
            .filter(|s| {
                matches!(
                    s.category,
                    certchain_workload::trace::ChainCategory::Interception(_)
                )
            })
            .count();
        // Detection is best-effort (the paper's caveat): we must find most
        // but not necessarily all.
        assert!(
            interception as f64 > truth_interception as f64 * 0.9,
            "detected {interception} of {truth_interception}"
        );
    }

    #[test]
    fn undetectable_interception_misclassifies_as_nonpub() {
        let (trace, analysis) = analysis();
        // Appendix B: chains forging non-CT domains evade detection and
        // land in non-public-only — confirm at least one such chain.
        let mut evaded = 0;
        for (key, &server_idx) in &trace.truth.by_chain {
            let server = &trace.servers[server_idx];
            let truly_interception = matches!(
                server.category,
                certchain_workload::trace::ChainCategory::Interception(_)
            );
            if !truly_interception {
                continue;
            }
            let Some(&idx) = analysis.index.get(&ChainKey(key.clone())) else {
                continue;
            };
            if analysis.chains[idx].category == ChainCategoryLabel::NonPublicOnly {
                evaded += 1;
            }
        }
        assert!(evaded > 0, "the Appendix-B caveat should manifest");
    }

    #[test]
    fn dga_cluster_detected() {
        let (_trace, analysis) = analysis();
        let dga = analysis.chains.iter().filter(|c| c.is_dga).count();
        assert_eq!(dga, 30, "the generated DGA cluster is fully recovered");
    }

    #[test]
    fn hybrid_establishment_rates() {
        use crate::hybrid::HybridCategory as H;
        let (_trace, analysis) = analysis();
        let complete = analysis.usage_of(|c| {
            matches!(
                c.hybrid_category,
                Some(H::CompleteNonPubToPub | H::CompletePubToPrv)
            )
        });
        let contains = analysis.usage_of(|c| matches!(c.hybrid_category, Some(H::ContainsPath)));
        let no_path = analysis.usage_of(|c| matches!(c.hybrid_category, Some(H::NoPath(_))));
        assert!((complete.established_rate() - 0.9756).abs() < 0.01);
        assert!((contains.established_rate() - 0.9204).abs() < 0.01);
        assert!((no_path.established_rate() - 0.5742).abs() < 0.015);
    }

    #[test]
    fn classification_agrees_with_ground_truth() {
        use certchain_workload::trace::ChainCategory as Truth;
        let (trace, analysis) = analysis();
        let mut agree = 0u64;
        let mut total = 0u64;
        for (key, &server_idx) in &trace.truth.by_chain {
            let Some(&idx) = analysis.index.get(&ChainKey(key.clone())) else {
                continue;
            };
            let got = analysis.chains[idx].category;
            let want = &trace.servers[server_idx].category;
            total += 1;
            let matches = matches!(
                (got, want),
                (ChainCategoryLabel::PublicOnly, Truth::PublicOnly)
                    | (ChainCategoryLabel::NonPublicOnly, Truth::NonPublicOnly(_))
                    | (ChainCategoryLabel::Hybrid, Truth::Hybrid(_))
                    | (ChainCategoryLabel::Interception, Truth::Interception(_))
            );
            if matches {
                agree += 1;
            }
        }
        let accuracy = agree as f64 / total as f64;
        assert!(
            accuracy > 0.97,
            "pipeline/ground-truth agreement = {accuracy}"
        );
    }

    #[test]
    fn tls13_records_are_skipped() {
        let (_trace, analysis) = analysis();
        assert!(analysis.no_chain_records > 0);
        assert_eq!(analysis.unresolvable_records, 0);
    }

    #[test]
    fn stream_analysis_matches_batch() {
        let (trace, _analysis) = analysis();
        let pipeline = Pipeline::new(
            &trace.eco.trust,
            &trace.ct_index,
            CrossSignRegistry::from_disclosures(&trace.cross_sign_disclosures),
        );
        // Unweighted batch over the in-memory records...
        let batch = pipeline.analyze(&trace.ssl_records, &trace.x509_records, None);
        // ...must equal the streaming path over the same records (every
        // record Ok, weight 1.0), for sequential and parallel runs.
        for threads in [1usize, 3] {
            let pipeline = Pipeline::with_options(
                &trace.eco.trust,
                &trace.ct_index,
                CrossSignRegistry::from_disclosures(&trace.cross_sign_disclosures),
                PipelineOptions {
                    threads,
                    ..PipelineOptions::default()
                },
            );
            let streamed = pipeline
                .analyze_stream(
                    trace.ssl_records.iter().cloned().map(Ok::<_, ()>),
                    trace.x509_records.iter().cloned().map(Ok::<_, ()>),
                )
                .expect("no reader errors");
            assert_eq!(streamed.chains.len(), batch.chains.len());
            assert_eq!(streamed.no_chain_records, batch.no_chain_records);
            assert_eq!(streamed.distinct_certificates, batch.distinct_certificates);
            for (s, b) in streamed.chains.iter().zip(&batch.chains) {
                assert_eq!(s.key, b.key);
                assert_eq!(s.category, b.category);
                assert_eq!(s.usage.connections, b.usage.connections);
                assert_eq!(s.usage.established, b.usage.established);
                assert_eq!(s.snis, b.snis);
            }
        }
    }

    #[test]
    fn stream_analysis_propagates_reader_errors() {
        let (trace, _analysis) = analysis();
        let pipeline = Pipeline::new(
            &trace.eco.trust,
            &trace.ct_index,
            CrossSignRegistry::from_disclosures(&trace.cross_sign_disclosures),
        );
        let ssl = trace
            .ssl_records
            .iter()
            .take(100)
            .cloned()
            .map(Ok)
            .chain(std::iter::once(Err("bad row")));
        let x509 = trace.x509_records.iter().cloned().map(Ok);
        let err = pipeline.analyze_stream(ssl, x509).unwrap_err();
        assert_eq!(err, "bad row");
    }
}
