//! Stage 3 — categorize: classify certificates, discover interception
//! entities (pass 1), and run the per-chain categorization + structure
//! analysis body (pass 2).

use super::ingest::ChainAccum;
use super::{ChainAnalysis, ChainCategoryLabel, Pipeline};
use crate::classify::{classify, CertClass};
use crate::crosssign::CrossSignRegistry;
use crate::dga::is_dga_chain;
use crate::hybrid::{self, HybridCategory};
use crate::interception::{detect, InterceptionVerdict};
use crate::matchpath;
use crate::model::{CertRecord, ChainKey};
use crate::usage::UsageStats;
use certchain_x509::{DistinguishedName, Fingerprint};
use std::collections::{BTreeSet, HashMap};
use std::sync::Arc;

/// A chain with resolved certificates and classes, before pass 2.
pub(crate) struct Prepared {
    pub(crate) key: ChainKey,
    pub(crate) certs: Vec<Arc<CertRecord>>,
    pub(crate) classes: Vec<CertClass>,
    pub(crate) snis: BTreeSet<String>,
    pub(crate) usage: UsageStats,
}

/// Entity key for an issuer DN: the organization when present, otherwise
/// the common name, otherwise the whole DN string. This is the unit at
/// which the paper's manual investigation grouped interception issuers.
pub fn issuer_entity(dn: &DistinguishedName) -> String {
    dn.get(&certchain_x509::dn::AttrType::Organization)
        .or_else(|| dn.common_name())
        .map(str::to_string)
        .unwrap_or_else(|| dn.to_rfc4514())
}

/// Turn a shard's accumulators into classified [`Prepared`] chains.
pub(crate) fn prepare(
    pipe: &Pipeline<'_>,
    accums: HashMap<ChainKey, ChainAccum>,
    cert_index: &HashMap<Fingerprint, Arc<CertRecord>>,
) -> Vec<Prepared> {
    accums
        .into_iter()
        .map(|(key, accum)| {
            let certs: Vec<Arc<CertRecord>> =
                key.0.iter().map(|fp| Arc::clone(&cert_index[fp])).collect();
            let classes: Vec<CertClass> = certs.iter().map(|c| classify(c, pipe.trust)).collect();
            Prepared {
                key,
                certs,
                classes,
                snis: accum.snis,
                usage: accum.usage,
            }
        })
        .collect()
}

/// Pass-1 kernel: candidate entity → forged-domain set over `part`.
fn scan_entities<'p>(
    pipe: &Pipeline<'_>,
    part: &'p [Prepared],
) -> HashMap<String, BTreeSet<&'p str>> {
    let mut candidates: HashMap<String, BTreeSet<&'p str>> = HashMap::new();
    for p in part {
        for sni in &p.snis {
            if detect(&p.certs, Some(sni), pipe.trust, pipe.ct)
                == InterceptionVerdict::LikelyIntercepted
            {
                candidates
                    .entry(issuer_entity(&p.certs[0].issuer))
                    .or_default()
                    .insert(sni.as_str());
            }
        }
    }
    candidates
}

/// Pass 1 over the sorted chains: confirmed interception entities.
pub(crate) fn find_entities(
    pipe: &Pipeline<'_>,
    prepared: &[Prepared],
    threads: usize,
) -> BTreeSet<String> {
    let candidate_domains = if threads <= 1 || prepared.len() < 2 {
        scan_entities(pipe, prepared)
    } else {
        let chunk = prepared.len().div_ceil(threads);
        let maps: Vec<HashMap<String, BTreeSet<&str>>> = std::thread::scope(|scope| {
            let handles: Vec<_> = prepared
                .chunks(chunk)
                .map(|part| scope.spawn(|| scan_entities(pipe, part)))
                .collect();
            handles
                .into_iter()
                .map(|h| h.join().expect("pass-1 worker panicked"))
                .collect()
        });
        // Entity → domain-set union is order-insensitive.
        let mut merged: HashMap<String, BTreeSet<&str>> = HashMap::new();
        for map in maps {
            for (entity, domains) in map {
                merged.entry(entity).or_default().extend(domains);
            }
        }
        merged
    };
    candidate_domains
        .into_iter()
        .filter_map(|(entity, domains)| {
            (domains.len() >= pipe.options.confirmation_min_domains).then_some(entity)
        })
        .collect()
}

/// The per-chain body of pass 2.
pub(crate) fn analyze_one(
    pipe: &Pipeline<'_>,
    p: Prepared,
    entities: &BTreeSet<String>,
    registry: &CrossSignRegistry,
) -> ChainAnalysis {
    let any_public = p.classes.contains(&CertClass::PublicDbIssued);
    let all_public = p.classes.iter().all(|&c| c == CertClass::PublicDbIssued);
    let entity_hit = p
        .certs
        .iter()
        .map(|c| issuer_entity(&c.issuer))
        .find(|e| entities.contains(e));
    let category = if entity_hit.is_some() {
        ChainCategoryLabel::Interception
    } else if all_public {
        ChainCategoryLabel::PublicOnly
    } else if any_public {
        ChainCategoryLabel::Hybrid
    } else {
        ChainCategoryLabel::NonPublicOnly
    };
    let path = matchpath::analyze(&p.certs, registry);
    let hybrid_category = (category == ChainCategoryLabel::Hybrid)
        .then(|| hybrid::categorize(&p.certs, &p.classes, &path));
    let pub_leaf_no_intermediate = category == ChainCategoryLabel::Hybrid
        && matches!(hybrid_category, Some(HybridCategory::NoPath(_)))
        && hybrid::has_public_leaf_without_intermediate(&p.certs, &p.classes);
    let leaf_ct_logged = match hybrid_category {
        Some(HybridCategory::CompleteNonPubToPub) => {
            Some(pipe.ct.contains_fingerprint(&p.certs[0].fingerprint))
        }
        _ => None,
    };
    let is_dga = category == ChainCategoryLabel::NonPublicOnly && is_dga_chain(&p.certs);
    ChainAnalysis {
        key: p.key,
        certs: p.certs,
        classes: p.classes,
        category,
        path,
        hybrid_category,
        pub_leaf_no_intermediate,
        is_dga,
        leaf_ct_logged,
        interception_entity: entity_hit,
        snis: p.snis,
        usage: p.usage,
    }
}
