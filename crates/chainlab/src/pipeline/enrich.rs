//! Stage 2 — enrich: intern x509.log rows into shared certificate
//! records, one `Arc` per distinct fingerprint.
//!
//! Real campus logs repeat certificates enormously (every connection
//! re-logs the chain it saw), so the index is the compact side of the
//! dataset: O(distinct certificates) regardless of connection volume.
//! First occurrence wins, so re-logged rows never perturb the index and
//! both entry points agree on which row defines a fingerprint.

use crate::model::CertRecord;
use certchain_netsim::X509Record;
use certchain_x509::Fingerprint;
use std::collections::HashMap;
use std::sync::Arc;

/// The interned certificate index: fingerprint -> shared record.
pub(crate) type CertIndex = HashMap<Fingerprint, Arc<CertRecord>>;

/// One intern worker's output: interned pairs in input order, plus the
/// worker's unparseable-row tally.
type InternedChunk = (Vec<(Fingerprint, Arc<CertRecord>)>, u64);

/// Build the fingerprint → interned certificate index from an in-memory
/// slice. First occurrence in `x509` wins, matching the sequential fold:
/// per-worker chunks stay in input order and merge in chunk order.
/// Returns the index plus the count of rows that failed to parse into a
/// [`CertRecord`] (a per-row property, so the tally is chunk-order
/// independent and thread-count invariant).
pub(crate) fn intern_certs(x509: &[X509Record], threads: usize) -> (CertIndex, u64) {
    let mut cert_index: CertIndex = HashMap::with_capacity(x509.len());
    let mut unparseable = 0u64;
    if threads <= 1 || x509.len() < 2 {
        for rec in x509 {
            match CertRecord::from_record(rec) {
                Some(cert) => {
                    cert_index
                        .entry(rec.fingerprint)
                        .or_insert_with(|| Arc::new(cert));
                }
                None => unparseable += 1,
            }
        }
        return (cert_index, unparseable);
    }
    let chunk = x509.len().div_ceil(threads);
    let parsed: Vec<InternedChunk> = std::thread::scope(|scope| {
        let handles: Vec<_> = x509
            .chunks(chunk)
            .map(|part| {
                scope.spawn(move || {
                    let mut bad = 0u64;
                    let ok: Vec<_> = part
                        .iter()
                        .filter_map(|rec| match CertRecord::from_record(rec) {
                            Some(cert) => Some((rec.fingerprint, Arc::new(cert))),
                            None => {
                                bad += 1;
                                None
                            }
                        })
                        .collect();
                    (ok, bad)
                })
            })
            .collect();
        handles
            .into_iter()
            .map(|h| h.join().expect("intern worker panicked"))
            .collect()
    });
    for (part, bad) in parsed {
        unparseable += bad;
        for (fp, cert) in part {
            cert_index.entry(fp).or_insert(cert);
        }
    }
    (cert_index, unparseable)
}

/// Build the index from a fallible record stream without ever holding the
/// raw rows: each row is parsed and either interned or dropped as a
/// duplicate, so peak memory is O(distinct certificates). The first
/// reader error aborts and is returned as-is. For well-formed input the
/// result equals [`intern_certs`] over the collected rows. Returns
/// `(index, rows_consumed, unparseable_rows)`.
pub(crate) fn intern_certs_stream<E>(
    x509: impl Iterator<Item = Result<X509Record, E>>,
) -> Result<(CertIndex, u64, u64), E> {
    let mut cert_index: CertIndex = HashMap::new();
    let mut rows = 0u64;
    let mut unparseable = 0u64;
    for rec in x509 {
        let rec = rec?;
        rows += 1;
        match CertRecord::from_record(&rec) {
            Some(cert) => {
                cert_index
                    .entry(rec.fingerprint)
                    .or_insert_with(|| Arc::new(cert));
            }
            None => unparseable += 1,
        }
    }
    Ok((cert_index, rows, unparseable))
}
