//! Stage 2 — enrich: the interned certificate index, one shared record
//! per distinct fingerprint.
//!
//! Real campus logs repeat certificates enormously (every connection
//! re-logs the chain it saw), so the index is the compact side of the
//! dataset: O(distinct certificates) regardless of connection volume.
//! First parseable occurrence wins, so re-logged rows never perturb the
//! index and every entry point agrees on which row defines a
//! fingerprint.
//!
//! The interning fold itself lives on [`super::state::PipelineState`]
//! (it is resumable state, folded incrementally from rotated x509
//! files); the columnar path builds the same index straight from the
//! store's fingerprint table. Both produce this [`CertIndex`] shape for
//! the finalize stages.

use crate::model::CertRecord;
use certchain_x509::Fingerprint;
use std::collections::HashMap;
use std::sync::Arc;

/// The interned certificate index: fingerprint -> shared record.
pub(crate) type CertIndex = HashMap<Fingerprint, Arc<CertRecord>>;
