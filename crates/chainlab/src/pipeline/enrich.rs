//! Stage 2 — enrich: intern x509.log rows into shared certificate
//! records, one `Arc` per distinct fingerprint.
//!
//! Real campus logs repeat certificates enormously (every connection
//! re-logs the chain it saw), so the index is the compact side of the
//! dataset: O(distinct certificates) regardless of connection volume.
//! First occurrence wins, so re-logged rows never perturb the index and
//! both entry points agree on which row defines a fingerprint.

use crate::model::CertRecord;
use certchain_netsim::X509Record;
use certchain_x509::Fingerprint;
use std::collections::HashMap;
use std::sync::Arc;

/// Build the fingerprint → interned certificate index from an in-memory
/// slice. First occurrence in `x509` wins, matching the sequential fold:
/// per-worker chunks stay in input order and merge in chunk order.
pub(crate) fn intern_certs(
    x509: &[X509Record],
    threads: usize,
) -> HashMap<Fingerprint, Arc<CertRecord>> {
    let mut cert_index: HashMap<Fingerprint, Arc<CertRecord>> = HashMap::with_capacity(x509.len());
    if threads <= 1 || x509.len() < 2 {
        for rec in x509 {
            if let Some(cert) = CertRecord::from_record(rec) {
                cert_index
                    .entry(rec.fingerprint)
                    .or_insert_with(|| Arc::new(cert));
            }
        }
        return cert_index;
    }
    let chunk = x509.len().div_ceil(threads);
    let parsed: Vec<Vec<(Fingerprint, Arc<CertRecord>)>> = std::thread::scope(|scope| {
        let handles: Vec<_> = x509
            .chunks(chunk)
            .map(|part| {
                scope.spawn(move || {
                    part.iter()
                        .filter_map(|rec| {
                            CertRecord::from_record(rec)
                                .map(|cert| (rec.fingerprint, Arc::new(cert)))
                        })
                        .collect::<Vec<_>>()
                })
            })
            .collect();
        handles
            .into_iter()
            .map(|h| h.join().expect("intern worker panicked"))
            .collect()
    });
    for part in parsed {
        for (fp, cert) in part {
            cert_index.entry(fp).or_insert(cert);
        }
    }
    cert_index
}

/// Build the index from a fallible record stream without ever holding the
/// raw rows: each row is parsed and either interned or dropped as a
/// duplicate, so peak memory is O(distinct certificates). The first
/// reader error aborts and is returned as-is. For well-formed input the
/// result equals [`intern_certs`] over the collected rows.
pub(crate) fn intern_certs_stream<E>(
    x509: impl Iterator<Item = Result<X509Record, E>>,
) -> Result<HashMap<Fingerprint, Arc<CertRecord>>, E> {
    let mut cert_index: HashMap<Fingerprint, Arc<CertRecord>> = HashMap::new();
    for rec in x509 {
        let rec = rec?;
        if let Some(cert) = CertRecord::from_record(&rec) {
            cert_index
                .entry(rec.fingerprint)
                .or_insert_with(|| Arc::new(cert));
        }
    }
    Ok(cert_index)
}
