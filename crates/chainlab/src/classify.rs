//! §3.2.1 certificate classification from log fields.

use crate::model::CertRecord;
use certchain_trust::TrustDb;

/// Per-certificate issuer classification.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum CertClass {
    /// The issuer (as an intermediate or root certificate) is listed in at
    /// least one major root store or CCADB.
    PublicDbIssued,
    /// The issuer appears in no public database (includes self-signed
    /// certificates absent from the databases).
    NonPublicDbIssued,
}

/// Classify one certificate record.
///
/// Mirrors [`TrustDb::classify`] but works on the log-level view: a
/// certificate is public-DB-issued when its issuer DN is listed, or when
/// the certificate itself (by fingerprint) is a listed root/intermediate.
pub fn classify(cert: &CertRecord, trust: &TrustDb) -> CertClass {
    if trust.is_listed_certificate(&cert.fingerprint) || trust.is_listed_subject(&cert.issuer) {
        CertClass::PublicDbIssued
    } else {
        CertClass::NonPublicDbIssued
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use certchain_asn1::Asn1Time;
    use certchain_cryptosim::KeyPair;
    use certchain_netsim::X509Record;
    use certchain_x509::{CertificateBuilder, DistinguishedName, Validity};
    use std::sync::Arc;

    fn setup() -> (TrustDb, DistinguishedName) {
        let kp = KeyPair::derive(1, "clf:root");
        let dn = DistinguishedName::cn_o("Clf Root", "Clf Org");
        let root = CertificateBuilder::new()
            .issuer(dn.clone())
            .subject(dn.clone())
            .validity(Validity::days_from(Asn1Time::from_unix(0), 3650))
            .ca(None)
            .sign(&kp)
            .into_arc();
        let mut trust = TrustDb::new();
        trust.add_root_everywhere(Arc::clone(&root));
        (trust, dn)
    }

    fn record_with_issuer(issuer: &DistinguishedName) -> CertRecord {
        let rec = X509Record {
            ts: Asn1Time::from_unix(0),
            fingerprint: certchain_x509::Fingerprint([9; 32]),
            cert_version: 3,
            serial: "01".into(),
            subject: "CN=s.example.org".into(),
            issuer: issuer.to_rfc4514(),
            not_before: Asn1Time::from_unix(0),
            not_after: Asn1Time::from_unix(1),
            basic_constraints_ca: None,
            path_len: None,
            san_dns: vec![],
        };
        CertRecord::from_record(&rec).unwrap()
    }

    #[test]
    fn listed_issuer_is_public() {
        let (trust, root_dn) = setup();
        let cert = record_with_issuer(&root_dn);
        assert_eq!(classify(&cert, &trust), CertClass::PublicDbIssued);
    }

    #[test]
    fn unknown_issuer_is_non_public() {
        let (trust, _) = setup();
        let cert = record_with_issuer(&DistinguishedName::cn("Nobody CA"));
        assert_eq!(classify(&cert, &trust), CertClass::NonPublicDbIssued);
    }

    #[test]
    fn dn_round_trip_through_log_string_preserves_classification() {
        // The classification goes through the RFC 4514 string and back —
        // this is the log-fidelity property the pipeline depends on.
        let (trust, root_dn) = setup();
        let rendered = root_dn.to_rfc4514();
        let reparsed = DistinguishedName::parse_rfc4514(&rendered).unwrap();
        assert!(trust.is_listed_subject(&reparsed));
    }
}
