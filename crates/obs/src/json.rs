//! A tiny self-contained JSON value type with a pretty printer and a
//! recursive-descent parser.
//!
//! The workspace builds hermetically with no external crates, so every
//! machine-readable surface (analysis summaries, bench artifacts, the
//! [`crate::MetricsSnapshot`]) carries its own JSON support. The subset
//! is exactly what those surfaces need:
//! objects (insertion-ordered), arrays, strings, f64 numbers, booleans,
//! and null; `\uXXXX` escapes (including surrogate pairs) are handled on
//! parse, and the printer escapes control characters.

use std::fmt;

/// A parsed or to-be-printed JSON value.
#[derive(Debug, Clone, PartialEq)]
pub enum JsonValue {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// Any number (integers are exact up to 2^53).
    Num(f64),
    /// A string.
    Str(String),
    /// An array.
    Arr(Vec<JsonValue>),
    /// An object; keys keep insertion order for stable output.
    Obj(Vec<(String, JsonValue)>),
}

/// Parse failure with a byte offset into the input.
#[derive(Debug, Clone, PartialEq)]
pub struct JsonError {
    /// Byte offset where parsing failed.
    pub offset: usize,
    /// What went wrong.
    pub message: String,
}

impl fmt::Display for JsonError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "JSON error at byte {}: {}", self.offset, self.message)
    }
}

impl std::error::Error for JsonError {}

impl JsonValue {
    /// Object member lookup (first match; `None` on non-objects too).
    pub fn get(&self, key: &str) -> Option<&JsonValue> {
        match self {
            JsonValue::Obj(members) => members.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// The value as f64, if a number.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            JsonValue::Num(n) => Some(*n),
            _ => None,
        }
    }

    /// The value as u64, if a non-negative integral number.
    pub fn as_u64(&self) -> Option<u64> {
        match self {
            JsonValue::Num(n) if *n >= 0.0 && n.fract() == 0.0 && *n <= u64::MAX as f64 => {
                Some(*n as u64)
            }
            _ => None,
        }
    }

    /// The value as &str, if a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            JsonValue::Str(s) => Some(s),
            _ => None,
        }
    }

    /// The value as a slice, if an array.
    pub fn as_arr(&self) -> Option<&[JsonValue]> {
        match self {
            JsonValue::Arr(items) => Some(items),
            _ => None,
        }
    }

    /// Object members in insertion order, if an object.
    pub fn as_obj(&self) -> Option<&[(String, JsonValue)]> {
        match self {
            JsonValue::Obj(members) => Some(members),
            _ => None,
        }
    }

    /// Pretty-print with two-space indentation.
    pub fn to_pretty(&self) -> String {
        let mut out = String::new();
        self.write_pretty(&mut out, 0);
        out
    }

    fn write_pretty(&self, out: &mut String, indent: usize) {
        match self {
            JsonValue::Null => out.push_str("null"),
            JsonValue::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
            JsonValue::Num(n) => write_number(out, *n),
            JsonValue::Str(s) => write_string(out, s),
            JsonValue::Arr(items) => {
                if items.is_empty() {
                    out.push_str("[]");
                    return;
                }
                out.push('[');
                for (i, item) in items.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    out.push('\n');
                    push_indent(out, indent + 1);
                    item.write_pretty(out, indent + 1);
                }
                out.push('\n');
                push_indent(out, indent);
                out.push(']');
            }
            JsonValue::Obj(members) => {
                if members.is_empty() {
                    out.push_str("{}");
                    return;
                }
                out.push('{');
                for (i, (key, value)) in members.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    out.push('\n');
                    push_indent(out, indent + 1);
                    write_string(out, key);
                    out.push_str(": ");
                    value.write_pretty(out, indent + 1);
                }
                out.push('\n');
                push_indent(out, indent);
                out.push('}');
            }
        }
    }
}

fn push_indent(out: &mut String, indent: usize) {
    for _ in 0..indent {
        out.push_str("  ");
    }
}

fn write_number(out: &mut String, n: f64) {
    if n.is_finite() {
        // Rust's Display for f64 is shortest-round-trip, so the value
        // survives print → parse exactly.
        out.push_str(&n.to_string());
    } else {
        // JSON has no NaN/Inf; match serde_json's lossy `null`.
        out.push_str("null");
    }
}

fn write_string(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                out.push_str(&format!("\\u{:04x}", c as u32));
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

/// Parse one JSON document (trailing whitespace allowed, nothing else).
pub fn parse(text: &str) -> Result<JsonValue, JsonError> {
    let mut parser = Parser {
        bytes: text.as_bytes(),
        pos: 0,
    };
    parser.skip_ws();
    let value = parser.value()?;
    parser.skip_ws();
    if parser.pos != parser.bytes.len() {
        return Err(parser.error("trailing characters after document"));
    }
    Ok(value)
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Parser<'a> {
    fn error(&self, message: impl Into<String>) -> JsonError {
        JsonError {
            offset: self.pos,
            message: message.into(),
        }
    }

    fn skip_ws(&mut self) {
        while let Some(&b) = self.bytes.get(self.pos) {
            if matches!(b, b' ' | b'\t' | b'\n' | b'\r') {
                self.pos += 1;
            } else {
                break;
            }
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn expect(&mut self, b: u8) -> Result<(), JsonError> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(self.error(format!("expected {:?}", b as char)))
        }
    }

    fn eat_literal(&mut self, lit: &str) -> bool {
        if self.bytes[self.pos..].starts_with(lit.as_bytes()) {
            self.pos += lit.len();
            true
        } else {
            false
        }
    }

    fn value(&mut self) -> Result<JsonValue, JsonError> {
        match self.peek() {
            Some(b'{') => self.object(),
            Some(b'[') => self.array(),
            Some(b'"') => Ok(JsonValue::Str(self.string()?)),
            Some(b't') | Some(b'f') => {
                if self.eat_literal("true") {
                    Ok(JsonValue::Bool(true))
                } else if self.eat_literal("false") {
                    Ok(JsonValue::Bool(false))
                } else {
                    Err(self.error("invalid literal"))
                }
            }
            Some(b'n') => {
                if self.eat_literal("null") {
                    Ok(JsonValue::Null)
                } else {
                    Err(self.error("invalid literal"))
                }
            }
            Some(b'-') | Some(b'0'..=b'9') => self.number(),
            _ => Err(self.error("expected a JSON value")),
        }
    }

    fn object(&mut self) -> Result<JsonValue, JsonError> {
        self.expect(b'{')?;
        let mut members = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(JsonValue::Obj(members));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.expect(b':')?;
            self.skip_ws();
            let value = self.value()?;
            members.push((key, value));
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(JsonValue::Obj(members));
                }
                _ => return Err(self.error("expected ',' or '}' in object")),
            }
        }
    }

    fn array(&mut self) -> Result<JsonValue, JsonError> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(JsonValue::Arr(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(JsonValue::Arr(items));
                }
                _ => return Err(self.error("expected ',' or ']' in array")),
            }
        }
    }

    fn string(&mut self) -> Result<String, JsonError> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            let b = self
                .peek()
                .ok_or_else(|| self.error("unterminated string"))?;
            match b {
                b'"' => {
                    self.pos += 1;
                    return Ok(out);
                }
                b'\\' => {
                    self.pos += 1;
                    let esc = self.peek().ok_or_else(|| self.error("dangling escape"))?;
                    self.pos += 1;
                    match esc {
                        b'"' => out.push('"'),
                        b'\\' => out.push('\\'),
                        b'/' => out.push('/'),
                        b'b' => out.push('\u{8}'),
                        b'f' => out.push('\u{c}'),
                        b'n' => out.push('\n'),
                        b'r' => out.push('\r'),
                        b't' => out.push('\t'),
                        b'u' => {
                            let hi = self.hex4()?;
                            let code = if (0xd800..0xdc00).contains(&hi) {
                                // Surrogate pair: \uXXXX\uXXXX.
                                if !self.eat_literal("\\u") {
                                    return Err(self.error("lone high surrogate"));
                                }
                                let lo = self.hex4()?;
                                if !(0xdc00..0xe000).contains(&lo) {
                                    return Err(self.error("invalid low surrogate"));
                                }
                                0x10000 + ((hi - 0xd800) << 10) + (lo - 0xdc00)
                            } else {
                                hi
                            };
                            out.push(
                                char::from_u32(code)
                                    .ok_or_else(|| self.error("invalid \\u escape"))?,
                            );
                        }
                        _ => return Err(self.error("unknown escape")),
                    }
                }
                _ => {
                    // Consume one UTF-8 scalar (input is a &str, so the
                    // byte stream is valid UTF-8 by construction).
                    let rest = &self.bytes[self.pos..];
                    let len = match rest[0] {
                        0x00..=0x7f => 1,
                        0xc0..=0xdf => 2,
                        0xe0..=0xef => 3,
                        _ => 4,
                    };
                    let s = std::str::from_utf8(&rest[..len])
                        .map_err(|_| self.error("invalid UTF-8"))?;
                    out.push_str(s);
                    self.pos += len;
                }
            }
        }
    }

    fn hex4(&mut self) -> Result<u32, JsonError> {
        let end = self.pos + 4;
        let slice = self
            .bytes
            .get(self.pos..end)
            .ok_or_else(|| self.error("truncated \\u escape"))?;
        let text = std::str::from_utf8(slice).map_err(|_| self.error("bad \\u escape"))?;
        let code = u32::from_str_radix(text, 16).map_err(|_| self.error("bad \\u escape"))?;
        self.pos = end;
        Ok(code)
    }

    fn number(&mut self) -> Result<JsonValue, JsonError> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        while matches!(self.peek(), Some(b'0'..=b'9')) {
            self.pos += 1;
        }
        if self.peek() == Some(b'.') {
            self.pos += 1;
            while matches!(self.peek(), Some(b'0'..=b'9')) {
                self.pos += 1;
            }
        }
        if matches!(self.peek(), Some(b'e') | Some(b'E')) {
            self.pos += 1;
            if matches!(self.peek(), Some(b'+') | Some(b'-')) {
                self.pos += 1;
            }
            while matches!(self.peek(), Some(b'0'..=b'9')) {
                self.pos += 1;
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos])
            .map_err(|_| self.error("bad number"))?;
        text.parse::<f64>()
            .map(JsonValue::Num)
            .map_err(|_| self.error("bad number"))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_trips_nested_document() {
        let doc = JsonValue::Obj(vec![
            (
                "categories".into(),
                JsonValue::Obj(vec![(
                    "public".into(),
                    JsonValue::Obj(vec![
                        ("chains".into(), JsonValue::Num(1043.0)),
                        ("established_rate".into(), JsonValue::Num(0.9756421)),
                    ]),
                )]),
            ),
            (
                "ct_logged".into(),
                JsonValue::Arr(vec![JsonValue::Num(26.0), JsonValue::Num(26.0)]),
            ),
            ("empty_obj".into(), JsonValue::Obj(vec![])),
            ("empty_arr".into(), JsonValue::Arr(vec![])),
            ("flag".into(), JsonValue::Bool(true)),
            ("nothing".into(), JsonValue::Null),
            (
                "name".into(),
                JsonValue::Str("quote \" slash \\ tab \t unicode é中".into()),
            ),
        ]);
        let text = doc.to_pretty();
        assert_eq!(parse(&text).unwrap(), doc);
    }

    #[test]
    fn floats_survive_exactly() {
        for n in [0.0, 1.5, 0.975_642_1, 1e-12, 123_456_789.123, -3.25] {
            let text = JsonValue::Num(n).to_pretty();
            assert_eq!(parse(&text).unwrap().as_f64(), Some(n));
        }
    }

    #[test]
    fn parses_escapes_and_surrogates() {
        let v = parse(r#""a\u00e9\ud83d\ude00\n""#).unwrap();
        assert_eq!(v.as_str(), Some("aé😀\n"));
    }

    #[test]
    fn rejects_garbage() {
        assert!(parse("{").is_err());
        assert!(parse("[1,]").is_err());
        assert!(parse("nul").is_err());
        assert!(parse("{\"a\":1} x").is_err());
        assert!(parse("\"\\ud800\"").is_err());
    }

    #[test]
    fn accessors() {
        let v = parse(r#"{"a": 3, "b": [1, 2], "c": "x"}"#).unwrap();
        assert_eq!(v.get("a").and_then(JsonValue::as_u64), Some(3));
        assert_eq!(
            v.get("b").and_then(JsonValue::as_arr).map(|a| a.len()),
            Some(2)
        );
        assert_eq!(v.get("c").and_then(JsonValue::as_str), Some("x"));
        assert_eq!(v.get("missing"), None);
        assert_eq!(JsonValue::Num(-1.0).as_u64(), None);
        assert_eq!(JsonValue::Num(1.5).as_u64(), None);
    }

    #[test]
    fn pretty_format_shape() {
        let v = JsonValue::Obj(vec![(
            "k".into(),
            JsonValue::Arr(vec![JsonValue::Num(1.0)]),
        )]);
        assert_eq!(v.to_pretty(), "{\n  \"k\": [\n    1\n  ]\n}");
    }
}
