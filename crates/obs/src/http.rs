//! A minimal, dependency-free HTTP/1.1 endpoint for exposing metrics
//! and report tables from a long-running `certchain serve` process.
//!
//! Scope is deliberately tiny: GET only, path-based routing, one
//! request per connection (`Connection: close`), bounded header
//! reading. That is enough for `curl`/scrapers and keeps the whole
//! server auditable — the workspace is hermetic (std-only), so this is
//! hand-rolled on [`std::net::TcpListener`] rather than pulled in as a
//! framework.
//!
//! Concurrency model: one acceptor thread, requests handled inline on
//! it. The handler runs behind an `Arc`, so it can capture shared state
//! (e.g. a mutex over the latest analysis snapshot). Shutdown is
//! cooperative: [`HttpServer::shutdown`] flips a flag and self-connects
//! to unblock `accept`, then joins the thread — no wall-clock polling,
//! which also keeps this file clean under srclint's `det-wallclock`
//! rule.

use std::io::{BufRead, BufReader, Read, Write};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;

/// Maximum bytes of request head (request line + headers) read before
/// the connection is rejected with `431`.
const MAX_HEAD_BYTES: usize = 16 * 1024;

/// A response produced by a request handler.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct HttpResponse {
    /// HTTP status code (200, 404, ...).
    pub status: u16,
    /// `Content-Type` header value.
    pub content_type: String,
    /// Response body bytes.
    pub body: Vec<u8>,
}

impl HttpResponse {
    /// A `200 OK` response with the given content type.
    pub fn ok(content_type: &str, body: impl Into<Vec<u8>>) -> HttpResponse {
        HttpResponse {
            status: 200,
            content_type: content_type.to_string(),
            body: body.into(),
        }
    }

    /// A plain-text `404 Not Found`.
    pub fn not_found() -> HttpResponse {
        HttpResponse {
            status: 404,
            content_type: "text/plain; charset=utf-8".to_string(),
            body: b"not found\n".to_vec(),
        }
    }

    fn status_text(&self) -> &'static str {
        match self.status {
            200 => "OK",
            400 => "Bad Request",
            404 => "Not Found",
            405 => "Method Not Allowed",
            431 => "Request Header Fields Too Large",
            _ => "Unknown",
        }
    }
}

/// Request handler: maps a GET path (e.g. `/metrics`) to a response.
pub type Handler = dyn Fn(&str) -> HttpResponse + Send + Sync;

/// A background HTTP listener serving GET requests via a shared handler.
pub struct HttpServer {
    addr: SocketAddr,
    stop: Arc<AtomicBool>,
    thread: Option<JoinHandle<()>>,
}

impl HttpServer {
    /// Bind `addr` (e.g. `"127.0.0.1:0"`) and start serving on a
    /// background thread. The handler receives the request path (query
    /// string stripped) for every well-formed GET.
    pub fn bind(addr: &str, handler: Arc<Handler>) -> std::io::Result<HttpServer> {
        let listener = TcpListener::bind(addr)?;
        let local = listener.local_addr()?;
        let stop = Arc::new(AtomicBool::new(false));
        let stop_flag = Arc::clone(&stop);
        let thread = std::thread::Builder::new()
            .name("certchain-http".to_string())
            .spawn(move || {
                for conn in listener.incoming() {
                    if stop_flag.load(Ordering::SeqCst) {
                        break;
                    }
                    if let Ok(stream) = conn {
                        // A slow or broken client must not wedge the
                        // acceptor; errors just drop the connection.
                        let _ = serve_one(stream, &*handler);
                    }
                }
            })?;
        Ok(HttpServer {
            addr: local,
            stop,
            thread: Some(thread),
        })
    }

    /// The bound address (useful with port `0`).
    pub fn local_addr(&self) -> SocketAddr {
        self.addr
    }

    /// Stop accepting, unblock the acceptor, and join the thread.
    /// Idempotent.
    pub fn shutdown(&mut self) {
        self.stop.store(true, Ordering::SeqCst);
        // Unblock the blocking accept with a throwaway connection.
        let _ = TcpStream::connect(self.addr);
        if let Some(t) = self.thread.take() {
            let _ = t.join();
        }
    }
}

impl Drop for HttpServer {
    fn drop(&mut self) {
        self.shutdown();
    }
}

/// Read one request head, dispatch, write one response, close.
fn serve_one(stream: TcpStream, handler: &Handler) -> std::io::Result<()> {
    let mut reader = BufReader::new(stream.try_clone()?).take(MAX_HEAD_BYTES as u64);
    let mut line = String::new();
    reader.read_line(&mut line)?;
    let response = match parse_request_line(&line) {
        Ok(path) => {
            // Drain headers until the blank line; the body (none for
            // GET) is ignored.
            loop {
                let mut header = String::new();
                let n = reader.read_line(&mut header)?;
                if n == 0 && reader.limit() == 0 {
                    return write_response(
                        stream,
                        &HttpResponse {
                            status: 431,
                            content_type: "text/plain; charset=utf-8".to_string(),
                            body: b"request head too large\n".to_vec(),
                        },
                    );
                }
                if n == 0 || header == "\r\n" || header == "\n" {
                    break;
                }
            }
            handler(&path)
        }
        Err(status) => HttpResponse {
            status,
            content_type: "text/plain; charset=utf-8".to_string(),
            body: match status {
                405 => b"only GET is supported\n".to_vec(),
                _ => b"malformed request\n".to_vec(),
            },
        },
    };
    write_response(stream, &response)
}

/// Parse `GET <path> HTTP/1.x`, returning the path with any query
/// string stripped, or the error status to answer with.
fn parse_request_line(line: &str) -> Result<String, u16> {
    let mut parts = line.split_whitespace();
    let method = parts.next().ok_or(400u16)?;
    let target = parts.next().ok_or(400u16)?;
    let version = parts.next().ok_or(400u16)?;
    if !version.starts_with("HTTP/1.") {
        return Err(400);
    }
    if method != "GET" {
        return Err(405);
    }
    if !target.starts_with('/') {
        return Err(400);
    }
    let path = target.split('?').next().unwrap_or(target);
    Ok(path.to_string())
}

fn write_response(mut stream: TcpStream, response: &HttpResponse) -> std::io::Result<()> {
    let head = format!(
        "HTTP/1.1 {} {}\r\nContent-Type: {}\r\nContent-Length: {}\r\nConnection: close\r\n\r\n",
        response.status,
        response.status_text(),
        response.content_type,
        response.body.len(),
    );
    stream.write_all(head.as_bytes())?;
    stream.write_all(&response.body)?;
    stream.flush()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn server() -> HttpServer {
        let handler: Arc<Handler> = Arc::new(|path: &str| match path {
            "/ping" => HttpResponse::ok("text/plain; charset=utf-8", "pong\n"),
            "/json" => HttpResponse::ok("application/json", "{\"ok\":true}"),
            _ => HttpResponse::not_found(),
        });
        HttpServer::bind("127.0.0.1:0", handler).expect("bind")
    }

    /// Issue one raw request, return (status line, body).
    fn request(addr: SocketAddr, raw: &str) -> (String, String) {
        let mut conn = TcpStream::connect(addr).expect("connect");
        conn.write_all(raw.as_bytes()).expect("write");
        let mut text = String::new();
        conn.read_to_string(&mut text).expect("read");
        let status = text.lines().next().unwrap_or("").to_string();
        let body = text
            .split_once("\r\n\r\n")
            .map(|(_, b)| b.to_string())
            .unwrap_or_default();
        (status, body)
    }

    #[test]
    fn get_routes_to_handler() {
        let srv = server();
        let (status, body) = request(srv.local_addr(), "GET /ping HTTP/1.1\r\nHost: x\r\n\r\n");
        assert_eq!(status, "HTTP/1.1 200 OK");
        assert_eq!(body, "pong\n");
    }

    #[test]
    fn query_string_is_stripped_and_unknown_is_404() {
        let srv = server();
        let (status, body) = request(
            srv.local_addr(),
            "GET /json?pretty=1 HTTP/1.1\r\nHost: x\r\n\r\n",
        );
        assert_eq!(status, "HTTP/1.1 200 OK");
        assert_eq!(body, "{\"ok\":true}");
        let (status, _) = request(srv.local_addr(), "GET /nope HTTP/1.1\r\n\r\n");
        assert_eq!(status, "HTTP/1.1 404 Not Found");
    }

    #[test]
    fn non_get_is_405_and_garbage_is_400() {
        let srv = server();
        let (status, _) = request(
            srv.local_addr(),
            "POST /ping HTTP/1.1\r\nContent-Length: 0\r\n\r\n",
        );
        assert_eq!(status, "HTTP/1.1 405 Method Not Allowed");
        let (status, _) = request(srv.local_addr(), "complete nonsense\r\n\r\n");
        assert_eq!(status, "HTTP/1.1 400 Bad Request");
    }

    #[test]
    fn shutdown_is_idempotent_and_unblocks_accept() {
        let mut srv = server();
        let addr = srv.local_addr();
        srv.shutdown();
        srv.shutdown();
        // After shutdown the port either refuses connections or — if the
        // OS briefly accepted into the closed listener's backlog — never
        // answers a request.
        if let Ok(mut conn) = TcpStream::connect(addr) {
            let _ = conn.write_all(b"GET /ping HTTP/1.1\r\n\r\n");
            let mut text = String::new();
            let _ = conn.read_to_string(&mut text);
            assert!(text.is_empty(), "shut-down server answered: {text:?}");
        }
    }

    #[test]
    fn serves_many_sequential_requests() {
        let srv = server();
        for _ in 0..16 {
            let (status, body) = request(srv.local_addr(), "GET /ping HTTP/1.0\r\n\r\n");
            assert_eq!(status, "HTTP/1.1 200 OK");
            assert_eq!(body, "pong\n");
        }
    }
}
