//! A minimal, dependency-free HTTP/1.1 endpoint for exposing metrics
//! and report tables from a long-running `certchain serve` process.
//!
//! Scope is deliberately tiny: GET only, path-based routing, one
//! request per connection (`Connection: close`), bounded header
//! reading. That is enough for `curl`/scrapers and keeps the whole
//! server auditable — the workspace is hermetic (std-only), so this is
//! hand-rolled on [`std::net::TcpListener`] rather than pulled in as a
//! framework.
//!
//! Handlers receive an [`HttpRequest`] carrying the path, the raw query
//! string, and the `Accept` header, which is what the serve endpoints
//! use for content negotiation (`/report?format=json`,
//! `/metrics?format=prometheus`, `Accept: application/json`, ...).
//!
//! Per-request accounting ([`HttpStats`]) tallies requests by path,
//! responses by status, and a latency histogram. Request arrival is
//! workload-driven wall-clock data, so the stats surface only in the
//! non-deterministic `timing` section of a snapshot — never in the
//! deterministic section.
//!
//! Concurrency model: one acceptor thread, requests handled inline on
//! it. The handler runs behind an `Arc`, so it can capture shared state
//! (e.g. a mutex over the latest analysis snapshot). Shutdown is
//! cooperative: [`HttpServer::shutdown`] flips a flag and self-connects
//! to unblock `accept`, then joins the thread. The only clock reads are
//! request-latency stopwatches from the sanctioned [`crate::clock`].

use crate::clock::Stopwatch;
use crate::metrics::Histogram;
use crate::snapshot::HttpSnapshot;
use std::collections::BTreeMap;
use std::io::{BufRead, BufReader, Read, Write};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Mutex};
use std::thread::JoinHandle;

/// Maximum bytes of request head (request line + headers) read before
/// the connection is rejected with `431`.
const MAX_HEAD_BYTES: usize = 16 * 1024;

/// Maximum distinct request paths tracked by [`HttpStats`] before new
/// paths collapse into the `<other>` bucket (scrapers probing random
/// URLs must not grow the map without bound).
const MAX_TRACKED_PATHS: usize = 32;

/// A parsed GET request as seen by a [`Handler`].
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct HttpRequest {
    /// Request path with the query string stripped, e.g. `/metrics`.
    pub path: String,
    /// Raw query string without the leading `?` (empty if none).
    pub query: String,
    /// The `Accept` header value, if the client sent one.
    pub accept: Option<String>,
}

impl HttpRequest {
    /// A request for `path` with no query and no `Accept` header
    /// (convenience for tests and internal callers).
    pub fn for_path(path: &str) -> HttpRequest {
        HttpRequest {
            path: path.to_string(),
            ..HttpRequest::default()
        }
    }

    /// Value of the first `key=value` pair in the query string, if any.
    /// No percent-decoding — endpoint formats are plain tokens.
    pub fn query_param(&self, key: &str) -> Option<&str> {
        self.query.split('&').find_map(|pair| {
            let (k, v) = pair.split_once('=')?;
            (k == key).then_some(v)
        })
    }

    /// Whether the `Accept` header lists `mime` (exact media-type match
    /// on each comma-separated entry, parameters after `;` ignored).
    pub fn accepts(&self, mime: &str) -> bool {
        self.accept.as_deref().is_some_and(|accept| {
            accept
                .split(',')
                .map(|entry| entry.split(';').next().unwrap_or(entry).trim())
                .any(|media| media.eq_ignore_ascii_case(mime))
        })
    }
}

/// A response produced by a request handler.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct HttpResponse {
    /// HTTP status code (200, 404, ...).
    pub status: u16,
    /// `Content-Type` header value.
    pub content_type: String,
    /// Response body bytes.
    pub body: Vec<u8>,
}

impl HttpResponse {
    /// A `200 OK` response with the given content type.
    pub fn ok(content_type: &str, body: impl Into<Vec<u8>>) -> HttpResponse {
        HttpResponse {
            status: 200,
            content_type: content_type.to_string(),
            body: body.into(),
        }
    }

    /// A plain-text `404 Not Found`.
    pub fn not_found() -> HttpResponse {
        HttpResponse {
            status: 404,
            content_type: "text/plain; charset=utf-8".to_string(),
            body: b"not found\n".to_vec(),
        }
    }

    /// A plain-text `406 Not Acceptable` carrying a hint about which
    /// formats the endpoint does support.
    pub fn not_acceptable(hint: &str) -> HttpResponse {
        HttpResponse {
            status: 406,
            content_type: "text/plain; charset=utf-8".to_string(),
            body: format!("not acceptable: {hint}\n").into_bytes(),
        }
    }

    /// A plain-text `503 Service Unavailable` (used by the health
    /// endpoint's stall watchdog).
    pub fn service_unavailable(content_type: &str, body: impl Into<Vec<u8>>) -> HttpResponse {
        HttpResponse {
            status: 503,
            content_type: content_type.to_string(),
            body: body.into(),
        }
    }

    fn status_text(&self) -> &'static str {
        match self.status {
            200 => "OK",
            400 => "Bad Request",
            404 => "Not Found",
            405 => "Method Not Allowed",
            406 => "Not Acceptable",
            431 => "Request Header Fields Too Large",
            503 => "Service Unavailable",
            _ => "Unknown",
        }
    }
}

/// Per-request accounting: request paths, response statuses, latency.
///
/// Thread-safe and cheap; one instance lives for the whole serve
/// process. Snapshots land in [`HttpSnapshot`], which renders only in
/// the timing section of a metrics export.
#[derive(Debug, Default)]
pub struct HttpStats {
    requests: Mutex<BTreeMap<String, u64>>,
    responses: Mutex<BTreeMap<u16, u64>>,
    duration_us: Histogram,
}

impl HttpStats {
    /// An empty accounting block.
    pub fn new() -> HttpStats {
        HttpStats::default()
    }

    fn note_request(&self, path: &str) {
        let mut map = self
            .requests
            .lock()
            .unwrap_or_else(|poisoned| poisoned.into_inner());
        if let Some(n) = map.get_mut(path) {
            *n += 1;
        } else if map.len() < MAX_TRACKED_PATHS {
            map.insert(path.to_string(), 1);
        } else {
            *map.entry("<other>".to_string()).or_insert(0) += 1;
        }
    }

    fn note_response(&self, status: u16, dur_us: u64) {
        let mut map = self
            .responses
            .lock()
            .unwrap_or_else(|poisoned| poisoned.into_inner());
        *map.entry(status).or_insert(0) += 1;
        drop(map);
        self.duration_us.observe(dur_us);
    }

    /// Freeze the current tallies.
    pub fn snapshot(&self) -> HttpSnapshot {
        let requests = self
            .requests
            .lock()
            .unwrap_or_else(|poisoned| poisoned.into_inner())
            .clone();
        let responses = self
            .responses
            .lock()
            .unwrap_or_else(|poisoned| poisoned.into_inner())
            .iter()
            .map(|(status, n)| (status.to_string(), *n))
            .collect();
        HttpSnapshot {
            requests,
            responses,
            duration_us: self.duration_us.snapshot(),
        }
    }
}

/// Request handler: maps a parsed GET request to a response.
pub type Handler = dyn Fn(&HttpRequest) -> HttpResponse + Send + Sync;

/// A background HTTP listener serving GET requests via a shared handler.
pub struct HttpServer {
    addr: SocketAddr,
    stop: Arc<AtomicBool>,
    thread: Option<JoinHandle<()>>,
}

impl HttpServer {
    /// Bind `addr` (e.g. `"127.0.0.1:0"`) and start serving on a
    /// background thread, without per-request accounting.
    pub fn bind(addr: &str, handler: Arc<Handler>) -> std::io::Result<HttpServer> {
        HttpServer::bind_with_stats(addr, handler, None)
    }

    /// Bind `addr` and start serving; when `stats` is given, every
    /// request is tallied into it (path, status, latency).
    pub fn bind_with_stats(
        addr: &str,
        handler: Arc<Handler>,
        stats: Option<Arc<HttpStats>>,
    ) -> std::io::Result<HttpServer> {
        let listener = TcpListener::bind(addr)?;
        let local = listener.local_addr()?;
        let stop = Arc::new(AtomicBool::new(false));
        let stop_flag = Arc::clone(&stop);
        let thread = std::thread::Builder::new()
            .name("certchain-http".to_string())
            .spawn(move || {
                for conn in listener.incoming() {
                    if stop_flag.load(Ordering::SeqCst) {
                        break;
                    }
                    if let Ok(stream) = conn {
                        // A slow or broken client must not wedge the
                        // acceptor; errors just drop the connection.
                        let _ = serve_one(stream, &*handler, stats.as_deref());
                    }
                }
            })?;
        Ok(HttpServer {
            addr: local,
            stop,
            thread: Some(thread),
        })
    }

    /// The bound address (useful with port `0`).
    pub fn local_addr(&self) -> SocketAddr {
        self.addr
    }

    /// Stop accepting, unblock the acceptor, and join the thread.
    /// Idempotent.
    pub fn shutdown(&mut self) {
        self.stop.store(true, Ordering::SeqCst);
        // Unblock the blocking accept with a throwaway connection.
        let _ = TcpStream::connect(self.addr);
        if let Some(t) = self.thread.take() {
            let _ = t.join();
        }
    }
}

impl Drop for HttpServer {
    fn drop(&mut self) {
        self.shutdown();
    }
}

/// Read one request head, dispatch, write one response, close.
fn serve_one(
    stream: TcpStream,
    handler: &Handler,
    stats: Option<&HttpStats>,
) -> std::io::Result<()> {
    let watch = Stopwatch::start();
    let mut reader = BufReader::new(stream.try_clone()?).take(MAX_HEAD_BYTES as u64);
    let mut line = String::new();
    reader.read_line(&mut line)?;
    let response = match parse_request_line(&line) {
        Ok(mut request) => {
            // Drain headers until the blank line, keeping only `Accept`;
            // the body (none for GET) is ignored.
            loop {
                let mut header = String::new();
                let n = reader.read_line(&mut header)?;
                if n == 0 && reader.limit() == 0 {
                    let response = HttpResponse {
                        status: 431,
                        content_type: "text/plain; charset=utf-8".to_string(),
                        body: b"request head too large\n".to_vec(),
                    };
                    if let Some(stats) = stats {
                        stats.note_response(response.status, watch.elapsed_micros());
                    }
                    return write_response(stream, &response);
                }
                if n == 0 || header == "\r\n" || header == "\n" {
                    break;
                }
                if let Some((name, value)) = header.split_once(':') {
                    if name.trim().eq_ignore_ascii_case("accept") {
                        request.accept = Some(value.trim().to_string());
                    }
                }
            }
            if let Some(stats) = stats {
                stats.note_request(&request.path);
            }
            handler(&request)
        }
        Err(status) => HttpResponse {
            status,
            content_type: "text/plain; charset=utf-8".to_string(),
            body: match status {
                405 => b"only GET is supported\n".to_vec(),
                _ => b"malformed request\n".to_vec(),
            },
        },
    };
    if let Some(stats) = stats {
        stats.note_response(response.status, watch.elapsed_micros());
    }
    write_response(stream, &response)
}

/// Parse `GET <path> HTTP/1.x` into an [`HttpRequest`] (query string
/// preserved, `Accept` filled in later by the header loop), or the
/// error status to answer with.
fn parse_request_line(line: &str) -> Result<HttpRequest, u16> {
    let mut parts = line.split_whitespace();
    let method = parts.next().ok_or(400u16)?;
    let target = parts.next().ok_or(400u16)?;
    let version = parts.next().ok_or(400u16)?;
    if !version.starts_with("HTTP/1.") {
        return Err(400);
    }
    if method != "GET" {
        return Err(405);
    }
    if !target.starts_with('/') {
        return Err(400);
    }
    let (path, query) = match target.split_once('?') {
        Some((p, q)) => (p, q),
        None => (target, ""),
    };
    Ok(HttpRequest {
        path: path.to_string(),
        query: query.to_string(),
        accept: None,
    })
}

fn write_response(mut stream: TcpStream, response: &HttpResponse) -> std::io::Result<()> {
    let head = format!(
        "HTTP/1.1 {} {}\r\nContent-Type: {}\r\nContent-Length: {}\r\nConnection: close\r\n\r\n",
        response.status,
        response.status_text(),
        response.content_type,
        response.body.len(),
    );
    stream.write_all(head.as_bytes())?;
    stream.write_all(&response.body)?;
    stream.flush()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn handler() -> Arc<Handler> {
        Arc::new(|req: &HttpRequest| match req.path.as_str() {
            "/ping" => HttpResponse::ok("text/plain; charset=utf-8", "pong\n"),
            "/json" => HttpResponse::ok("application/json", "{\"ok\":true}"),
            "/echo" => {
                let format = req.query_param("format").unwrap_or("none");
                let wants_json = req.accepts("application/json");
                HttpResponse::ok(
                    "text/plain; charset=utf-8",
                    format!("format={format} json={wants_json}\n"),
                )
            }
            _ => HttpResponse::not_found(),
        })
    }

    fn server() -> HttpServer {
        HttpServer::bind("127.0.0.1:0", handler()).expect("bind")
    }

    /// Issue one raw request, return (status line, body).
    fn request(addr: SocketAddr, raw: &str) -> (String, String) {
        let mut conn = TcpStream::connect(addr).expect("connect");
        conn.write_all(raw.as_bytes()).expect("write");
        let mut text = String::new();
        conn.read_to_string(&mut text).expect("read");
        let status = text.lines().next().unwrap_or("").to_string();
        let body = text
            .split_once("\r\n\r\n")
            .map(|(_, b)| b.to_string())
            .unwrap_or_default();
        (status, body)
    }

    #[test]
    fn get_routes_to_handler() {
        let srv = server();
        let (status, body) = request(srv.local_addr(), "GET /ping HTTP/1.1\r\nHost: x\r\n\r\n");
        assert_eq!(status, "HTTP/1.1 200 OK");
        assert_eq!(body, "pong\n");
    }

    #[test]
    fn query_and_accept_reach_the_handler() {
        let srv = server();
        let (status, body) = request(
            srv.local_addr(),
            "GET /echo?format=json&x=1 HTTP/1.1\r\nAccept: application/json\r\n\r\n",
        );
        assert_eq!(status, "HTTP/1.1 200 OK");
        assert_eq!(body, "format=json json=true\n");
        let (_, body) = request(srv.local_addr(), "GET /echo HTTP/1.1\r\n\r\n");
        assert_eq!(body, "format=none json=false\n");
        let (status, _) = request(srv.local_addr(), "GET /nope HTTP/1.1\r\n\r\n");
        assert_eq!(status, "HTTP/1.1 404 Not Found");
    }

    #[test]
    fn accepts_matches_media_types_not_substrings() {
        let req = HttpRequest {
            path: "/".to_string(),
            query: String::new(),
            accept: Some("text/html, application/json;q=0.9".to_string()),
        };
        assert!(req.accepts("application/json"));
        assert!(req.accepts("text/html"));
        assert!(!req.accepts("application/jso"));
        assert!(!req.accepts("text/plain"));
    }

    #[test]
    fn query_param_parses_pairs() {
        let req = HttpRequest {
            path: "/".to_string(),
            query: "a=1&format=prometheus&b=".to_string(),
            accept: None,
        };
        assert_eq!(req.query_param("format"), Some("prometheus"));
        assert_eq!(req.query_param("a"), Some("1"));
        assert_eq!(req.query_param("b"), Some(""));
        assert_eq!(req.query_param("missing"), None);
    }

    #[test]
    fn non_get_is_405_and_garbage_is_400() {
        let srv = server();
        let (status, _) = request(
            srv.local_addr(),
            "POST /ping HTTP/1.1\r\nContent-Length: 0\r\n\r\n",
        );
        assert_eq!(status, "HTTP/1.1 405 Method Not Allowed");
        let (status, _) = request(srv.local_addr(), "complete nonsense\r\n\r\n");
        assert_eq!(status, "HTTP/1.1 400 Bad Request");
    }

    #[test]
    fn stats_tally_paths_statuses_and_latency() {
        let stats = Arc::new(HttpStats::new());
        let srv = HttpServer::bind_with_stats("127.0.0.1:0", handler(), Some(Arc::clone(&stats)))
            .expect("bind");
        for _ in 0..3 {
            let _ = request(srv.local_addr(), "GET /ping HTTP/1.1\r\n\r\n");
        }
        let _ = request(srv.local_addr(), "GET /nope HTTP/1.1\r\n\r\n");
        let snap = stats.snapshot();
        assert_eq!(snap.requests.get("/ping"), Some(&3));
        assert_eq!(snap.requests.get("/nope"), Some(&1));
        assert_eq!(snap.responses.get("200"), Some(&3));
        assert_eq!(snap.responses.get("404"), Some(&1));
        assert_eq!(snap.duration_us.count, 4);
    }

    #[test]
    fn stats_cap_distinct_paths() {
        let stats = HttpStats::new();
        for i in 0..100 {
            stats.note_request(&format!("/probe/{i}"));
        }
        let snap = stats.snapshot();
        assert!(snap.requests.len() <= MAX_TRACKED_PATHS + 1);
        let overflow = snap.requests.get("<other>").copied().unwrap_or(0);
        let total: u64 = snap.requests.values().sum();
        assert_eq!(total, 100);
        assert!(overflow > 0);
    }

    #[test]
    fn not_acceptable_carries_hint() {
        let resp = HttpResponse::not_acceptable("supported: text, json");
        assert_eq!(resp.status, 406);
        assert!(String::from_utf8_lossy(&resp.body).contains("supported: text, json"));
    }

    #[test]
    fn shutdown_is_idempotent_and_unblocks_accept() {
        let mut srv = server();
        let addr = srv.local_addr();
        srv.shutdown();
        srv.shutdown();
        // After shutdown the port either refuses connections or — if the
        // OS briefly accepted into the closed listener's backlog — never
        // answers a request.
        if let Ok(mut conn) = TcpStream::connect(addr) {
            let _ = conn.write_all(b"GET /ping HTTP/1.1\r\n\r\n");
            let mut text = String::new();
            let _ = conn.read_to_string(&mut text);
            assert!(text.is_empty(), "shut-down server answered: {text:?}");
        }
    }

    #[test]
    fn serves_many_sequential_requests() {
        let srv = server();
        for _ in 0..16 {
            let (status, body) = request(srv.local_addr(), "GET /ping HTTP/1.0\r\n\r\n");
            assert_eq!(status, "HTTP/1.1 200 OK");
            assert_eq!(body, "pong\n");
        }
    }
}
