//! A point-in-time export of a [`Registry`](crate::Registry), split into
//! a deterministic section and a timing section.
//!
//! Schema (`certchain-metrics/v1`):
//!
//! ```text
//! {
//!   "schema": "certchain-metrics/v1",
//!   "deterministic": {            // thread-count invariant, byte-stable
//!     "counters":   { name: u64, ... },        // sorted by name
//!     "gauges":     { name: u64, ... },
//!     "histograms": { name: { "count", "sum", "buckets": [{"le","count"}] } }
//!   },
//!   "timing": {                   // wall-clock; NOT deterministic
//!     "stages": { name: { "wall_ms": f64, "invocations": u64 } }
//!   }
//! }
//! ```
//!
//! The split is a contract, not a convention: everything under
//! `deterministic` is integer-valued, ordered by `BTreeMap`, and pinned
//! bit-identical across thread counts by the workspace's invariance
//! tests ([`MetricsSnapshot::deterministic_fingerprint`] is what those
//! tests compare). Anything wall-clock-derived lives under `timing` and
//! may differ between otherwise identical runs.

use crate::json::JsonValue;
use std::collections::BTreeMap;

/// Frozen state of one histogram.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct HistogramSnapshot {
    /// Number of observations.
    pub count: u64,
    /// Sum of observations.
    pub sum: u64,
    /// Non-empty buckets as (inclusive upper bound rendered as a decimal
    /// string, tally), in ascending bound order.
    pub buckets: Vec<(String, u64)>,
}

/// Frozen accumulated timing of one stage.
#[derive(Debug, Clone, PartialEq)]
pub struct StageSnapshot {
    /// Total wall time across invocations, in milliseconds.
    pub wall_ms: f64,
    /// Number of completed spans.
    pub invocations: u64,
}

/// A complete, serialisable metrics export.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct MetricsSnapshot {
    /// Counters by name.
    pub counters: BTreeMap<String, u64>,
    /// Gauges by name.
    pub gauges: BTreeMap<String, u64>,
    /// Histograms by name.
    pub histograms: BTreeMap<String, HistogramSnapshot>,
    /// Stage timings by name (non-deterministic section).
    pub stages: BTreeMap<String, StageSnapshot>,
}

impl MetricsSnapshot {
    /// Schema identifier stamped into every serialised snapshot.
    pub const SCHEMA: &'static str = "certchain-metrics/v1";

    /// The deterministic section alone (counters, gauges, histograms).
    pub fn deterministic_json(&self) -> JsonValue {
        let counters = self
            .counters
            .iter()
            .map(|(k, v)| (k.clone(), JsonValue::Num(*v as f64)))
            .collect();
        let gauges = self
            .gauges
            .iter()
            .map(|(k, v)| (k.clone(), JsonValue::Num(*v as f64)))
            .collect();
        let histograms = self
            .histograms
            .iter()
            .map(|(k, h)| {
                let buckets = h
                    .buckets
                    .iter()
                    .map(|(le, n)| {
                        JsonValue::Obj(vec![
                            ("le".into(), JsonValue::Str(le.clone())),
                            ("count".into(), JsonValue::Num(*n as f64)),
                        ])
                    })
                    .collect();
                (
                    k.clone(),
                    JsonValue::Obj(vec![
                        ("count".into(), JsonValue::Num(h.count as f64)),
                        ("sum".into(), JsonValue::Num(h.sum as f64)),
                        ("buckets".into(), JsonValue::Arr(buckets)),
                    ]),
                )
            })
            .collect();
        JsonValue::Obj(vec![
            ("counters".into(), JsonValue::Obj(counters)),
            ("gauges".into(), JsonValue::Obj(gauges)),
            ("histograms".into(), JsonValue::Obj(histograms)),
        ])
    }

    /// The timing section alone (stage wall times).
    pub fn timing_json(&self) -> JsonValue {
        let stages = self
            .stages
            .iter()
            .map(|(k, s)| {
                (
                    k.clone(),
                    JsonValue::Obj(vec![
                        ("wall_ms".into(), JsonValue::Num(s.wall_ms)),
                        ("invocations".into(), JsonValue::Num(s.invocations as f64)),
                    ]),
                )
            })
            .collect();
        JsonValue::Obj(vec![("stages".into(), JsonValue::Obj(stages))])
    }

    /// Full serialised form: schema tag + both sections.
    pub fn to_json(&self) -> JsonValue {
        JsonValue::Obj(vec![
            ("schema".into(), JsonValue::Str(Self::SCHEMA.into())),
            ("deterministic".into(), self.deterministic_json()),
            ("timing".into(), self.timing_json()),
        ])
    }

    /// Byte-stable rendering of the deterministic section, for use in
    /// thread-count-invariance assertions.
    pub fn deterministic_fingerprint(&self) -> String {
        self.deterministic_json().to_pretty()
    }
}

#[cfg(test)]
mod tests {
    use crate::Registry;

    fn populated() -> Registry {
        let reg = Registry::new();
        reg.counter("b.count").add(3);
        reg.counter("a.count").add(1);
        reg.gauge("size").set(42);
        reg.histogram("len").observe(5);
        {
            let _t = reg.stage("work");
        }
        reg
    }

    #[test]
    fn schema_and_sections_round_trip() {
        let snap = populated().snapshot();
        let text = snap.to_json().to_pretty();
        let doc = crate::json::parse(&text).expect("snapshot parses");
        assert_eq!(
            doc.get("schema").and_then(|v| v.as_str()),
            Some("certchain-metrics/v1")
        );
        let det = doc.get("deterministic").expect("deterministic section");
        assert_eq!(
            det.get("counters")
                .and_then(|c| c.get("a.count"))
                .and_then(|v| v.as_u64()),
            Some(1)
        );
        assert_eq!(
            det.get("gauges")
                .and_then(|g| g.get("size"))
                .and_then(|v| v.as_u64()),
            Some(42)
        );
        let timing = doc.get("timing").expect("timing section");
        assert!(timing.get("stages").and_then(|s| s.get("work")).is_some());
    }

    #[test]
    fn counters_render_sorted_by_name() {
        let text = populated().snapshot().deterministic_fingerprint();
        let a = text.find("a.count").expect("a.count present");
        let b = text.find("b.count").expect("b.count present");
        assert!(a < b, "BTreeMap ordering must sort counter names");
    }

    #[test]
    fn fingerprint_excludes_timing() {
        let snap = populated().snapshot();
        assert!(!snap.deterministic_fingerprint().contains("wall_ms"));
        assert_eq!(snap.stages.get("work").map(|s| s.invocations), Some(1));
    }
}
