//! A point-in-time export of a [`Registry`](crate::Registry), split into
//! a deterministic section and a timing section.
//!
//! Schema (`certchain-metrics/v1`):
//!
//! ```text
//! {
//!   "schema": "certchain-metrics/v1",
//!   "deterministic": {            // thread-count invariant, byte-stable
//!     "counters":   { name: u64, ... },        // sorted by name
//!     "gauges":     { name: u64, ... },
//!     "histograms": { name: { "count", "sum", "buckets": [{"le","count"}] } }
//!   },
//!   "timing": {                   // wall-clock; NOT deterministic
//!     "stages": { name: { "wall_ms": f64, "invocations": u64 } }
//!   }
//! }
//! ```
//!
//! The split is a contract, not a convention: everything under
//! `deterministic` is integer-valued, ordered by `BTreeMap`, and pinned
//! bit-identical across thread counts by the workspace's invariance
//! tests ([`MetricsSnapshot::deterministic_fingerprint`] is what those
//! tests compare). Anything wall-clock-derived lives under `timing` and
//! may differ between otherwise identical runs.

use crate::json::JsonValue;
use std::collections::BTreeMap;

/// Frozen state of one histogram.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct HistogramSnapshot {
    /// Number of observations.
    pub count: u64,
    /// Sum of observations.
    pub sum: u64,
    /// Non-empty buckets as (inclusive upper bound rendered as a decimal
    /// string — `+Inf` for the overflow bucket, tally), in ascending
    /// bound order.
    pub buckets: Vec<(String, u64)>,
}

impl HistogramSnapshot {
    /// Reconstruct the inclusive `[lower, upper]` value range of a
    /// bucket from its `le` label. Power-of-two buckets hold values of
    /// one bit length, so `le = 2^k - 1` implies `lower = 2^(k-1)`.
    fn bucket_bounds(le: &str) -> (u64, u64) {
        if le == "0" {
            (0, 0)
        } else if le == "+Inf" {
            (1u64 << 63, u64::MAX)
        } else {
            let upper: u64 = le.parse().unwrap_or(u64::MAX);
            (upper / 2 + 1, upper)
        }
    }

    /// Bucket-interpolated quantile estimate (`q` clamped to `[0, 1]`).
    ///
    /// Walks the cumulative bucket counts to the bucket containing the
    /// target rank, then interpolates linearly within that bucket's
    /// value range. For the `+Inf` overflow bucket the lower bound is
    /// returned (there is nothing meaningful to interpolate toward).
    /// The result is a pure function of the deterministic bucket tallies
    /// and therefore safe to render in the deterministic section.
    pub fn quantile(&self, q: f64) -> u64 {
        if self.count == 0 {
            return 0;
        }
        let q = q.clamp(0.0, 1.0);
        let target = ((q * self.count as f64).ceil() as u64).clamp(1, self.count);
        let mut cum = 0u64;
        for (le, n) in &self.buckets {
            let next = cum.saturating_add(*n);
            if next >= target && *n > 0 {
                let (lo, hi) = Self::bucket_bounds(le);
                if le == "+Inf" {
                    return lo;
                }
                let into = (target - cum) as f64 / *n as f64;
                let span = (hi - lo) as f64;
                return lo.saturating_add((into * span).round() as u64);
            }
            cum = next;
        }
        self.buckets
            .last()
            .map(|(le, _)| Self::bucket_bounds(le).1)
            .unwrap_or(0)
    }
}

/// Frozen accumulated timing of one stage.
#[derive(Debug, Clone, PartialEq)]
pub struct StageSnapshot {
    /// Total wall time across invocations, in milliseconds.
    pub wall_ms: f64,
    /// Number of completed spans.
    pub invocations: u64,
}

/// Frozen per-request HTTP accounting from the serve listener
/// (non-deterministic: request arrival is workload-driven).
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct HttpSnapshot {
    /// Request tallies by path.
    pub requests: BTreeMap<String, u64>,
    /// Response tallies by status code (rendered as a decimal string).
    pub responses: BTreeMap<String, u64>,
    /// Request handling latency in microseconds.
    pub duration_us: HistogramSnapshot,
}

/// A complete, serialisable metrics export.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct MetricsSnapshot {
    /// Counters by name.
    pub counters: BTreeMap<String, u64>,
    /// Gauges by name.
    pub gauges: BTreeMap<String, u64>,
    /// Histograms by name.
    pub histograms: BTreeMap<String, HistogramSnapshot>,
    /// Stage timings by name (non-deterministic section).
    pub stages: BTreeMap<String, StageSnapshot>,
    /// Per-request HTTP accounting (non-deterministic section; only
    /// present for the long-lived serve registry).
    pub http: Option<HttpSnapshot>,
}

impl MetricsSnapshot {
    /// Schema identifier stamped into every serialised snapshot.
    pub const SCHEMA: &'static str = "certchain-metrics/v1";

    /// The deterministic section alone (counters, gauges, histograms).
    pub fn deterministic_json(&self) -> JsonValue {
        let counters = self
            .counters
            .iter()
            .map(|(k, v)| (k.clone(), JsonValue::Num(*v as f64)))
            .collect();
        let gauges = self
            .gauges
            .iter()
            .map(|(k, v)| (k.clone(), JsonValue::Num(*v as f64)))
            .collect();
        let histograms = self
            .histograms
            .iter()
            .map(|(k, h)| {
                let buckets = h
                    .buckets
                    .iter()
                    .map(|(le, n)| {
                        JsonValue::Obj(vec![
                            ("le".into(), JsonValue::Str(le.clone())),
                            ("count".into(), JsonValue::Num(*n as f64)),
                        ])
                    })
                    .collect();
                (
                    k.clone(),
                    JsonValue::Obj(vec![
                        ("count".into(), JsonValue::Num(h.count as f64)),
                        ("sum".into(), JsonValue::Num(h.sum as f64)),
                        ("p50".into(), JsonValue::Num(h.quantile(0.50) as f64)),
                        ("p95".into(), JsonValue::Num(h.quantile(0.95) as f64)),
                        ("p99".into(), JsonValue::Num(h.quantile(0.99) as f64)),
                        ("buckets".into(), JsonValue::Arr(buckets)),
                    ]),
                )
            })
            .collect();
        JsonValue::Obj(vec![
            ("counters".into(), JsonValue::Obj(counters)),
            ("gauges".into(), JsonValue::Obj(gauges)),
            ("histograms".into(), JsonValue::Obj(histograms)),
        ])
    }

    /// The timing section alone (stage wall times and, when present,
    /// per-request HTTP accounting).
    pub fn timing_json(&self) -> JsonValue {
        let stages = self
            .stages
            .iter()
            .map(|(k, s)| {
                (
                    k.clone(),
                    JsonValue::Obj(vec![
                        ("wall_ms".into(), JsonValue::Num(s.wall_ms)),
                        ("invocations".into(), JsonValue::Num(s.invocations as f64)),
                    ]),
                )
            })
            .collect();
        let mut fields = vec![("stages".into(), JsonValue::Obj(stages))];
        if let Some(http) = &self.http {
            let requests = http
                .requests
                .iter()
                .map(|(k, v)| (k.clone(), JsonValue::Num(*v as f64)))
                .collect();
            let responses = http
                .responses
                .iter()
                .map(|(k, v)| (k.clone(), JsonValue::Num(*v as f64)))
                .collect();
            let buckets = http
                .duration_us
                .buckets
                .iter()
                .map(|(le, n)| {
                    JsonValue::Obj(vec![
                        ("le".into(), JsonValue::Str(le.clone())),
                        ("count".into(), JsonValue::Num(*n as f64)),
                    ])
                })
                .collect();
            let duration = JsonValue::Obj(vec![
                (
                    "count".into(),
                    JsonValue::Num(http.duration_us.count as f64),
                ),
                ("sum".into(), JsonValue::Num(http.duration_us.sum as f64)),
                (
                    "p50".into(),
                    JsonValue::Num(http.duration_us.quantile(0.50) as f64),
                ),
                (
                    "p95".into(),
                    JsonValue::Num(http.duration_us.quantile(0.95) as f64),
                ),
                (
                    "p99".into(),
                    JsonValue::Num(http.duration_us.quantile(0.99) as f64),
                ),
                ("buckets".into(), JsonValue::Arr(buckets)),
            ]);
            fields.push((
                "http".into(),
                JsonValue::Obj(vec![
                    ("requests".into(), JsonValue::Obj(requests)),
                    ("responses".into(), JsonValue::Obj(responses)),
                    ("duration_us".into(), duration),
                ]),
            ));
        }
        JsonValue::Obj(fields)
    }

    /// Full serialised form: schema tag + both sections.
    pub fn to_json(&self) -> JsonValue {
        JsonValue::Obj(vec![
            ("schema".into(), JsonValue::Str(Self::SCHEMA.into())),
            ("deterministic".into(), self.deterministic_json()),
            ("timing".into(), self.timing_json()),
        ])
    }

    /// Byte-stable rendering of the deterministic section, for use in
    /// thread-count-invariance assertions.
    pub fn deterministic_fingerprint(&self) -> String {
        self.deterministic_json().to_pretty()
    }
}

#[cfg(test)]
mod tests {
    use crate::Registry;

    fn populated() -> Registry {
        let reg = Registry::new();
        reg.counter("b.count").add(3);
        reg.counter("a.count").add(1);
        reg.gauge("size").set(42);
        reg.histogram("len").observe(5);
        {
            let _t = reg.stage("work");
        }
        reg
    }

    #[test]
    fn schema_and_sections_round_trip() {
        let snap = populated().snapshot();
        let text = snap.to_json().to_pretty();
        let doc = crate::json::parse(&text).expect("snapshot parses");
        assert_eq!(
            doc.get("schema").and_then(|v| v.as_str()),
            Some("certchain-metrics/v1")
        );
        let det = doc.get("deterministic").expect("deterministic section");
        assert_eq!(
            det.get("counters")
                .and_then(|c| c.get("a.count"))
                .and_then(|v| v.as_u64()),
            Some(1)
        );
        assert_eq!(
            det.get("gauges")
                .and_then(|g| g.get("size"))
                .and_then(|v| v.as_u64()),
            Some(42)
        );
        let timing = doc.get("timing").expect("timing section");
        assert!(timing.get("stages").and_then(|s| s.get("work")).is_some());
    }

    #[test]
    fn counters_render_sorted_by_name() {
        let text = populated().snapshot().deterministic_fingerprint();
        let a = text.find("a.count").expect("a.count present");
        let b = text.find("b.count").expect("b.count present");
        assert!(a < b, "BTreeMap ordering must sort counter names");
    }

    #[test]
    fn quantiles_interpolate_within_buckets() {
        use crate::snapshot::HistogramSnapshot;
        // 100 observations of 1, 100 of values in (512, 1023] bucket.
        let h = HistogramSnapshot {
            count: 200,
            sum: 0,
            buckets: vec![("1".to_string(), 100), ("1023".to_string(), 100)],
        };
        assert_eq!(h.quantile(0.0), 1);
        assert_eq!(h.quantile(0.5), 1);
        // p75 is rank 150 → halfway through the [512, 1023] bucket.
        let p75 = h.quantile(0.75);
        assert!((512..=1023).contains(&p75), "p75 = {p75}");
        assert_eq!(h.quantile(1.0), 1023);
        // Overflow bucket pins to its lower bound.
        let inf = HistogramSnapshot {
            count: 1,
            sum: u64::MAX,
            buckets: vec![("+Inf".to_string(), 1)],
        };
        assert_eq!(inf.quantile(0.99), 1u64 << 63);
        // Empty histogram degrades to zero.
        assert_eq!(HistogramSnapshot::default().quantile(0.5), 0);
    }

    #[test]
    fn histogram_json_includes_quantiles() {
        let reg = Registry::new();
        for v in 1..=16u64 {
            reg.histogram("len").observe(v);
        }
        let text = reg.snapshot().to_json().to_pretty();
        let doc = crate::json::parse(&text).expect("snapshot parses");
        let hist = doc
            .get("deterministic")
            .and_then(|d| d.get("histograms"))
            .and_then(|h| h.get("len"))
            .expect("len histogram");
        for key in ["p50", "p95", "p99"] {
            assert!(hist.get(key).and_then(|v| v.as_u64()).is_some(), "{key}");
        }
    }

    #[test]
    fn http_section_renders_in_timing_only() {
        use crate::snapshot::{HistogramSnapshot, HttpSnapshot};
        let mut snap = populated().snapshot();
        let mut http = HttpSnapshot::default();
        http.requests.insert("/metrics".to_string(), 3);
        http.responses.insert("200".to_string(), 3);
        http.duration_us = HistogramSnapshot {
            count: 3,
            sum: 30,
            buckets: vec![("15".to_string(), 3)],
        };
        snap.http = Some(http);
        let det = snap.deterministic_fingerprint();
        assert!(!det.contains("/metrics"), "http stays out of deterministic");
        let timing = snap.timing_json().to_pretty();
        assert!(timing.contains("\"/metrics\""));
        assert!(timing.contains("\"duration_us\""));
    }

    #[test]
    fn fingerprint_excludes_timing() {
        let snap = populated().snapshot();
        assert!(!snap.deterministic_fingerprint().contains("wall_ms"));
        assert_eq!(snap.stages.get("work").map(|s| s.invocations), Some(1));
    }
}
