//! Prometheus text-format exposition for [`MetricsSnapshot`].
//!
//! Renders the classic text format (`# TYPE` comments, one sample per
//! line) so the serve daemon can be scraped directly. Mapping:
//!
//! - counters and gauges render under their sanitised registry name
//!   (`.` → `_`, anything outside `[a-z0-9_:]` → `_`);
//! - histograms render the conventional `_bucket{le="..."}` /
//!   `_sum` / `_count` triple, with **cumulative** bucket counts and a
//!   final `le="+Inf"` sample equal to `_count` (our snapshots store
//!   per-bucket tallies, so the renderer accumulates);
//! - stage timings render as `stage_wall_ms{stage="..."}` /
//!   `stage_invocations{stage="..."}` gauges;
//! - HTTP accounting (when present) renders as
//!   `http_requests{path="..."}`, `http_responses{status="..."}` and an
//!   `http_request_duration_us` histogram.
//!
//! Every non-comment line matches
//! `^[a-z_:][a-z0-9_:.]*({[^}]*})? -?[0-9]` — CI curls the live
//! endpoint and checks exactly that shape.

use crate::snapshot::{HistogramSnapshot, MetricsSnapshot};
use std::fmt::Write as _;

/// Content type for the classic Prometheus text exposition format.
pub const PROMETHEUS_CONTENT_TYPE: &str = "text/plain; version=0.0.4";

/// Sanitise a registry metric name into a Prometheus-legal one.
fn sanitize(name: &str) -> String {
    let mut out = String::with_capacity(name.len());
    for c in name.chars() {
        let c = c.to_ascii_lowercase();
        let legal_head = c.is_ascii_lowercase() || c == '_' || c == ':';
        let legal = legal_head || c.is_ascii_digit();
        if out.is_empty() {
            out.push(if legal_head { c } else { '_' });
        } else {
            out.push(if legal { c } else { '_' });
        }
    }
    if out.is_empty() {
        out.push('_');
    }
    out
}

/// Escape a label value per the exposition format.
fn escape_label(v: &str) -> String {
    v.replace('\\', "\\\\")
        .replace('"', "\\\"")
        .replace('\n', "\\n")
}

fn render_histogram(out: &mut String, name: &str, h: &HistogramSnapshot) {
    let _ = writeln!(out, "# TYPE {name} histogram");
    let mut cum = 0u64;
    for (le, n) in &h.buckets {
        if le == "+Inf" {
            continue; // folded into the final +Inf sample below
        }
        cum = cum.saturating_add(*n);
        let _ = writeln!(out, "{name}_bucket{{le=\"{le}\"}} {cum}");
    }
    let _ = writeln!(out, "{name}_bucket{{le=\"+Inf\"}} {}", h.count);
    let _ = writeln!(out, "{name}_sum {}", h.sum);
    let _ = writeln!(out, "{name}_count {}", h.count);
}

/// Render a snapshot in the Prometheus text exposition format.
pub fn to_prometheus(snap: &MetricsSnapshot) -> String {
    let mut out = String::new();
    for (name, v) in &snap.counters {
        let name = sanitize(name);
        let _ = writeln!(out, "# TYPE {name} counter");
        let _ = writeln!(out, "{name} {v}");
    }
    for (name, v) in &snap.gauges {
        let name = sanitize(name);
        let _ = writeln!(out, "# TYPE {name} gauge");
        let _ = writeln!(out, "{name} {v}");
    }
    for (name, h) in &snap.histograms {
        render_histogram(&mut out, &sanitize(name), h);
    }
    if !snap.stages.is_empty() {
        let _ = writeln!(out, "# TYPE stage_wall_ms gauge");
        for (name, s) in &snap.stages {
            let _ = writeln!(
                out,
                "stage_wall_ms{{stage=\"{}\"}} {}",
                escape_label(name),
                s.wall_ms
            );
        }
        let _ = writeln!(out, "# TYPE stage_invocations counter");
        for (name, s) in &snap.stages {
            let _ = writeln!(
                out,
                "stage_invocations{{stage=\"{}\"}} {}",
                escape_label(name),
                s.invocations
            );
        }
    }
    if let Some(http) = &snap.http {
        if !http.requests.is_empty() {
            let _ = writeln!(out, "# TYPE http_requests counter");
            for (path, n) in &http.requests {
                let _ = writeln!(out, "http_requests{{path=\"{}\"}} {n}", escape_label(path));
            }
        }
        if !http.responses.is_empty() {
            let _ = writeln!(out, "# TYPE http_responses counter");
            for (status, n) in &http.responses {
                let _ = writeln!(
                    out,
                    "http_responses{{status=\"{}\"}} {n}",
                    escape_label(status)
                );
            }
        }
        render_histogram(&mut out, "http_request_duration_us", &http.duration_us);
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::snapshot::HttpSnapshot;
    use crate::Registry;

    /// Mirror of the CI shape check:
    /// `^[a-z_:][a-z0-9_:.]*({[^}]*})? -?[0-9]`.
    fn line_is_well_formed(line: &str) -> bool {
        let bytes = line.as_bytes();
        let Some(&head) = bytes.first() else {
            return false;
        };
        if !(head.is_ascii_lowercase() || head == b'_' || head == b':') {
            return false;
        }
        let mut i = 1;
        while i < bytes.len()
            && (bytes[i].is_ascii_lowercase()
                || bytes[i].is_ascii_digit()
                || matches!(bytes[i], b'_' | b':' | b'.'))
        {
            i += 1;
        }
        if i < bytes.len() && bytes[i] == b'{' {
            while i < bytes.len() && bytes[i] != b'}' {
                i += 1;
            }
            if i == bytes.len() {
                return false;
            }
            i += 1;
        }
        if i >= bytes.len() || bytes[i] != b' ' {
            return false;
        }
        i += 1;
        if i < bytes.len() && bytes[i] == b'-' {
            i += 1;
        }
        i < bytes.len() && bytes[i].is_ascii_digit()
    }

    fn populated() -> Registry {
        let reg = Registry::new();
        reg.counter("pipeline.ssl_records").add(42);
        reg.gauge("pipeline.distinct_certificates").set(321);
        let h = reg.histogram("pipeline.chain_length");
        for v in [1u64, 2, 3, 900] {
            h.observe(v);
        }
        h.observe(u64::MAX);
        {
            let _t = reg.stage("ingest");
        }
        reg
    }

    #[test]
    fn exposition_lines_pass_the_ci_shape_check() {
        let mut snap = populated().snapshot();
        let mut http = HttpSnapshot::default();
        http.requests.insert("/metrics".to_string(), 2);
        http.responses.insert("200".to_string(), 2);
        snap.http = Some(http);
        let text = to_prometheus(&snap);
        assert!(!text.is_empty());
        for line in text.lines().filter(|l| !l.starts_with('#')) {
            assert!(line_is_well_formed(line), "malformed line: {line:?}");
        }
    }

    #[test]
    fn names_are_sanitized_and_types_declared() {
        let text = to_prometheus(&populated().snapshot());
        assert!(text.contains("# TYPE pipeline_ssl_records counter"));
        assert!(text.contains("pipeline_ssl_records 42"));
        assert!(text.contains("# TYPE pipeline_distinct_certificates gauge"));
        assert!(text.contains("pipeline_distinct_certificates 321"));
        assert!(text.contains("stage_wall_ms{stage=\"ingest\"}"));
    }

    #[test]
    fn histogram_buckets_are_cumulative_and_end_at_inf() {
        let text = to_prometheus(&populated().snapshot());
        // Observations 1,2,3,900,u64::MAX land in buckets le=1 (1),
        // le=3 (2), le=1023 (1), +Inf (1); the exposition must be
        // cumulative: 1, 3, 4, then +Inf = count = 5.
        assert!(text.contains("pipeline_chain_length_bucket{le=\"1\"} 1"));
        assert!(text.contains("pipeline_chain_length_bucket{le=\"3\"} 3"));
        assert!(text.contains("pipeline_chain_length_bucket{le=\"1023\"} 4"));
        assert!(text.contains("pipeline_chain_length_bucket{le=\"+Inf\"} 5"));
        assert!(text.contains("pipeline_chain_length_count 5"));
        // Saturating sum pinned at u64::MAX.
        assert!(text.contains(&format!("pipeline_chain_length_sum {}", u64::MAX)));
    }

    #[test]
    fn sanitize_handles_leading_digits_and_symbols() {
        assert_eq!(sanitize("pipeline.ssl_records"), "pipeline_ssl_records");
        assert_eq!(sanitize("9lives"), "_lives");
        assert_eq!(sanitize("Mixed-Case"), "mixed_case");
        assert_eq!(sanitize(""), "_");
    }
}
