#![forbid(unsafe_code)]
#![warn(missing_docs)]
//! `certchain-obs`: hermetic observability for the certchain workspace.
//!
//! The pipeline digests campus-scale traffic (the paper's corpus is
//! 259.30 M TLS connections) through staged parallel workers, and the
//! workspace's headline guarantee is that its output tables render
//! byte-identical across thread counts. This crate adds the runtime
//! signals a measurement system needs — record accounting, stage
//! timings, progress reporting — without perturbing that guarantee:
//!
//! - [`metrics`]: atomic [`Counter`]/[`Gauge`]/[`Histogram`] handles
//!   named by a [`Registry`]. Deterministic by construction: every value
//!   is a `u64` updated by commutative atomic adds.
//! - [`clock`]: the single sanctioned wall-clock site in the workspace
//!   (srclint's `det-wallclock` rule rejects `Instant::now` /
//!   `SystemTime::now` everywhere else).
//! - [`snapshot`]: [`MetricsSnapshot`], a schema-stable JSON export with
//!   an explicitly deterministic section and a separate timing section.
//! - [`http`]: a tiny GET-only [`HttpServer`] on `std::net`, used by
//!   `certchain serve` to expose metrics snapshots and report tables,
//!   with content negotiation and per-request accounting.
//! - [`trace`]: hierarchical spans and structured events in a bounded
//!   ring-buffer [`TraceJournal`] — the daemon's flight recorder,
//!   strictly confined to the timing side of the snapshot split.
//! - [`prom`]: Prometheus text-format exposition for snapshots.
//! - [`progress`]: a throttled stderr [`Progress`] reporter
//!   (records/sec, chunk queue depth, per-worker throughput).
//! - [`json`]: the workspace's self-contained JSON value type (moved
//!   here from `chainlab` so every layer, including this one, can emit
//!   JSON without a dependency cycle; `chainlab` re-exports it).
//!
//! Like the rest of the workspace the crate is hermetic: std-only, no
//! external dependencies, no unsafe code.

pub mod clock;
pub mod http;
pub mod json;
pub mod metrics;
pub mod progress;
pub mod prom;
pub mod snapshot;
pub mod trace;

pub use http::{HttpRequest, HttpResponse, HttpServer, HttpStats};
pub use metrics::{Counter, Gauge, Histogram, Registry, StageTimer};
pub use progress::Progress;
pub use snapshot::{HistogramSnapshot, HttpSnapshot, MetricsSnapshot, StageSnapshot};
pub use trace::{Span, TraceEvent, TraceJournal, TraceKind};
