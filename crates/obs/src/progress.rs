//! A rate-limited stderr progress reporter for long-running streams.
//!
//! Progress output is wall-clock territory by definition, so it goes to
//! stderr only (never into any emitted artifact) and all its clock reads
//! go through [`crate::clock`]. Producers call [`Progress::tick`] from
//! their dispatch loop as often as they like; lines are emitted at most
//! once per interval, and [`Progress::finish`] prints a final summary.

use crate::clock::Stopwatch;
use std::sync::Mutex;

/// Default minimum milliseconds between emitted lines.
const DEFAULT_INTERVAL_MS: f64 = 500.0;

#[derive(Debug, Default)]
struct TickState {
    last_emit_ms: f64,
    last_records: u64,
    emitted: u64,
}

/// A throttled progress reporter. See the module docs.
#[derive(Debug)]
pub struct Progress {
    label: String,
    interval_ms: f64,
    watch: Stopwatch,
    state: Mutex<TickState>,
}

impl Progress {
    /// A reporter that writes to stderr at most every ~500 ms.
    pub fn stderr(label: &str) -> Progress {
        Progress::with_interval_ms(label, DEFAULT_INTERVAL_MS)
    }

    /// A reporter with an explicit emission interval (0 emits every tick;
    /// useful in tests).
    pub fn with_interval_ms(label: &str, interval_ms: f64) -> Progress {
        Progress {
            label: label.to_string(),
            interval_ms,
            watch: Stopwatch::start(),
            state: Mutex::new(TickState::default()),
        }
    }

    /// Report the current totals; prints a line if the interval elapsed.
    ///
    /// `records` is the cumulative record count, `queue_depth` the number
    /// of dispatched-but-unprocessed chunks across all workers, and
    /// `per_worker` the cumulative records handled by each worker (empty
    /// for single-threaded producers).
    pub fn tick(&self, records: u64, queue_depth: usize, per_worker: &[u64]) {
        let now_ms = self.watch.elapsed_ms();
        let mut state = self.state.lock().expect("progress state poisoned");
        if state.emitted > 0 && now_ms - state.last_emit_ms < self.interval_ms {
            return;
        }
        let dt_ms = (now_ms - state.last_emit_ms).max(1e-6);
        let inst_rate = (records.saturating_sub(state.last_records)) as f64 / (dt_ms / 1e3);
        state.last_emit_ms = now_ms;
        state.last_records = records;
        state.emitted += 1;
        drop(state);
        eprintln!(
            "{}",
            render_line(
                &self.label,
                records,
                inst_rate,
                now_ms,
                queue_depth,
                per_worker
            )
        );
    }

    /// Print the final summary line (always emitted).
    pub fn finish(&self, records: u64) {
        let secs = self.watch.elapsed_secs().max(1e-9);
        eprintln!(
            "[{}] done: {} records in {:.2}s ({} rec/s)",
            self.label,
            records,
            secs,
            human(records as f64 / secs)
        );
    }
}

/// Build one progress line (pure; unit-tested without touching stderr).
fn render_line(
    label: &str,
    records: u64,
    inst_rate: f64,
    elapsed_ms: f64,
    queue_depth: usize,
    per_worker: &[u64],
) -> String {
    let elapsed_secs = (elapsed_ms / 1e3).max(1e-9);
    let avg_rate = records as f64 / elapsed_secs;
    let mut line = format!(
        "[{}] {} records · {} rec/s (avg {}) · queue {}",
        label,
        human(records as f64),
        human(inst_rate),
        human(avg_rate),
        queue_depth
    );
    if !per_worker.is_empty() {
        let lo = per_worker.iter().copied().min().unwrap_or(0);
        let hi = per_worker.iter().copied().max().unwrap_or(0);
        line.push_str(&format!(
            " · {} workers [{}..{} rec/s]",
            per_worker.len(),
            human(lo as f64 / elapsed_secs),
            human(hi as f64 / elapsed_secs)
        ));
    }
    line
}

/// Compact human magnitude: `812`, `45.3k`, `2.1M`.
fn human(n: f64) -> String {
    if n >= 1e6 {
        format!("{:.1}M", n / 1e6)
    } else if n >= 1e3 {
        format!("{:.1}k", n / 1e3)
    } else {
        format!("{n:.0}")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn renders_rates_queue_and_worker_spread() {
        let line = render_line("analyze", 100_000, 50_000.0, 2_000.0, 3, &[20_000, 30_000]);
        assert_eq!(
            line,
            "[analyze] 100.0k records · 50.0k rec/s (avg 50.0k) · queue 3 · 2 workers [10.0k..15.0k rec/s]"
        );
    }

    #[test]
    fn omits_worker_spread_when_sequential() {
        let line = render_line("gen", 812, 812.0, 1_000.0, 0, &[]);
        assert_eq!(line, "[gen] 812 records · 812 rec/s (avg 812) · queue 0");
    }

    #[test]
    fn human_magnitudes() {
        assert_eq!(human(999.0), "999");
        assert_eq!(human(1_500.0), "1.5k");
        assert_eq!(human(2_100_000.0), "2.1M");
    }

    #[test]
    fn tick_rate_limit_suppresses_rapid_calls() {
        let p = Progress::with_interval_ms("t", 60_000.0);
        p.tick(1, 0, &[]);
        p.tick(2, 0, &[]);
        p.tick(3, 0, &[]);
        let state = p.state.lock().unwrap();
        assert_eq!(
            state.emitted, 1,
            "only the first tick inside the interval emits"
        );
    }

    #[test]
    fn zero_interval_emits_every_tick() {
        let p = Progress::with_interval_ms("t", 0.0);
        p.tick(1, 0, &[]);
        p.tick(2, 0, &[]);
        assert_eq!(p.state.lock().unwrap().emitted, 2);
    }
}
