//! The single sanctioned wall-clock access point in the workspace.
//!
//! The determinism guarantee (Tables 2/3/7 byte-identical across thread
//! counts and ingestion paths) forbids wall-clock reads anywhere near
//! analysis logic, and srclint's `det-wallclock` rule enforces that
//! mechanically. Real time is still needed in two places: stage timing
//! for the observability layer (strictly confined to the non-deterministic
//! `timing` section of [`crate::MetricsSnapshot`]) and the CLI `validate`
//! command's "lint this chain as of now" default. Both go through this
//! module, which srclint recognises as the one file where
//! `Instant::now`/`SystemTime::now` may appear. Adding a wall-clock read
//! anywhere else fails CI; routing it through here makes it auditable.

use std::time::{Instant, SystemTime, UNIX_EPOCH};

/// A monotonic stopwatch for stage spans and progress rates.
#[derive(Debug, Clone, Copy)]
pub struct Stopwatch {
    start: Instant,
}

impl Stopwatch {
    /// Start timing now.
    pub fn start() -> Stopwatch {
        Stopwatch {
            start: Instant::now(),
        }
    }

    /// Milliseconds elapsed since [`Stopwatch::start`].
    pub fn elapsed_ms(&self) -> f64 {
        self.start.elapsed().as_secs_f64() * 1e3
    }

    /// Seconds elapsed since [`Stopwatch::start`].
    pub fn elapsed_secs(&self) -> f64 {
        self.start.elapsed().as_secs_f64()
    }

    /// Whole microseconds elapsed since [`Stopwatch::start`], saturating
    /// at `u64::MAX`. Trace timestamps use this granularity.
    pub fn elapsed_micros(&self) -> u64 {
        u64::try_from(self.start.elapsed().as_micros()).unwrap_or(u64::MAX)
    }
}

/// Seconds since the Unix epoch, saturating at 0 if the system clock is
/// set before 1970. Used by `certchain validate` when no explicit
/// `--now` override is given.
pub fn wall_unix_secs() -> u64 {
    SystemTime::now()
        .duration_since(UNIX_EPOCH)
        .map(|d| d.as_secs())
        .unwrap_or(0)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn stopwatch_is_monotone() {
        let w = Stopwatch::start();
        let a = w.elapsed_ms();
        let b = w.elapsed_ms();
        assert!(a >= 0.0);
        assert!(b >= a);
    }

    #[test]
    fn wall_clock_is_past_2020() {
        // 2020-01-01 in Unix seconds; any sane test host is later.
        assert!(wall_unix_secs() > 1_577_836_800);
    }
}
