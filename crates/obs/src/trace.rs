//! Hierarchical tracing with a bounded ring-buffer journal.
//!
//! This module gives the long-running daemon a flight recorder: spans
//! (with parent/child links and per-span attributes) and structured
//! events, appended to a fixed-capacity journal that evicts
//! oldest-first. It is dependency-free and lives strictly on the
//! *timing* side of the metrics split — nothing recorded here may feed
//! back into report tables or the deterministic snapshot section, so
//! tracing can stay enabled in production without perturbing the
//! byte-identical determinism guarantee.
//!
//! Design notes:
//!
//! - **Bounded, oldest-evicted.** The journal is a ring of `capacity`
//!   slots. Each record claims a global sequence number with one atomic
//!   `fetch_add` and writes into slot `seq % capacity`, replacing the
//!   occupant only if that occupant is older. After writers quiesce the
//!   surviving set is exactly the newest `min(written, capacity)`
//!   records — a property the proptest suite asserts directly.
//! - **No torn events.** Slot payloads sit behind per-slot mutexes, so
//!   a reader never observes a half-written record; lock poisoning is
//!   absorbed with `into_inner` (a panicking writer can at worst lose
//!   its own record).
//! - **Sanctioned clock only.** All timestamps are microseconds since
//!   journal creation, measured via [`crate::clock::Stopwatch`] — the
//!   one file srclint's `det-wallclock` rule allows to read the clock.
//!   CI greps this module to verify no raw wallclock read sneaks in.
//! - **Spans are RAII.** [`Span`] records a start event on creation and
//!   an end event (with accumulated attrs and `dur_us`) on drop, so a
//!   span can never leak open across an early return.

use crate::clock::Stopwatch;
use crate::json::JsonValue;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};

/// Schema identifier stamped into the `/trace.json` journal dump.
pub const TRACE_SCHEMA: &str = "certchain-trace/v1";

/// Default journal capacity when the caller does not specify one.
pub const DEFAULT_CAPACITY: usize = 1024;

/// What a single journal record describes.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TraceKind {
    /// A span opened.
    SpanStart,
    /// A span closed; the record carries its duration and attrs.
    SpanEnd,
    /// A point-in-time structured event.
    Event,
}

impl TraceKind {
    /// Stable lower-case label used in the JSON dump.
    pub fn label(self) -> &'static str {
        match self {
            TraceKind::SpanStart => "span_start",
            TraceKind::SpanEnd => "span_end",
            TraceKind::Event => "event",
        }
    }
}

/// One immutable journal record.
#[derive(Debug, Clone, PartialEq)]
pub struct TraceEvent {
    /// Global sequence number (claim order; dense from 0).
    pub seq: u64,
    /// Microseconds since journal creation, via the sanctioned clock.
    pub at_us: u64,
    /// Record kind.
    pub kind: TraceKind,
    /// Span or event name, e.g. `serve.cycle` or `checkpoint.manifest`.
    pub name: String,
    /// Span id this record describes (0 for free-standing events).
    pub span: u64,
    /// Parent span id (0 = root / no owner).
    pub parent: u64,
    /// Attribute key/value pairs, in insertion order.
    pub attrs: Vec<(String, String)>,
}

impl TraceEvent {
    fn to_json(&self) -> JsonValue {
        let attrs = self
            .attrs
            .iter()
            .map(|(k, v)| (k.clone(), JsonValue::Str(v.clone())))
            .collect();
        JsonValue::Obj(vec![
            ("seq".into(), JsonValue::Num(self.seq as f64)),
            ("at_us".into(), JsonValue::Num(self.at_us as f64)),
            ("kind".into(), JsonValue::Str(self.kind.label().into())),
            ("name".into(), JsonValue::Str(self.name.clone())),
            ("span".into(), JsonValue::Num(self.span as f64)),
            ("parent".into(), JsonValue::Num(self.parent as f64)),
            ("attrs".into(), JsonValue::Obj(attrs)),
        ])
    }
}

/// Bounded, oldest-evicted ring journal of [`TraceEvent`]s.
///
/// Cheap to share (`Arc<TraceJournal>`); writers never block each other
/// except on same-slot collisions, and never block on readers for more
/// than one slot at a time.
#[derive(Debug)]
pub struct TraceJournal {
    slots: Vec<Mutex<Option<TraceEvent>>>,
    next_seq: AtomicU64,
    next_span: AtomicU64,
    origin: Stopwatch,
}

impl TraceJournal {
    /// Create a journal holding at most `capacity` records (min 1).
    pub fn new(capacity: usize) -> TraceJournal {
        let capacity = capacity.max(1);
        let mut slots = Vec::with_capacity(capacity);
        for _ in 0..capacity {
            slots.push(Mutex::new(None));
        }
        TraceJournal {
            slots,
            next_seq: AtomicU64::new(0),
            // Span id 0 is reserved as "no span / root parent".
            next_span: AtomicU64::new(1),
            origin: Stopwatch::start(),
        }
    }

    /// Journal capacity in records.
    pub fn capacity(&self) -> usize {
        self.slots.len()
    }

    /// Total records ever written (including evicted ones).
    pub fn written(&self) -> u64 {
        self.next_seq.load(Ordering::Relaxed)
    }

    /// Microseconds since the journal was created.
    pub fn now_us(&self) -> u64 {
        self.origin.elapsed_micros()
    }

    /// Open a new root span. The span ends (and records its end event)
    /// when dropped.
    pub fn span(self: &Arc<Self>, name: &str) -> Span {
        Span::open(Arc::clone(self), name, 0)
    }

    /// Record a free-standing event (no owning span).
    pub fn event(&self, name: &str, attrs: &[(&str, String)]) {
        self.push(TraceKind::Event, name, 0, 0, attrs);
    }

    fn claim_span_id(&self) -> u64 {
        self.next_span.fetch_add(1, Ordering::Relaxed)
    }

    fn push(&self, kind: TraceKind, name: &str, span: u64, parent: u64, attrs: &[(&str, String)]) {
        let owned: Vec<(String, String)> = attrs
            .iter()
            .map(|(k, v)| ((*k).to_string(), v.clone()))
            .collect();
        self.push_owned(kind, name.to_string(), span, parent, owned);
    }

    fn push_owned(
        &self,
        kind: TraceKind,
        name: String,
        span: u64,
        parent: u64,
        attrs: Vec<(String, String)>,
    ) {
        let at_us = self.origin.elapsed_micros();
        let seq = self.next_seq.fetch_add(1, Ordering::Relaxed);
        let idx = (seq % self.slots.len() as u64) as usize;
        let record = TraceEvent {
            seq,
            at_us,
            kind,
            name,
            span,
            parent,
            attrs,
        };
        if let Some(slot) = self.slots.get(idx) {
            let mut guard = slot.lock().unwrap_or_else(|poisoned| poisoned.into_inner());
            // Replace only an older occupant: a slow writer that claimed
            // a low seq long ago must not clobber a newer record that
            // already wrapped around into the same slot.
            let keep_existing = matches!(guard.as_ref(), Some(old) if old.seq > record.seq);
            if !keep_existing {
                *guard = Some(record);
            }
        }
    }

    /// Snapshot the surviving records, oldest first.
    pub fn snapshot(&self) -> Vec<TraceEvent> {
        let mut out: Vec<TraceEvent> = Vec::with_capacity(self.slots.len());
        for slot in &self.slots {
            let guard = slot.lock().unwrap_or_else(|poisoned| poisoned.into_inner());
            if let Some(ev) = guard.as_ref() {
                out.push(ev.clone());
            }
        }
        out.sort_by_key(|ev| ev.seq);
        out
    }

    /// Serialise the journal (`certchain-trace/v1`): capacity, totals,
    /// and the surviving records oldest-first.
    pub fn to_json(&self) -> JsonValue {
        let events = self.snapshot();
        let written = self.written();
        let evicted = written.saturating_sub(events.len() as u64);
        let rendered = events.iter().map(TraceEvent::to_json).collect();
        JsonValue::Obj(vec![
            ("schema".into(), JsonValue::Str(TRACE_SCHEMA.into())),
            ("capacity".into(), JsonValue::Num(self.capacity() as f64)),
            ("written".into(), JsonValue::Num(written as f64)),
            ("evicted".into(), JsonValue::Num(evicted as f64)),
            ("events".into(), JsonValue::Arr(rendered)),
        ])
    }
}

/// An open span. Records `span_start` on creation and `span_end` (with
/// accumulated attrs plus `dur_us`) when dropped.
#[derive(Debug)]
pub struct Span {
    journal: Arc<TraceJournal>,
    id: u64,
    parent: u64,
    name: String,
    start_us: u64,
    attrs: Mutex<Vec<(String, String)>>,
}

impl Span {
    fn open(journal: Arc<TraceJournal>, name: &str, parent: u64) -> Span {
        let id = journal.claim_span_id();
        journal.push(TraceKind::SpanStart, name, id, parent, &[]);
        let start_us = journal.now_us();
        Span {
            journal,
            id,
            parent,
            name: name.to_string(),
            start_us,
            attrs: Mutex::new(Vec::new()),
        }
    }

    /// This span's id.
    pub fn id(&self) -> u64 {
        self.id
    }

    /// Open a child span parented under this one.
    pub fn child(&self, name: &str) -> Span {
        Span::open(Arc::clone(&self.journal), name, self.id)
    }

    /// Attach an attribute, emitted with the `span_end` record.
    pub fn attr(&self, key: &str, value: impl Into<String>) {
        let mut attrs = self
            .attrs
            .lock()
            .unwrap_or_else(|poisoned| poisoned.into_inner());
        attrs.push((key.to_string(), value.into()));
    }

    /// Record a structured event owned by this span.
    pub fn event(&self, name: &str, attrs: &[(&str, String)]) {
        self.journal.push(TraceKind::Event, name, 0, self.id, attrs);
    }
}

impl Drop for Span {
    fn drop(&mut self) {
        let dur_us = self.journal.now_us().saturating_sub(self.start_us);
        let mut attrs = std::mem::take(
            &mut *self
                .attrs
                .lock()
                .unwrap_or_else(|poisoned| poisoned.into_inner()),
        );
        attrs.push(("dur_us".to_string(), dur_us.to_string()));
        self.journal.push_owned(
            TraceKind::SpanEnd,
            std::mem::take(&mut self.name),
            self.id,
            self.parent,
            attrs,
        );
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn journal(cap: usize) -> Arc<TraceJournal> {
        Arc::new(TraceJournal::new(cap))
    }

    #[test]
    fn span_tree_records_start_end_and_parentage() {
        let j = journal(64);
        {
            let root = j.span("cycle");
            root.attr("files", "3");
            {
                let child = root.child("fold");
                child.event("file.done", &[("name", "a.log".to_string())]);
            }
        }
        let events = j.snapshot();
        let kinds: Vec<&str> = events.iter().map(|e| e.kind.label()).collect();
        assert_eq!(
            kinds,
            vec!["span_start", "span_start", "event", "span_end", "span_end"]
        );
        let root_start = &events[0];
        let child_start = &events[1];
        assert_eq!(root_start.parent, 0);
        assert_eq!(child_start.parent, root_start.span);
        // The event is owned by the child span.
        assert_eq!(events[2].parent, child_start.span);
        // Child closes before root (RAII order), attrs ride the end record.
        assert_eq!(events[3].span, child_start.span);
        let root_end = &events[4];
        assert_eq!(root_end.span, root_start.span);
        assert!(root_end.attrs.iter().any(|(k, v)| k == "files" && v == "3"));
        assert!(root_end.attrs.iter().any(|(k, _)| k == "dur_us"));
    }

    #[test]
    fn ring_evicts_oldest_first() {
        let j = journal(4);
        for i in 0..10u64 {
            j.event("tick", &[("i", i.to_string())]);
        }
        let events = j.snapshot();
        assert_eq!(events.len(), 4);
        let seqs: Vec<u64> = events.iter().map(|e| e.seq).collect();
        assert_eq!(seqs, vec![6, 7, 8, 9]);
        assert_eq!(j.written(), 10);
    }

    #[test]
    fn capacity_floor_is_one() {
        let j = journal(0);
        assert_eq!(j.capacity(), 1);
        j.event("only", &[]);
        j.event("newer", &[]);
        let events = j.snapshot();
        assert_eq!(events.len(), 1);
        assert_eq!(events[0].name, "newer");
    }

    #[test]
    fn timestamps_are_monotone_in_seq_order() {
        let j = journal(16);
        for _ in 0..8 {
            j.event("t", &[]);
        }
        let events = j.snapshot();
        for pair in events.windows(2) {
            assert!(pair[0].at_us <= pair[1].at_us);
            assert!(pair[0].seq < pair[1].seq);
        }
    }

    #[test]
    fn json_dump_has_schema_and_counts() {
        let j = journal(2);
        for _ in 0..5 {
            j.event("e", &[]);
        }
        let text = j.to_json().to_pretty();
        let doc = crate::json::parse(&text).expect("trace json parses");
        assert_eq!(
            doc.get("schema").and_then(|v| v.as_str()),
            Some(TRACE_SCHEMA)
        );
        assert_eq!(doc.get("capacity").and_then(|v| v.as_u64()), Some(2));
        assert_eq!(doc.get("written").and_then(|v| v.as_u64()), Some(5));
        assert_eq!(doc.get("evicted").and_then(|v| v.as_u64()), Some(3));
        let events = doc.get("events").and_then(|v| v.as_arr()).expect("events");
        assert_eq!(events.len(), 2);
    }
}
