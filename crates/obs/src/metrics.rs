//! Atomic metric primitives and the [`Registry`] that names them.
//!
//! Everything in the deterministic section of a snapshot is an integer
//! (`u64`) updated with relaxed atomic adds. Integer addition commutes,
//! so a counter bumped from N worker threads reads the same total no
//! matter how the scheduler interleaved them — that single property is
//! what lets metrics ride inside the thread-count-invariance guarantee
//! without per-worker merge machinery. Floating point is confined to
//! stage timings, which live in the snapshot's `timing` section and are
//! documented as non-deterministic.

use crate::clock::Stopwatch;
use crate::snapshot::{HistogramSnapshot, MetricsSnapshot, StageSnapshot};
use std::collections::BTreeMap;
use std::sync::atomic::{AtomicU64, Ordering::Relaxed};
use std::sync::{Arc, Mutex, OnceLock};

/// A monotonically increasing event count.
#[derive(Debug, Default)]
pub struct Counter(AtomicU64);

impl Counter {
    /// Add 1.
    pub fn inc(&self) {
        self.add(1);
    }

    /// Add `n`.
    pub fn add(&self, n: u64) {
        self.0.fetch_add(n, Relaxed);
    }

    /// Current total.
    pub fn get(&self) -> u64 {
        self.0.load(Relaxed)
    }
}

/// A last-write-wins instantaneous value (accumulator sizes, distinct
/// counts). Writers that race should prefer [`Gauge::max`], which is
/// order-insensitive.
#[derive(Debug, Default)]
pub struct Gauge(AtomicU64);

impl Gauge {
    /// Set the value.
    pub fn set(&self, v: u64) {
        self.0.store(v, Relaxed);
    }

    /// Raise the value to at least `v` (commutative across threads).
    pub fn max(&self, v: u64) {
        self.0.fetch_max(v, Relaxed);
    }

    /// Current value.
    pub fn get(&self) -> u64 {
        self.0.load(Relaxed)
    }
}

/// Number of power-of-two histogram buckets: index `i` holds values of
/// bit-length `i` (0, 1, 2–3, 4–7, …), so index 0 is exactly zero and
/// index 64 covers the top half of the `u64` range.
const BUCKETS: usize = 65;

/// A fixed-bucket (power-of-two) histogram of `u64` observations.
///
/// Bucket boundaries are static, and per-bucket tallies are atomic adds,
/// so — like [`Counter`] — the full histogram state is thread-count
/// invariant.
#[derive(Debug)]
pub struct Histogram {
    buckets: [AtomicU64; BUCKETS],
    count: AtomicU64,
    sum: AtomicU64,
}

impl Default for Histogram {
    fn default() -> Histogram {
        Histogram {
            buckets: std::array::from_fn(|_| AtomicU64::new(0)),
            count: AtomicU64::new(0),
            sum: AtomicU64::new(0),
        }
    }
}

impl Histogram {
    /// Record one observation.
    pub fn observe(&self, v: u64) {
        let idx = (u64::BITS - v.leading_zeros()) as usize;
        self.buckets[idx].fetch_add(1, Relaxed);
        self.count.fetch_add(1, Relaxed);
        // Saturating rather than wrapping: a pathological sum pins at
        // u64::MAX instead of silently restarting near zero, and the
        // saturation point is order-independent so thread-count
        // invariance is preserved.
        let mut cur = self.sum.load(Relaxed);
        loop {
            let next = cur.saturating_add(v);
            match self.sum.compare_exchange_weak(cur, next, Relaxed, Relaxed) {
                Ok(_) => break,
                Err(seen) => cur = seen,
            }
        }
    }

    /// Number of observations.
    pub fn count(&self) -> u64 {
        self.count.load(Relaxed)
    }

    /// Sum of observations.
    pub fn sum(&self) -> u64 {
        self.sum.load(Relaxed)
    }

    /// Inclusive upper bound of bucket `idx` as a decimal string, with
    /// the overflow bucket rendered as `+Inf` (Prometheus convention,
    /// mirrored in the JSON snapshot so the two expositions agree).
    /// Strings keep the labels exact where f64 would round above 2^53.
    fn bucket_le(idx: usize) -> String {
        match idx {
            0 => "0".to_string(),
            64 => "+Inf".to_string(),
            i => ((1u64 << i) - 1).to_string(),
        }
    }

    pub(crate) fn snapshot(&self) -> HistogramSnapshot {
        let buckets = self
            .buckets
            .iter()
            .enumerate()
            .filter_map(|(i, b)| {
                let n = b.load(Relaxed);
                (n > 0).then(|| (Histogram::bucket_le(i), n))
            })
            .collect();
        HistogramSnapshot {
            count: self.count(),
            sum: self.sum(),
            buckets,
        }
    }
}

/// Accumulated wall time for one named stage.
#[derive(Debug, Default, Clone, Copy)]
struct StageStat {
    wall_ms: f64,
    invocations: u64,
}

/// The naming authority: hands out shared metric handles by name and
/// produces [`MetricsSnapshot`]s.
///
/// A `Registry` is an ordinary value — pipelines and tests create a
/// fresh one per run so snapshots cover exactly one execution (the
/// bit-identical-across-threads tests depend on that). [`Registry::global`]
/// exists for process-wide convenience wiring where per-run isolation is
/// not needed.
#[derive(Debug, Default)]
pub struct Registry {
    counters: Mutex<BTreeMap<String, Arc<Counter>>>,
    gauges: Mutex<BTreeMap<String, Arc<Gauge>>>,
    histograms: Mutex<BTreeMap<String, Arc<Histogram>>>,
    stages: Mutex<BTreeMap<String, StageStat>>,
}

impl Registry {
    /// An empty registry.
    pub fn new() -> Registry {
        Registry::default()
    }

    /// The process-wide registry (created on first use).
    pub fn global() -> &'static Registry {
        static GLOBAL: OnceLock<Registry> = OnceLock::new();
        GLOBAL.get_or_init(Registry::new)
    }

    /// Get or create the counter named `name`.
    pub fn counter(&self, name: &str) -> Arc<Counter> {
        let mut map = self.counters.lock().expect("counter registry poisoned");
        Arc::clone(map.entry(name.to_string()).or_default())
    }

    /// Get or create the gauge named `name`.
    pub fn gauge(&self, name: &str) -> Arc<Gauge> {
        let mut map = self.gauges.lock().expect("gauge registry poisoned");
        Arc::clone(map.entry(name.to_string()).or_default())
    }

    /// Get or create the histogram named `name`.
    pub fn histogram(&self, name: &str) -> Arc<Histogram> {
        let mut map = self.histograms.lock().expect("histogram registry poisoned");
        Arc::clone(map.entry(name.to_string()).or_default())
    }

    /// Open a timing span for stage `name`; the span records its wall
    /// time into the registry when dropped.
    pub fn stage(&self, name: &str) -> StageTimer<'_> {
        StageTimer {
            registry: self,
            name: name.to_string(),
            watch: Stopwatch::start(),
        }
    }

    fn record_stage(&self, name: &str, wall_ms: f64) {
        let mut map = self.stages.lock().expect("stage registry poisoned");
        let stat = map.entry(name.to_string()).or_default();
        stat.wall_ms += wall_ms;
        stat.invocations += 1;
    }

    /// Materialise the current state of every registered metric.
    pub fn snapshot(&self) -> MetricsSnapshot {
        let counters = self
            .counters
            .lock()
            .expect("counter registry poisoned")
            .iter()
            .map(|(k, v)| (k.clone(), v.get()))
            .collect();
        let gauges = self
            .gauges
            .lock()
            .expect("gauge registry poisoned")
            .iter()
            .map(|(k, v)| (k.clone(), v.get()))
            .collect();
        let histograms = self
            .histograms
            .lock()
            .expect("histogram registry poisoned")
            .iter()
            .map(|(k, v)| (k.clone(), v.snapshot()))
            .collect();
        let stages = self
            .stages
            .lock()
            .expect("stage registry poisoned")
            .iter()
            .map(|(k, v)| {
                (
                    k.clone(),
                    StageSnapshot {
                        wall_ms: v.wall_ms,
                        invocations: v.invocations,
                    },
                )
            })
            .collect();
        MetricsSnapshot {
            counters,
            gauges,
            histograms,
            stages,
            http: None,
        }
    }
}

/// A live stage span; records accumulated wall time on drop.
#[derive(Debug)]
pub struct StageTimer<'r> {
    registry: &'r Registry,
    name: String,
    watch: Stopwatch,
}

impl Drop for StageTimer<'_> {
    fn drop(&mut self) {
        self.registry
            .record_stage(&self.name, self.watch.elapsed_ms());
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counters_accumulate_across_threads() {
        let reg = Registry::new();
        let c = reg.counter("t.events");
        std::thread::scope(|s| {
            for _ in 0..4 {
                let c = Arc::clone(&c);
                s.spawn(move || {
                    for _ in 0..1000 {
                        c.inc();
                    }
                });
            }
        });
        assert_eq!(reg.counter("t.events").get(), 4000);
    }

    #[test]
    fn handles_are_shared_by_name() {
        let reg = Registry::new();
        reg.counter("a").add(2);
        reg.counter("a").add(3);
        assert_eq!(reg.counter("a").get(), 5);
    }

    #[test]
    fn gauge_set_and_max() {
        let reg = Registry::new();
        let g = reg.gauge("depth");
        g.set(7);
        g.max(3);
        assert_eq!(g.get(), 7);
        g.max(11);
        assert_eq!(g.get(), 11);
    }

    #[test]
    fn histogram_buckets_by_bit_length() {
        let h = Histogram::default();
        for v in [0u64, 1, 2, 3, 4, 1000] {
            h.observe(v);
        }
        assert_eq!(h.count(), 6);
        assert_eq!(h.sum(), 1010);
        let snap = h.snapshot();
        // 0 → le "0"; 1 → le "1"; 2,3 → le "3"; 4 → le "7"; 1000 → le "1023".
        assert_eq!(
            snap.buckets,
            vec![
                ("0".to_string(), 1),
                ("1".to_string(), 1),
                ("3".to_string(), 2),
                ("7".to_string(), 1),
                ("1023".to_string(), 1),
            ]
        );
    }

    #[test]
    fn overflow_bucket_renders_plus_inf_and_sum_saturates() {
        let h = Histogram::default();
        h.observe(u64::MAX);
        h.observe(u64::MAX);
        assert_eq!(h.count(), 2);
        assert_eq!(h.sum(), u64::MAX, "sum saturates instead of wrapping");
        let snap = h.snapshot();
        assert_eq!(snap.buckets, vec![("+Inf".to_string(), 2)]);
    }

    #[test]
    fn stage_timer_records_on_drop() {
        let reg = Registry::new();
        {
            let _t = reg.stage("demo");
        }
        {
            let _t = reg.stage("demo");
        }
        let snap = reg.snapshot();
        let demo = snap.stages.get("demo").expect("stage recorded");
        assert_eq!(demo.invocations, 2);
        assert!(demo.wall_ms >= 0.0);
    }

    #[test]
    fn global_registry_is_a_singleton() {
        let a = Registry::global() as *const Registry;
        let b = Registry::global() as *const Registry;
        assert_eq!(a, b);
    }
}
