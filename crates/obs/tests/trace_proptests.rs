//! Property tests for the trace ring journal under concurrent writers.
//!
//! The journal promises three things no matter how writers interleave:
//! no torn records (every surviving event is exactly one writer's event,
//! name and attrs consistent), the capacity bound holds, and eviction is
//! strictly oldest-first (the survivors are precisely the newest
//! `min(written, capacity)` sequence numbers, contiguous).

use certchain_obs::{TraceJournal, TraceKind};
use proptest::prelude::*;
use std::sync::Arc;

/// One writer's event name: decodable back to (writer, index) so a torn
/// record — name from one writer, attrs from another — is detectable.
fn event_name(writer: usize, index: usize) -> String {
    format!("w{writer}.e{index}")
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    #[test]
    fn concurrent_writers_never_tear_or_overfill(
        writers in 1usize..6,
        per_writer in 1usize..40,
        capacity in 1usize..64,
    ) {
        let journal = Arc::new(TraceJournal::new(capacity));
        std::thread::scope(|scope| {
            for w in 0..writers {
                let journal = Arc::clone(&journal);
                scope.spawn(move || {
                    for i in 0..per_writer {
                        journal.event(
                            &event_name(w, i),
                            &[("writer", w.to_string()), ("index", i.to_string())],
                        );
                    }
                });
            }
        });

        let total = (writers * per_writer) as u64;
        prop_assert_eq!(journal.written(), total);

        let events = journal.snapshot();
        // Capacity bound, exactly: once enough events exist the ring is
        // full, never over.
        prop_assert_eq!(events.len() as u64, total.min(capacity as u64));

        // Strictly oldest-first eviction: the survivors are the top
        // `len` seqs, contiguous, and snapshot() sorts them.
        let seqs: Vec<u64> = events.iter().map(|e| e.seq).collect();
        let expect: Vec<u64> = (total - events.len() as u64..total).collect();
        prop_assert_eq!(seqs, expect);

        // No torn records: name and both attrs agree on one (writer,
        // index) pair, and that pair is in range.
        for ev in &events {
            prop_assert_eq!(ev.kind, TraceKind::Event);
            let writer: usize = ev
                .attrs
                .iter()
                .find(|(k, _)| k == "writer")
                .and_then(|(_, v)| v.parse().ok())
                .expect("writer attr");
            let index: usize = ev
                .attrs
                .iter()
                .find(|(k, _)| k == "index")
                .and_then(|(_, v)| v.parse().ok())
                .expect("index attr");
            prop_assert!(writer < writers && index < per_writer);
            prop_assert_eq!(&ev.name, &event_name(writer, index));
        }
    }

    #[test]
    fn sequential_fill_keeps_every_event_below_capacity(
        events in 1usize..32,
        headroom in 0usize..32,
    ) {
        let journal = Arc::new(TraceJournal::new(events + headroom));
        for i in 0..events {
            journal.event(&event_name(0, i), &[]);
        }
        let snap = journal.snapshot();
        prop_assert_eq!(snap.len(), events);
        for (i, ev) in snap.iter().enumerate() {
            prop_assert_eq!(ev.seq, i as u64);
            prop_assert_eq!(&ev.name, &event_name(0, i));
        }
    }
}
