//! `certchain serve`: an incremental ingest daemon over a spool of
//! rotated Zeek logs.
//!
//! A campus monitor does not produce one giant `ssl.log`; it rotates
//! `ssl.<timestamp>.log` / `x509.<timestamp>.log` files into a spool
//! directory around the clock. `serve` watches such a spool, folds each
//! new file into a checkpointable [`PipelineState`] (ordered by the
//! name-embedded rotation timestamp), persists a checkpoint after every
//! cycle that ingested data, and exposes the live report tables plus a
//! `certchain-metrics/v1` snapshot over a tiny HTTP endpoint.
//!
//! The defining invariant is inherited from the state layer: folding a
//! trace across any number of serve cycles — including process restarts
//! that resume from the checkpoint — finalizes to tables byte-identical
//! to one `certchain analyze` batch run over the concatenated logs, at
//! every thread count. A kill at any moment loses at most the files
//! folded since the last completed checkpoint; the ledger makes the
//! next run re-fold exactly those.
//!
//! Two metrics registries cooperate here. The serve-loop registry lives
//! as long as the process and accumulates fold-side counters
//! (`pipeline.ssl_records`, spool skip tallies, stage timings) across
//! cycles. Finalization is re-run from scratch on every publish, so it
//! gets a *fresh* registry each time — its counters are absolute values
//! recomputed from state, and reusing a registry would double-add them.
//! `/metrics` merges the two snapshots (finalize wins on shared keys);
//! the deterministic section of the result is thread-count invariant
//! like every other report surface in the workspace.

use crate::analyze::render;
use crate::dataset::{load_crosssign, load_ct_index, load_trust};
use crate::{io_ctx, CliError, CliResult};
use certchain_chainlab::{
    Analysis, AnalysisSummary, CrossSignRegistry, Pipeline, PipelineOptions, PipelineState,
};
use certchain_netsim::{order_spool, LogKind, SslLogStream, StreamStats, X509LogStream};
use certchain_obs::json::JsonValue;
use certchain_obs::{HttpResponse, HttpServer, MetricsSnapshot, Registry};
use std::collections::BTreeSet;
use std::path::Path;
use std::sync::{Arc, Mutex};

/// Knobs for `certchain serve`.
#[derive(Debug, Clone)]
pub struct ServeOptions {
    /// Worker threads (`0` = available parallelism). The report bytes
    /// are identical for every value.
    pub threads: usize,
    /// Bind an HTTP endpoint on this address (e.g. `127.0.0.1:8377`).
    pub listen: Option<String>,
    /// Drain mode: scan the spool once, fold everything new, checkpoint,
    /// print the report tables to stdout, exit. This is the batch-
    /// equivalent mode the CI smoke test compares against `analyze`.
    pub drain_once: bool,
    /// Milliseconds between spool scans in watch mode.
    pub interval_ms: u64,
    /// Write the bound HTTP address (e.g. `127.0.0.1:41873`) to this
    /// file once listening — how scripts and tests discover a `:0` bind.
    pub listen_addr_file: Option<std::path::PathBuf>,
}

impl Default for ServeOptions {
    fn default() -> ServeOptions {
        ServeOptions {
            threads: 0,
            listen: None,
            drain_once: false,
            interval_ms: 1000,
            listen_addr_file: None,
        }
    }
}

/// The loaded dataset context every finalize pipeline is built from.
struct Corpus<'a> {
    trust: &'a certchain_trust::TrustDb,
    ct: &'a certchain_ctlog::DomainIndex,
    crosssign: &'a CrossSignRegistry,
}

/// What the HTTP endpoint serves: everything is pre-rendered at publish
/// time so the handler only clones strings and never touches pipeline
/// types.
#[derive(Debug, Clone, Default)]
struct Published {
    report: String,
    report_json: String,
    metrics_json: String,
    status_json: String,
}

/// Run the serve loop. In drain mode returns the final report tables
/// (exactly [`render`]'s output — `analyze` minus its loss-accounting
/// line); in watch mode this blocks until the process is killed, which
/// is safe at any instant thanks to the checkpoint.
pub fn serve(
    dir: &Path,
    spool: &Path,
    checkpoint: &Path,
    opts: &ServeOptions,
) -> CliResult<String> {
    let trust = load_trust(dir)?;
    let ct = load_ct_index(dir)?;
    let crosssign_master = CrossSignRegistry::from_disclosures(&load_crosssign(dir)?);
    let registry = Arc::new(Registry::new());
    let options = PipelineOptions {
        threads: opts.threads,
        ..PipelineOptions::default()
    };
    let pipeline = Pipeline::with_options(&trust, &ct, crosssign_master.clone(), options)
        .with_metrics(Arc::clone(&registry));

    let mut state = match PipelineState::load_latest(checkpoint)
        .map_err(|e| CliError::Invalid(format!("checkpoint {}: {e}", checkpoint.display())))?
    {
        Some(s) => {
            eprintln!(
                "serve: resumed checkpoint gen {} ({} files folded, {} ssl records)",
                s.generation(),
                s.folded_files().len(),
                s.ssl_records()
            );
            s
        }
        None => {
            eprintln!(
                "serve: no checkpoint under {}, starting fresh",
                checkpoint.display()
            );
            PipelineState::new()
        }
    };

    let corpus = Corpus {
        trust: &trust,
        ct: &ct,
        crosssign: &crosssign_master,
    };
    let published = Arc::new(Mutex::new(Published::default()));
    // Publish the (possibly resumed, possibly empty) state before the
    // endpoint goes live, so no request ever sees an empty document.
    publish(&corpus, &state, opts.threads, &registry, &published);
    let _server = match &opts.listen {
        Some(addr) => {
            let server = HttpServer::bind(addr, http_handler(Arc::clone(&published)))
                .map_err(io_ctx(format!("binding {addr}")))?;
            eprintln!("serve: listening on http://{}/", server.local_addr());
            if let Some(path) = &opts.listen_addr_file {
                std::fs::write(path, format!("{}\n", server.local_addr()))
                    .map_err(io_ctx(format!("writing {}", path.display())))?;
            }
            Some(server)
        }
        None => None,
    };

    // Names already tallied as skipped (unrecognized or compressed), so
    // an idle spool does not re-count them every cycle. Process-local on
    // purpose: skip tallies are observability, not analysis state.
    let mut noted_skips: BTreeSet<String> = BTreeSet::new();
    let mut first_cycle = true;
    loop {
        let folded = run_cycle(&pipeline, &mut state, spool, &registry, &mut noted_skips)?;
        if folded > 0 {
            let generation = state.save_checkpoint(checkpoint).map_err(|e| {
                CliError::Invalid(format!("checkpoint {}: {e}", checkpoint.display()))
            })?;
            eprintln!(
                "serve: folded {folded} file{} -> checkpoint gen {generation}",
                if folded == 1 { "" } else { "s" }
            );
        }
        if folded > 0 || first_cycle {
            let analysis = publish(&corpus, &state, opts.threads, &registry, &published);
            if opts.drain_once {
                return Ok(render(&analysis));
            }
        }
        first_cycle = false;
        std::thread::sleep(std::time::Duration::from_millis(opts.interval_ms.max(50)));
    }
}

/// One spool scan: order the recognizable rotated logs by rotation
/// timestamp, fold every file the ledger has not seen, tally the rest.
/// Returns how many files were folded.
fn run_cycle(
    pipeline: &Pipeline<'_>,
    state: &mut PipelineState,
    spool: &Path,
    registry: &Registry,
    noted_skips: &mut BTreeSet<String>,
) -> CliResult<u64> {
    let mut names: Vec<String> = Vec::new();
    let entries =
        std::fs::read_dir(spool).map_err(io_ctx(format!("reading spool {}", spool.display())))?;
    for entry in entries {
        let entry = entry.map_err(io_ctx(format!("reading spool {}", spool.display())))?;
        if entry
            .file_type()
            .map_err(io_ctx(format!("stat {}", entry.path().display())))?
            .is_file()
        {
            names.push(entry.file_name().to_string_lossy().into_owned());
        }
    }
    let (ordered, unrecognized) = order_spool(names.iter().map(String::as_str));

    for name in unrecognized {
        if noted_skips.insert(name.to_string()) {
            registry.counter("spool.unrecognized").add(1);
            eprintln!("serve: skipping unrecognized spool file {name:?}");
        }
    }

    let mut folded = 0u64;
    for (log, name) in ordered {
        if state.has_folded(name) {
            continue;
        }
        if log.compressed {
            // The workspace is dependency-free: no gzip decoder. Skip
            // with a tally rather than failing the whole spool.
            if noted_skips.insert(name.to_string()) {
                registry.counter("spool.compressed_skipped").add(1);
                eprintln!("serve: skipping compressed spool file {name:?} (no gzip support)");
            }
            continue;
        }
        fold_file(pipeline, state, &spool.join(name), name, log.kind)?;
        state.note_folded(name);
        registry.counter("spool.files_folded").add(1);
        folded += 1;
    }
    Ok(folded)
}

/// Fold one rotated log file into the state via the permissive streams
/// (malformed rows are skipped and tallied into the state's persistent
/// loss map alongside the data they were lost from).
fn fold_file(
    pipeline: &Pipeline<'_>,
    state: &mut PipelineState,
    path: &Path,
    name: &str,
    kind: LogKind,
) -> CliResult<()> {
    let file = std::fs::File::open(path).map_err(io_ctx(format!("reading {}", path.display())))?;
    let reader = std::io::BufReader::new(file);
    let stats: Arc<StreamStats> = match kind {
        LogKind::Ssl => {
            let stream = SslLogStream::permissive(reader);
            let stats = stream.stats();
            let mapped = stream.map(|r| r.map_err(|e| CliError::Invalid(format!("{name}: {e}"))));
            pipeline.fold_ssl_stream(state, mapped)?;
            stats
        }
        LogKind::X509 => {
            let stream = X509LogStream::permissive(reader);
            let stats = stream.stats();
            let mapped = stream.map(|r| r.map_err(|e| CliError::Invalid(format!("{name}: {e}"))));
            pipeline.fold_x509_stream(state, mapped)?;
            stats
        }
    };
    let prefix = match kind {
        LogKind::Ssl => "ssl",
        LogKind::X509 => "x509",
    };
    state.add_loss(&format!("spool.{prefix}.lines"), stats.lines());
    state.add_loss(&format!("spool.{prefix}.malformed"), stats.malformed());
    Ok(())
}

/// Finalize the current state and publish every HTTP surface. Uses a
/// fresh registry + pipeline so finalize-side counters are absolute per
/// publish (see the module doc), then merges with the serve-loop
/// snapshot.
fn publish(
    corpus: &Corpus<'_>,
    state: &PipelineState,
    threads: usize,
    serve_registry: &Registry,
    published: &Mutex<Published>,
) -> Analysis {
    let finalize_registry = Arc::new(Registry::new());
    let options = PipelineOptions {
        threads,
        ..PipelineOptions::default()
    };
    let finalize_pipeline =
        Pipeline::with_options(corpus.trust, corpus.ct, corpus.crosssign.clone(), options)
            .with_metrics(Arc::clone(&finalize_registry));
    let analysis = finalize_pipeline.finalize_state(state);
    let snapshot = merge_snapshots(serve_registry.snapshot(), finalize_registry.snapshot());
    let next = Published {
        report: render(&analysis),
        report_json: AnalysisSummary::from_analysis(&analysis).to_json() + "\n",
        metrics_json: snapshot.to_json().to_pretty() + "\n",
        status_json: status_json(state).to_pretty() + "\n",
    };
    // A poisoned lock must not kill the daemon: `Published` is only ever
    // replaced wholesale with a fully-built value, so the data under a
    // poison flag is still the last complete publish. Recover and go on.
    *published
        .lock()
        .unwrap_or_else(|poisoned| poisoned.into_inner()) = next;
    analysis
}

/// Merge the long-lived serve-loop snapshot with the per-publish
/// finalize snapshot. Finalize wins on shared keys: its values are
/// absolute recomputations from state, which is exactly the current
/// truth; the serve side contributes the cumulative fold-path signals
/// the finalize pass never sees.
fn merge_snapshots(serve: MetricsSnapshot, finalize: MetricsSnapshot) -> MetricsSnapshot {
    let mut merged = serve;
    merged.counters.extend(finalize.counters);
    merged.gauges.extend(finalize.gauges);
    merged.histograms.extend(finalize.histograms);
    merged.stages.extend(finalize.stages);
    merged
}

/// The `/status` document (`certchain-serve/v1`): checkpoint position,
/// fold totals, and the persistent loss map.
fn status_json(state: &PipelineState) -> JsonValue {
    let loss = state
        .loss()
        .iter()
        .map(|(k, v)| (k.clone(), JsonValue::Num(*v as f64)))
        .collect();
    let folded = state
        .folded_files()
        .iter()
        .map(|f| JsonValue::Str(f.clone()))
        .collect();
    JsonValue::Obj(vec![
        ("schema".into(), JsonValue::Str("certchain-serve/v1".into())),
        (
            "generation".into(),
            JsonValue::Num(state.generation() as f64),
        ),
        ("revision".into(), JsonValue::Num(state.revision() as f64)),
        (
            "ssl_records".into(),
            JsonValue::Num(state.ssl_records() as f64),
        ),
        (
            "no_chain_records".into(),
            JsonValue::Num(state.no_chain_records() as f64),
        ),
        ("x509_rows".into(), JsonValue::Num(state.x509_rows() as f64)),
        (
            "distinct_chains".into(),
            JsonValue::Num(state.distinct_chains() as f64),
        ),
        (
            "distinct_certificates".into(),
            JsonValue::Num(state.distinct_certificates() as f64),
        ),
        ("folded_files".into(), JsonValue::Arr(folded)),
        ("loss".into(), JsonValue::Obj(loss)),
    ])
}

/// The HTTP routing table over the published strings.
fn http_handler(published: Arc<Mutex<Published>>) -> Arc<certchain_obs::http::Handler> {
    Arc::new(move |path: &str| {
        // Keep serving the last complete publish even if a publisher
        // panicked while holding the lock (see `publish`).
        let p = published
            .lock()
            .unwrap_or_else(|poisoned| poisoned.into_inner())
            .clone();
        match path {
            "/metrics" => HttpResponse::ok("application/json", p.metrics_json),
            "/report" => HttpResponse::ok("text/plain; charset=utf-8", p.report),
            "/report.json" => HttpResponse::ok("application/json", p.report_json),
            "/status" | "/" => HttpResponse::ok("application/json", p.status_json),
            _ => HttpResponse::not_found(),
        }
    })
}

/// Split a dataset's batch logs into a spool of rotated files — the
/// inverse of what a Zeek deployment does, used by the CI smoke test
/// and for local experiments with `serve`.
///
/// `<dir>/ssl.log` and `<dir>/x509.log` are each split into `parts`
/// contiguous row ranges written as
/// `<out>/<kind>.2024-09-01-<HH>.log` (hour = part index), every part
/// carrying the original TSV header so the streams parse it standalone.
pub fn spool_split(dir: &Path, out: &Path, parts: u64) -> CliResult<String> {
    if parts == 0 || parts > 24 {
        return Err(CliError::Invalid(format!(
            "--parts must be between 1 and 24, got {parts}"
        )));
    }
    std::fs::create_dir_all(out).map_err(io_ctx(format!("creating {}", out.display())))?;
    let mut written = Vec::new();
    for kind in ["ssl", "x509"] {
        let src = dir.join(format!("{kind}.log"));
        let text =
            std::fs::read_to_string(&src).map_err(io_ctx(format!("reading {}", src.display())))?;
        let mut header = String::new();
        let mut data: Vec<&str> = Vec::new();
        for line in text.lines() {
            if line.starts_with('#') {
                // Keep the preamble; drop the `#close` footer (each part
                // is an open-ended rotated file).
                if !line.starts_with("#close") {
                    header.push_str(line);
                    header.push('\n');
                }
            } else {
                data.push(line);
            }
        }
        let per = data.len().div_ceil(parts as usize).max(1);
        for (i, chunk) in data.chunks(per).enumerate() {
            let name = format!("{kind}.2024-09-01-{i:02}.log");
            let mut body = header.clone();
            for line in chunk {
                body.push_str(line);
                body.push('\n');
            }
            std::fs::write(out.join(&name), body)
                .map_err(io_ctx(format!("writing {}", out.join(&name).display())))?;
            written.push(name);
        }
    }
    written.sort();
    Ok(format!(
        "spooled {} file{} into {}:\n  {}\n",
        written.len(),
        if written.len() == 1 { "" } else { "s" },
        out.display(),
        written.join("\n  ")
    ))
}
