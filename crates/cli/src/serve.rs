//! `certchain serve`: an incremental ingest daemon over a spool of
//! rotated Zeek logs.
//!
//! A campus monitor does not produce one giant `ssl.log`; it rotates
//! `ssl.<timestamp>.log` / `x509.<timestamp>.log` files into a spool
//! directory around the clock. `serve` watches such a spool, folds each
//! new file into a checkpointable [`PipelineState`] (ordered by the
//! name-embedded rotation timestamp), persists a checkpoint after every
//! cycle that ingested data, and exposes the live report tables plus a
//! `certchain-metrics/v1` snapshot over a tiny HTTP endpoint.
//!
//! The defining invariant is inherited from the state layer: folding a
//! trace across any number of serve cycles — including process restarts
//! that resume from the checkpoint — finalizes to tables byte-identical
//! to one `certchain analyze` batch run over the concatenated logs, at
//! every thread count. A kill at any moment loses at most the files
//! folded since the last completed checkpoint; the ledger makes the
//! next run re-fold exactly those.
//!
//! Two metrics registries cooperate here. The serve-loop registry lives
//! as long as the process and accumulates fold-side counters
//! (`pipeline.ssl_records`, spool skip tallies, stage timings) across
//! cycles. Finalization is re-run from scratch on every publish, so it
//! gets a *fresh* registry each time — its counters are absolute values
//! recomputed from state, and reusing a registry would double-add them.
//! `/metrics` merges the two snapshots (finalize wins on shared keys);
//! the deterministic section of the result is thread-count invariant
//! like every other report surface in the workspace.
//!
//! Observability (all strictly on the timing side of the snapshot
//! split — report tables and the deterministic metrics section are
//! byte-identical with or without it):
//!
//! - every scan/fold/checkpoint/publish cycle runs under a
//!   `serve.cycle` trace span (children: `serve.scan`, one `serve.fold`
//!   per file, `checkpoint.commit` with per-field fsync events,
//!   `serve.publish`) in a bounded ring journal served at `/trace.json`;
//! - `/metrics` negotiates JSON (default) or Prometheus text format via
//!   `?format=prometheus` / `Accept: text/plain`;
//! - `/report` negotiates text (default) or the `/report.json` body via
//!   `?format=json` / `Accept: application/json`; unknown formats get
//!   `406` with a plain-text hint;
//! - `/healthz` carries a stall watchdog: `503` once no cycle has
//!   completed within `--watchdog-cycles` × `--interval-ms`, back to
//!   `200` as soon as a cycle completes again;
//! - per-request accounting (path, status, latency) lands in the
//!   timing section's `http` block.

use crate::analyze::render;
use crate::dataset::{load_crosssign, load_ct_index, load_trust};
use crate::{io_ctx, CliError, CliResult};
use certchain_chainlab::{
    Analysis, AnalysisSummary, CrossSignRegistry, Pipeline, PipelineOptions, PipelineState,
};
use certchain_netsim::{order_spool, LogKind, SslLogStream, StreamStats, X509LogStream};
use certchain_obs::clock::Stopwatch;
use certchain_obs::json::JsonValue;
use certchain_obs::prom::{to_prometheus, PROMETHEUS_CONTENT_TYPE};
use certchain_obs::trace::{Span, TraceJournal};
use certchain_obs::{HttpRequest, HttpResponse, HttpServer, HttpStats, MetricsSnapshot, Registry};
use std::collections::BTreeSet;
use std::path::Path;
use std::sync::atomic::{AtomicU64, Ordering::Relaxed};
use std::sync::{Arc, Mutex};

/// Knobs for `certchain serve`.
#[derive(Debug, Clone)]
pub struct ServeOptions {
    /// Worker threads (`0` = available parallelism). The report bytes
    /// are identical for every value.
    pub threads: usize,
    /// Bind an HTTP endpoint on this address (e.g. `127.0.0.1:8377`).
    pub listen: Option<String>,
    /// Drain mode: scan the spool once, fold everything new, checkpoint,
    /// print the report tables to stdout, exit. This is the batch-
    /// equivalent mode the CI smoke test compares against `analyze`.
    pub drain_once: bool,
    /// Milliseconds between spool scans in watch mode.
    pub interval_ms: u64,
    /// Write the bound HTTP address (e.g. `127.0.0.1:41873`) to this
    /// file once listening — how scripts and tests discover a `:0` bind.
    pub listen_addr_file: Option<std::path::PathBuf>,
    /// `/healthz` flips to 503 when no cycle has completed within
    /// `watchdog_cycles × interval_ms` milliseconds.
    pub watchdog_cycles: u64,
    /// Capacity of the trace journal ring (records; oldest evicted).
    pub trace_capacity: usize,
}

impl Default for ServeOptions {
    fn default() -> ServeOptions {
        ServeOptions {
            threads: 0,
            listen: None,
            drain_once: false,
            interval_ms: 1000,
            listen_addr_file: None,
            watchdog_cycles: 5,
            trace_capacity: 1024,
        }
    }
}

/// Stall watchdog state shared between the serve loop (writer) and the
/// `/healthz` handler (reader). All times are milliseconds on the
/// process-lifetime stopwatch — wall-clock data, never near an artifact.
struct ServeHealth {
    uptime: Stopwatch,
    window_ms: u64,
    last_cycle_end_ms: AtomicU64,
    cycles: AtomicU64,
    generation: AtomicU64,
}

impl ServeHealth {
    fn new(window_ms: u64) -> ServeHealth {
        ServeHealth {
            uptime: Stopwatch::start(),
            window_ms,
            last_cycle_end_ms: AtomicU64::new(0),
            cycles: AtomicU64::new(0),
            generation: AtomicU64::new(0),
        }
    }

    /// Record a completed cycle (idle cycles count: the loop is alive).
    fn note_cycle(&self, generation: u64) {
        self.cycles.fetch_add(1, Relaxed);
        self.generation.store(generation, Relaxed);
        self.last_cycle_end_ms
            .store(self.uptime.elapsed_ms() as u64, Relaxed);
    }

    /// The `/healthz` response: `certchain-healthz/v1`, status 200 while
    /// cycles keep completing inside the watchdog window, 503 otherwise.
    fn response(&self) -> HttpResponse {
        let now = self.uptime.elapsed_ms() as u64;
        let since = now.saturating_sub(self.last_cycle_end_ms.load(Relaxed));
        let stalled = since > self.window_ms;
        let doc = JsonValue::Obj(vec![
            (
                "schema".into(),
                JsonValue::Str("certchain-healthz/v1".into()),
            ),
            (
                "status".into(),
                JsonValue::Str(if stalled { "stalled" } else { "ok" }.into()),
            ),
            (
                "cycles".into(),
                JsonValue::Num(self.cycles.load(Relaxed) as f64),
            ),
            ("since_last_cycle_ms".into(), JsonValue::Num(since as f64)),
            ("window_ms".into(), JsonValue::Num(self.window_ms as f64)),
            (
                "generation".into(),
                JsonValue::Num(self.generation.load(Relaxed) as f64),
            ),
        ]);
        let body = doc.to_pretty() + "\n";
        if stalled {
            HttpResponse::service_unavailable("application/json", body)
        } else {
            HttpResponse::ok("application/json", body)
        }
    }
}

/// The loaded dataset context every finalize pipeline is built from.
struct Corpus<'a> {
    trust: &'a certchain_trust::TrustDb,
    ct: &'a certchain_ctlog::DomainIndex,
    crosssign: &'a CrossSignRegistry,
}

/// What the HTTP endpoint serves. Report/status surfaces are
/// pre-rendered at publish time; `/metrics` is rendered per request by
/// merging the stored finalize snapshot with the live serve-loop
/// registry (whose stage timings and HTTP accounting move between
/// publishes).
#[derive(Debug, Clone, Default)]
struct Published {
    report: String,
    report_json: String,
    status_json: String,
    finalize: MetricsSnapshot,
}

/// Shared state captured by the HTTP handler.
#[derive(Clone)]
struct Endpoints {
    published: Arc<Mutex<Published>>,
    registry: Arc<Registry>,
    http_stats: Arc<HttpStats>,
    journal: Arc<TraceJournal>,
    health: Arc<ServeHealth>,
}

/// Run the serve loop. In drain mode returns the final report tables
/// (exactly [`render`]'s output — `analyze` minus its loss-accounting
/// line); in watch mode this blocks until the process is killed, which
/// is safe at any instant thanks to the checkpoint.
pub fn serve(
    dir: &Path,
    spool: &Path,
    checkpoint: &Path,
    opts: &ServeOptions,
) -> CliResult<String> {
    let trust = load_trust(dir)?;
    let ct = load_ct_index(dir)?;
    let crosssign_master = CrossSignRegistry::from_disclosures(&load_crosssign(dir)?);
    let registry = Arc::new(Registry::new());
    let journal = Arc::new(TraceJournal::new(opts.trace_capacity.max(16)));
    let health = Arc::new(ServeHealth::new(
        opts.interval_ms
            .max(50)
            .saturating_mul(opts.watchdog_cycles.max(1)),
    ));
    let http_stats = Arc::new(HttpStats::new());
    let options = PipelineOptions {
        threads: opts.threads,
        ..PipelineOptions::default()
    };
    let pipeline = Pipeline::with_options(&trust, &ct, crosssign_master.clone(), options)
        .with_metrics(Arc::clone(&registry))
        .with_trace(Arc::clone(&journal));

    let mut state = match PipelineState::load_latest(checkpoint)
        .map_err(|e| CliError::Invalid(format!("checkpoint {}: {e}", checkpoint.display())))?
    {
        Some(s) => {
            eprintln!(
                "serve: resumed checkpoint gen {} ({} files folded, {} ssl records)",
                s.generation(),
                s.folded_files().len(),
                s.ssl_records()
            );
            s
        }
        None => {
            eprintln!(
                "serve: no checkpoint under {}, starting fresh",
                checkpoint.display()
            );
            PipelineState::new()
        }
    };

    let corpus = Corpus {
        trust: &trust,
        ct: &ct,
        crosssign: &crosssign_master,
    };
    let published = Arc::new(Mutex::new(Published::default()));
    // Publish the (possibly resumed, possibly empty) state before the
    // endpoint goes live, so no request ever sees an empty document.
    publish(&corpus, &state, opts.threads, &published, None);
    let endpoints = Endpoints {
        published: Arc::clone(&published),
        registry: Arc::clone(&registry),
        http_stats: Arc::clone(&http_stats),
        journal: Arc::clone(&journal),
        health: Arc::clone(&health),
    };
    let _server = match &opts.listen {
        Some(addr) => {
            let server = HttpServer::bind_with_stats(
                addr,
                http_handler(endpoints),
                Some(Arc::clone(&http_stats)),
            )
            .map_err(io_ctx(format!("binding {addr}")))?;
            eprintln!("serve: listening on http://{}/", server.local_addr());
            if let Some(path) = &opts.listen_addr_file {
                std::fs::write(path, format!("{}\n", server.local_addr()))
                    .map_err(io_ctx(format!("writing {}", path.display())))?;
            }
            Some(server)
        }
        None => None,
    };

    // Names already tallied as skipped (unrecognized or compressed), so
    // an idle spool does not re-count them every cycle. Process-local on
    // purpose: skip tallies are observability, not analysis state.
    let mut noted_skips: BTreeSet<String> = BTreeSet::new();
    let mut first_cycle = true;
    loop {
        // The per-cycle health timeline: one root span per scan cycle,
        // children for scan / fold / checkpoint / publish, summary attrs
        // on the cycle itself.
        let cycle = journal.span("serve.cycle");
        let folded = run_cycle(
            &pipeline,
            &mut state,
            spool,
            &registry,
            &mut noted_skips,
            &cycle,
        )?;
        if folded > 0 {
            // Persist the aggregate category census alongside the counts
            // — the checkpoint-level analogue of the columnar store's
            // per-segment category digests. Recomputed every cycle
            // because late-arriving x509 files can migrate chains out of
            // `incomplete`.
            let census = state.category_census(&trust);
            state.note_category_census(census);
            let generation = state
                .save_checkpoint_traced(checkpoint, Some(&cycle))
                .map_err(|e| {
                    CliError::Invalid(format!("checkpoint {}: {e}", checkpoint.display()))
                })?;
            eprintln!(
                "serve: folded {folded} file{} -> checkpoint gen {generation}",
                if folded == 1 { "" } else { "s" }
            );
        }
        let analysis = if folded > 0 || first_cycle {
            Some(publish(
                &corpus,
                &state,
                opts.threads,
                &published,
                Some(&cycle),
            ))
        } else {
            None
        };
        cycle.attr("files_folded", folded.to_string());
        cycle.attr("ssl_records", state.ssl_records().to_string());
        cycle.attr("generation", state.generation().to_string());
        drop(cycle);
        health.note_cycle(state.generation());
        if let Some(analysis) = analysis {
            if opts.drain_once {
                return Ok(render(&analysis));
            }
        }
        first_cycle = false;
        std::thread::sleep(std::time::Duration::from_millis(opts.interval_ms.max(50)));
    }
}

/// One spool scan: order the recognizable rotated logs by rotation
/// timestamp, fold every file the ledger has not seen, tally the rest.
/// Returns how many files were folded.
fn run_cycle(
    pipeline: &Pipeline<'_>,
    state: &mut PipelineState,
    spool: &Path,
    registry: &Registry,
    noted_skips: &mut BTreeSet<String>,
    cycle: &Span,
) -> CliResult<u64> {
    let scan = cycle.child("serve.scan");
    let mut names: Vec<String> = Vec::new();
    let entries =
        std::fs::read_dir(spool).map_err(io_ctx(format!("reading spool {}", spool.display())))?;
    for entry in entries {
        let entry = entry.map_err(io_ctx(format!("reading spool {}", spool.display())))?;
        // Anything but a directory is fair game: regular files are the
        // normal case, and named pipes let a feeder stream a rotation
        // straight into the fold.
        if !entry
            .file_type()
            .map_err(io_ctx(format!("stat {}", entry.path().display())))?
            .is_dir()
        {
            names.push(entry.file_name().to_string_lossy().into_owned());
        }
    }
    let (ordered, unrecognized) = order_spool(names.iter().map(String::as_str));
    scan.attr("files_seen", ordered.len().to_string());
    drop(scan);

    for name in unrecognized {
        if noted_skips.insert(name.to_string()) {
            registry.counter("spool.unrecognized").add(1);
            eprintln!("serve: skipping unrecognized spool file {name:?}");
        }
    }

    let mut folded = 0u64;
    for (log, name) in ordered {
        if state.has_folded(name) {
            continue;
        }
        if log.compressed {
            // The workspace is dependency-free: no gzip decoder. Skip
            // with a tally rather than failing the whole spool.
            if noted_skips.insert(name.to_string()) {
                registry.counter("spool.compressed_skipped").add(1);
                eprintln!("serve: skipping compressed spool file {name:?} (no gzip support)");
            }
            continue;
        }
        let fold_span = cycle.child("serve.fold");
        fold_span.attr("file", name);
        let rows_before = state.ssl_records() + state.x509_rows();
        fold_file(pipeline, state, &spool.join(name), name, log.kind)?;
        fold_span.attr(
            "rows",
            (state.ssl_records() + state.x509_rows() - rows_before).to_string(),
        );
        drop(fold_span);
        state.note_folded(name);
        registry.counter("spool.files_folded").add(1);
        folded += 1;
    }
    Ok(folded)
}

/// Fold one rotated log file into the state via the permissive streams
/// (malformed rows are skipped and tallied into the state's persistent
/// loss map alongside the data they were lost from).
fn fold_file(
    pipeline: &Pipeline<'_>,
    state: &mut PipelineState,
    path: &Path,
    name: &str,
    kind: LogKind,
) -> CliResult<()> {
    let file = std::fs::File::open(path).map_err(io_ctx(format!("reading {}", path.display())))?;
    let reader = std::io::BufReader::new(file);
    let stats: Arc<StreamStats> = match kind {
        LogKind::Ssl => {
            let stream = SslLogStream::permissive(reader);
            let stats = stream.stats();
            let mapped = stream.map(|r| r.map_err(|e| CliError::Invalid(format!("{name}: {e}"))));
            pipeline.fold_ssl_stream(state, mapped)?;
            stats
        }
        LogKind::X509 => {
            let stream = X509LogStream::permissive(reader);
            let stats = stream.stats();
            let mapped = stream.map(|r| r.map_err(|e| CliError::Invalid(format!("{name}: {e}"))));
            pipeline.fold_x509_stream(state, mapped)?;
            stats
        }
    };
    let prefix = match kind {
        LogKind::Ssl => "ssl",
        LogKind::X509 => "x509",
    };
    state.add_loss(&format!("spool.{prefix}.lines"), stats.lines());
    state.add_loss(&format!("spool.{prefix}.malformed"), stats.malformed());
    Ok(())
}

/// Finalize the current state and publish every HTTP surface. Uses a
/// fresh registry + pipeline so finalize-side counters are absolute per
/// publish (see the module doc); the finalize snapshot is stored and
/// merged with the live serve-loop snapshot per `/metrics` request.
fn publish(
    corpus: &Corpus<'_>,
    state: &PipelineState,
    threads: usize,
    published: &Mutex<Published>,
    trace: Option<&Span>,
) -> Analysis {
    let span = trace.map(|t| t.child("serve.publish"));
    let finalize_registry = Arc::new(Registry::new());
    let options = PipelineOptions {
        threads,
        ..PipelineOptions::default()
    };
    let finalize_pipeline =
        Pipeline::with_options(corpus.trust, corpus.ct, corpus.crosssign.clone(), options)
            .with_metrics(Arc::clone(&finalize_registry));
    let analysis = finalize_pipeline.finalize_state(state);
    if let Some(s) = &span {
        s.attr("distinct_chains", state.distinct_chains().to_string());
        s.attr("generation", state.generation().to_string());
    }
    drop(span);
    let next = Published {
        report: render(&analysis),
        report_json: AnalysisSummary::from_analysis(&analysis).to_json() + "\n",
        status_json: status_json(state).to_pretty() + "\n",
        finalize: finalize_registry.snapshot(),
    };
    // A poisoned lock must not kill the daemon: `Published` is only ever
    // replaced wholesale with a fully-built value, so the data under a
    // poison flag is still the last complete publish. Recover and go on.
    *published
        .lock()
        .unwrap_or_else(|poisoned| poisoned.into_inner()) = next;
    analysis
}

/// Merge the long-lived serve-loop snapshot with the per-publish
/// finalize snapshot. Finalize wins on shared keys: its values are
/// absolute recomputations from state, which is exactly the current
/// truth; the serve side contributes the cumulative fold-path signals
/// the finalize pass never sees.
fn merge_snapshots(serve: MetricsSnapshot, finalize: MetricsSnapshot) -> MetricsSnapshot {
    let mut merged = serve;
    merged.counters.extend(finalize.counters);
    merged.gauges.extend(finalize.gauges);
    merged.histograms.extend(finalize.histograms);
    merged.stages.extend(finalize.stages);
    merged
}

/// The `/status` document (`certchain-serve/v1`): checkpoint position,
/// fold totals, and the persistent loss map.
fn status_json(state: &PipelineState) -> JsonValue {
    let loss = state
        .loss()
        .iter()
        .map(|(k, v)| (k.clone(), JsonValue::Num(*v as f64)))
        .collect();
    let folded = state
        .folded_files()
        .iter()
        .map(|f| JsonValue::Str(f.clone()))
        .collect();
    JsonValue::Obj(vec![
        ("schema".into(), JsonValue::Str("certchain-serve/v1".into())),
        (
            "generation".into(),
            JsonValue::Num(state.generation() as f64),
        ),
        ("revision".into(), JsonValue::Num(state.revision() as f64)),
        (
            "ssl_records".into(),
            JsonValue::Num(state.ssl_records() as f64),
        ),
        (
            "no_chain_records".into(),
            JsonValue::Num(state.no_chain_records() as f64),
        ),
        ("x509_rows".into(), JsonValue::Num(state.x509_rows() as f64)),
        (
            "distinct_chains".into(),
            JsonValue::Num(state.distinct_chains() as f64),
        ),
        (
            "distinct_certificates".into(),
            JsonValue::Num(state.distinct_certificates() as f64),
        ),
        ("folded_files".into(), JsonValue::Arr(folded)),
        ("loss".into(), JsonValue::Obj(loss)),
    ])
}

/// The `/metrics` document for one request: the live serve-loop
/// snapshot (carrying fold counters, stage timings, and per-request
/// HTTP accounting) merged with the last publish's finalize snapshot.
fn live_metrics(ep: &Endpoints, p: &Published) -> MetricsSnapshot {
    let mut serve = ep.registry.snapshot();
    serve.http = Some(ep.http_stats.snapshot());
    merge_snapshots(serve, p.finalize.clone())
}

/// The HTTP routing table over the published surfaces, with content
/// negotiation on `/report` and `/metrics`: an explicit `?format=` wins,
/// then the `Accept` header, then the path's default. Unrecognized
/// formats get `406` plus a plain-text hint listing what is offered.
fn http_handler(ep: Endpoints) -> Arc<certchain_obs::http::Handler> {
    Arc::new(move |req: &HttpRequest| {
        // Keep serving the last complete publish even if a publisher
        // panicked while holding the lock (see `publish`).
        let p = ep
            .published
            .lock()
            .unwrap_or_else(|poisoned| poisoned.into_inner())
            .clone();
        match req.path.as_str() {
            "/report" => match req.query_param("format") {
                Some("json") => HttpResponse::ok("application/json", p.report_json),
                Some("text") => HttpResponse::ok("text/plain; charset=utf-8", p.report),
                Some(_) => HttpResponse::not_acceptable(
                    "/report offers format=text (default) or format=json",
                ),
                None if req.accepts("application/json") => {
                    HttpResponse::ok("application/json", p.report_json)
                }
                None => HttpResponse::ok("text/plain; charset=utf-8", p.report),
            },
            "/report.json" => HttpResponse::ok("application/json", p.report_json),
            "/metrics" => match req.query_param("format") {
                Some("prometheus") => HttpResponse::ok(
                    PROMETHEUS_CONTENT_TYPE,
                    to_prometheus(&live_metrics(&ep, &p)),
                ),
                Some("json") => HttpResponse::ok(
                    "application/json",
                    live_metrics(&ep, &p).to_json().to_pretty() + "\n",
                ),
                Some(_) => HttpResponse::not_acceptable(
                    "/metrics offers format=json (default) or format=prometheus",
                ),
                None if req.accepts("text/plain") => HttpResponse::ok(
                    PROMETHEUS_CONTENT_TYPE,
                    to_prometheus(&live_metrics(&ep, &p)),
                ),
                None => HttpResponse::ok(
                    "application/json",
                    live_metrics(&ep, &p).to_json().to_pretty() + "\n",
                ),
            },
            "/trace.json" => {
                HttpResponse::ok("application/json", ep.journal.to_json().to_pretty() + "\n")
            }
            "/healthz" => ep.health.response(),
            "/status" | "/" => HttpResponse::ok("application/json", p.status_json),
            _ => HttpResponse::not_found(),
        }
    })
}

/// Split a dataset's batch logs into a spool of rotated files — the
/// inverse of what a Zeek deployment does, used by the CI smoke test
/// and for local experiments with `serve`.
///
/// `<dir>/ssl.log` and `<dir>/x509.log` are each split into `parts`
/// contiguous row ranges written as
/// `<out>/<kind>.2024-09-01-<HH>.log` (hour = part index), every part
/// carrying the original TSV header so the streams parse it standalone.
pub fn spool_split(dir: &Path, out: &Path, parts: u64) -> CliResult<String> {
    if parts == 0 || parts > 24 {
        return Err(CliError::Invalid(format!(
            "--parts must be between 1 and 24, got {parts}"
        )));
    }
    std::fs::create_dir_all(out).map_err(io_ctx(format!("creating {}", out.display())))?;
    let mut written = Vec::new();
    for kind in ["ssl", "x509"] {
        let src = dir.join(format!("{kind}.log"));
        let text =
            std::fs::read_to_string(&src).map_err(io_ctx(format!("reading {}", src.display())))?;
        let mut header = String::new();
        let mut data: Vec<&str> = Vec::new();
        for line in text.lines() {
            if line.starts_with('#') {
                // Keep the preamble; drop the `#close` footer (each part
                // is an open-ended rotated file).
                if !line.starts_with("#close") {
                    header.push_str(line);
                    header.push('\n');
                }
            } else {
                data.push(line);
            }
        }
        let per = data.len().div_ceil(parts as usize).max(1);
        for (i, chunk) in data.chunks(per).enumerate() {
            let name = format!("{kind}.2024-09-01-{i:02}.log");
            let mut body = header.clone();
            for line in chunk {
                body.push_str(line);
                body.push('\n');
            }
            std::fs::write(out.join(&name), body)
                .map_err(io_ctx(format!("writing {}", out.join(&name).display())))?;
            written.push(name);
        }
    }
    written.sort();
    Ok(format!(
        "spooled {} file{} into {}:\n  {}\n",
        written.len(),
        if written.len() == 1 { "" } else { "s" },
        out.display(),
        written.join("\n  ")
    ))
}
