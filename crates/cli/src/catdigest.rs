//! Category-digest backfill shared by `convert` and `compact`: both
//! stream every x509 row before any ssl row, so they can build the
//! complete fingerprint → [`CertCat`] table a digest provider needs and
//! hand the store writer a closure running the same
//! [`chain_category`] fold the analysis paths use. Digests written here
//! therefore agree exactly with what `analyze --filter-category`
//! computes per row, which is what makes whole-segment skips sound.

use certchain_chainlab::{chain_category, CertCat, CertRecord};
use certchain_colstore::write::CategoryProvider;
use certchain_netsim::X509Record;
use certchain_trust::TrustDb;
use certchain_x509::Fingerprint;
use std::collections::HashMap;

/// The fingerprint → class table under construction during a writer's
/// x509 pass.
#[derive(Default)]
pub(crate) struct CatCodes {
    codes: HashMap<Fingerprint, CertCat>,
}

impl CatCodes {
    pub(crate) fn new() -> CatCodes {
        CatCodes::default()
    }

    /// Fold one x509 row: first parseable occurrence of a fingerprint
    /// wins, unparseable rows stay absent — the same intern semantics as
    /// every enrich path, so digest categories match analysis categories.
    pub(crate) fn note(&mut self, rec: &X509Record, trust: &TrustDb) {
        if self.codes.contains_key(&rec.fingerprint) {
            return;
        }
        if let Some(cert) = CertRecord::from_record(rec) {
            self.codes
                .insert(rec.fingerprint, CertCat::of(&cert, trust));
        }
    }

    /// Finish the table into a digest provider for
    /// [`certchain_colstore::DatasetWriter::with_category_provider`].
    pub(crate) fn into_provider(self) -> CategoryProvider {
        let codes = self.codes;
        Box::new(move |rec| {
            chain_category(
                rec.cert_chain_fps
                    .iter()
                    .map(|fp| codes.get(fp).copied().unwrap_or(CertCat::Unresolved)),
            )
        })
    }
}
