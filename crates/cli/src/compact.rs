//! `certchain compact`: rewrite a dataset's columnar store in the
//! current (v2) segmented format — the live-migration path for stores
//! written by older builds, and a re-segmenter for tuning
//! `--segment-rows`. Recompacting a store that is already v2 is a
//! supported path too: every column re-encodes under the newest codec
//! set (picking up codecs added since the store was written, e.g. the
//! frame-of-reference packing for `ssl.orig_h`) and the per-segment
//! category digests are recomputed, upgrading digest-less stores in
//! place.
//!
//! The rewrite never edits the store in place. Records stream from the
//! open store (either version) into a fresh writer in a sibling
//! temporary directory; the new manifest is written last, and only then
//! does the new directory replace the old one by rename. An interrupted
//! compaction leaves the original store untouched and at worst a
//! leftover `colstore.tmp-compact/` (or, if the crash hit the swap
//! window, `colstore.pre-compact/`) — the next run cleans those up
//! itself, printing a one-line notice, instead of demanding operator
//! surgery.

use crate::catdigest::CatCodes;
use crate::dataset::{colstore_dir, load_trust};
use crate::{io_ctx, CliError, CliResult};
use certchain_colstore::{DatasetReader, DatasetWriter, MapMode, WriterOptions};
use certchain_obs::Registry;
use std::path::{Path, PathBuf};
use std::sync::Arc;

/// Knobs for `certchain compact` beyond the dataset directory.
#[derive(Debug, Clone, Default)]
pub struct CompactOptions {
    /// Write a `certchain-metrics/v1` snapshot to this path.
    pub metrics_json: Option<PathBuf>,
    /// Rows per segment in the rewritten store (`None` = format default).
    pub segment_rows: Option<u64>,
}

/// Compact `<dir>/colstore/` into the current format. Returns a short
/// human-readable summary including the size change.
pub fn compact(dir: &Path) -> CliResult<String> {
    compact_opts(dir, &CompactOptions::default())
}

/// The full `certchain compact` implementation.
pub fn compact_opts(dir: &Path, opts: &CompactOptions) -> CliResult<String> {
    let registry = Arc::new(Registry::new());
    let store = colstore_dir(dir);
    let col_err = |e: certchain_colstore::ColError| CliError::Invalid(format!("colstore: {e}"));
    let tmp = store.with_file_name("colstore.tmp-compact");
    let old = store.with_file_name("colstore.pre-compact");
    let mut notices = String::new();
    // An interrupted compaction can leave either directory behind; both
    // are recoverable without operator surgery. The temp store is by
    // construction incomplete (its manifest is written last) or
    // never-installed, so it is safe to discard. The pre-compact store
    // only outlives a crash in the swap window: if the live store is
    // present the swap finished and the leftover is the superseded
    // original; if not, the leftover IS the dataset and is restored.
    if tmp.exists() {
        std::fs::remove_dir_all(&tmp)
            .map_err(io_ctx(format!("removing leftover {}", tmp.display())))?;
        notices.push_str(&format!(
            "notice: removed leftover {} from an interrupted compaction\n",
            tmp.display()
        ));
    }
    if old.exists() {
        if store.exists() {
            std::fs::remove_dir_all(&old)
                .map_err(io_ctx(format!("removing leftover {}", old.display())))?;
            notices.push_str(&format!(
                "notice: removed superseded {} from an interrupted compaction\n",
                old.display()
            ));
        } else {
            std::fs::rename(&old, &store)
                .map_err(io_ctx(format!("restoring {}", store.display())))?;
            notices.push_str(&format!(
                "notice: restored {} from {} after an interrupted compaction\n",
                store.display(),
                old.display()
            ));
        }
    }
    // Trust material drives the recomputed category digests. A store
    // compacted without it comes out digest-less (and a digest-less
    // store is never segment-skipped), so compaction still works on a
    // bare colstore directory.
    let trust = load_trust(dir).ok();
    if trust.is_none() {
        notices.push_str("notice: trust material unavailable; category digests omitted\n");
    }
    let (from_version, before, after) = {
        let _span = registry.stage("compact_total");
        let reader = DatasetReader::open(&store, MapMode::Auto)
            .map_err(|e| CliError::Invalid(format!("{}: {e}", store.display())))?;
        let from_version = reader.format_version();
        if from_version == certchain_colstore::VERSION {
            notices.push_str(
                "notice: store is already v2; re-encoding with current codecs and fresh category digests\n",
            );
        }
        let before = dir_size(&store)?;
        let defaults = WriterOptions::default();
        let writer_opts = WriterOptions {
            segment_rows: opts.segment_rows.unwrap_or(defaults.segment_rows),
            ..defaults
        };
        let mut writer = DatasetWriter::create_with(&tmp, writer_opts).map_err(col_err)?;
        // Same table order as `convert`: x509 first, so shared-table
        // interning assigns dictionary and fingerprint codes in the
        // identical sequence and the rewritten store is byte-stable.
        // Streaming x509 first is also what makes the digest backfill
        // possible: the class table is complete before any ssl row.
        let mut codes = CatCodes::new();
        for rec in reader.x509_iter().map_err(col_err)? {
            let rec = rec.map_err(col_err)?;
            if let Some(trust) = &trust {
                codes.note(&rec, trust);
            }
            writer.append_x509(&rec).map_err(col_err)?;
        }
        if trust.is_some() {
            writer = writer.with_category_provider(codes.into_provider());
        }
        for rec in reader.ssl_iter().map_err(col_err)? {
            writer.append_ssl(&rec.map_err(col_err)?).map_err(col_err)?;
        }
        writer.finish().map_err(col_err)?;
        drop(reader);
        // Swap: old store aside, new store in, old store gone. The store
        // directory itself is replaced atomically by the second rename;
        // a crash between the renames leaves a recoverable
        // `colstore.pre-compact/`.
        std::fs::rename(&store, &old)
            .map_err(io_ctx(format!("moving {} aside", store.display())))?;
        std::fs::rename(&tmp, &store).map_err(io_ctx(format!("installing {}", store.display())))?;
        std::fs::remove_dir_all(&old).map_err(io_ctx(format!("removing {}", old.display())))?;
        (from_version, before, dir_size(&store)?)
    };
    registry.gauge("compact.bytes_before").set(before);
    registry.gauge("compact.bytes_after").set(after);
    if let Some(path) = &opts.metrics_json {
        let text = registry.snapshot().to_json().to_pretty() + "\n";
        std::fs::write(path, text)
            .map_err(io_ctx(format!("writing metrics to {}", path.display())))?;
    }
    let ratio = if after > 0 {
        before as f64 / after as f64
    } else {
        1.0
    };
    Ok(format!(
        "{notices}compacted {} from v{from_version} to v{}: {before} -> {after} bytes ({ratio:.2}x)\n",
        store.display(),
        certchain_colstore::VERSION,
    ))
}

/// Total size in bytes of every regular file directly under `dir`.
fn dir_size(dir: &Path) -> CliResult<u64> {
    let mut total = 0u64;
    let entries = std::fs::read_dir(dir).map_err(io_ctx(format!("reading {}", dir.display())))?;
    for entry in entries {
        let entry = entry.map_err(io_ctx(format!("reading {}", dir.display())))?;
        let meta = entry
            .metadata()
            .map_err(io_ctx(format!("stat {}", entry.path().display())))?;
        if meta.is_file() {
            total += meta.len();
        }
    }
    Ok(total)
}
