//! `certchain convert`: re-encode a dataset's Zeek TSV logs as the
//! mmap-backed columnar store, so subsequent `certchain analyze` runs
//! skip the parse stage entirely.
//!
//! Conversion streams both logs in permissive mode (malformed rows are
//! skipped and tallied, exactly like `analyze` does) into a
//! [`DatasetWriter`] under `<dir>/colstore/`. The manifest is written
//! last, so an interrupted conversion never leaves a store that
//! `analyze` would auto-detect.

use crate::catdigest::CatCodes;
use crate::dataset::{colstore_dir, load_trust};
use crate::{io_ctx, CliError, CliResult};
use certchain_colstore::{DatasetWriter, WriterOptions, MANIFEST_FILE};
use certchain_netsim::{SslLogStream, X509LogStream};
use certchain_obs::Registry;
use std::path::{Path, PathBuf};
use std::sync::Arc;

/// Knobs for `certchain convert` beyond the dataset directory.
#[derive(Debug, Clone, Default)]
pub struct ConvertOptions {
    /// Write a `certchain-metrics/v1` snapshot to this path.
    pub metrics_json: Option<PathBuf>,
    /// Overwrite an existing columnar store. Without this, conversion
    /// refuses to clobber a directory that already holds a manifest.
    pub force: bool,
    /// Store format version to write (`None` = the current default).
    pub store_version: Option<u64>,
    /// Rows per v2 segment (`None` = the format default).
    pub segment_rows: Option<u64>,
}

/// Convert `<dir>/ssl.log` + `<dir>/x509.log` into `<dir>/colstore/`.
/// Returns a short human-readable summary.
pub fn convert(dir: &Path) -> CliResult<String> {
    convert_opts(dir, &ConvertOptions::default())
}

/// The full `certchain convert` implementation.
pub fn convert_opts(dir: &Path, opts: &ConvertOptions) -> CliResult<String> {
    let registry = Arc::new(Registry::new());
    let store = colstore_dir(dir);
    if store.join(MANIFEST_FILE).is_file() && !opts.force {
        return Err(CliError::Invalid(format!(
            "{} already holds a columnar store; pass --force to overwrite it",
            store.display()
        )));
    }
    let defaults = WriterOptions::default();
    let writer_opts = WriterOptions {
        version: opts.store_version.unwrap_or(defaults.version),
        segment_rows: opts.segment_rows.unwrap_or(defaults.segment_rows),
    };
    let col_err = |e: certchain_colstore::ColError| CliError::Invalid(format!("colstore: {e}"));
    // Trust material drives the per-segment category digests. A dataset
    // without it still converts — the store is then digest-less and
    // `analyze --filter-category` simply cannot skip segments over it.
    let trust = load_trust(dir).ok();
    let mut notice = String::new();
    if trust.is_none() {
        notice.push_str("notice: trust material unavailable; category digests omitted\n");
    }
    let manifest = {
        let _span = registry.stage("convert_total");
        let mut writer = DatasetWriter::create_with(&store, writer_opts).map_err(col_err)?;

        let x509_file = std::fs::File::open(dir.join("x509.log"))
            .map_err(io_ctx(format!("reading {}/x509.log", dir.display())))?;
        let x509_stream = X509LogStream::permissive(std::io::BufReader::new(x509_file));
        let x509_stats = x509_stream.stats();
        let mut codes = CatCodes::new();
        for rec in x509_stream {
            let rec = rec.map_err(|e| CliError::Invalid(format!("x509.log: {e}")))?;
            if let Some(trust) = &trust {
                codes.note(&rec, trust);
            }
            writer.append_x509(&rec).map_err(col_err)?;
        }
        // The x509 table is complete, so the category of any chain is
        // now decidable — attach the digest provider before the first
        // ssl row lands.
        if trust.is_some() {
            writer = writer.with_category_provider(codes.into_provider());
        }

        let ssl_file = std::fs::File::open(dir.join("ssl.log"))
            .map_err(io_ctx(format!("reading {}/ssl.log", dir.display())))?;
        let ssl_stream = SslLogStream::permissive(std::io::BufReader::new(ssl_file));
        let ssl_stats = ssl_stream.stats();
        for rec in ssl_stream {
            let rec = rec.map_err(|e| CliError::Invalid(format!("ssl.log: {e}")))?;
            writer.append_ssl(&rec).map_err(col_err)?;
        }

        for (prefix, stats) in [("zeek.ssl", &ssl_stats), ("zeek.x509", &x509_stats)] {
            registry
                .counter(&format!("{prefix}.lines_read"))
                .add(stats.lines());
            registry
                .counter(&format!("{prefix}.records"))
                .add(stats.records());
            registry
                .counter(&format!("{prefix}.malformed"))
                .add(stats.malformed());
        }
        registry
            .counter("records_dropped")
            .add(ssl_stats.malformed() + x509_stats.malformed());
        writer.finish().map_err(col_err)?
    };
    if let Some(path) = &opts.metrics_json {
        let text = registry.snapshot().to_json().to_pretty() + "\n";
        std::fs::write(path, text)
            .map_err(io_ctx(format!("writing metrics to {}", path.display())))?;
    }
    Ok(format!(
        "{notice}wrote v{} store: {} ssl rows, {} x509 rows, {} dictionary entries, {} fingerprints to {}\n",
        manifest.version,
        manifest.ssl_rows,
        manifest.x509_rows,
        manifest.dict_entries,
        manifest.fp_entries,
        store.display()
    ))
}
