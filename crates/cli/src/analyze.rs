//! `certchain analyze`: run the full chain-analysis pipeline over an
//! on-disk dataset (synthetic or real Zeek logs with the same fields).

use crate::dataset::{load_crosssign, load_ct_index, load_trust};
use crate::{io_ctx, CliError, CliResult};
use certchain_chainlab::PipelineOptions;
use certchain_chainlab::{Analysis, ChainCategoryLabel, CrossSignRegistry, Pipeline};
use certchain_netsim::{SslLogStream, X509LogStream};
use certchain_report::table::{num, pct};
use certchain_report::Table;
use std::path::Path;

/// Analyze `<dir>/ssl.log` + `<dir>/x509.log` against the trust material
/// and CT corpus in the same directory, using all available cores.
/// Returns the rendered report.
pub fn analyze(dir: &Path) -> CliResult<String> {
    analyze_with(dir, 0)
}

/// Like [`analyze`], on `threads` worker threads (`0` = available
/// parallelism). The report is identical for every thread count.
pub fn analyze_with(dir: &Path, threads: usize) -> CliResult<String> {
    let (analysis, _trust) = run_pipeline_with(dir, threads)?;
    Ok(render(&analysis))
}

/// Like [`analyze`], but emit the machine-readable JSON summary.
pub fn analyze_json(dir: &Path) -> CliResult<String> {
    analyze_json_with(dir, 0)
}

/// Like [`analyze_json`], on `threads` worker threads.
pub fn analyze_json_with(dir: &Path, threads: usize) -> CliResult<String> {
    let (analysis, _trust) = run_pipeline_with(dir, threads)?;
    let mut json = certchain_chainlab::AnalysisSummary::from_analysis(&analysis).to_json();
    json.push('\n');
    Ok(json)
}

/// Run the pipeline and return the raw analysis (used by tests).
pub fn run_pipeline(dir: &Path) -> CliResult<(Analysis, certchain_trust::TrustDb)> {
    run_pipeline_with(dir, 0)
}

/// [`run_pipeline`] with an explicit worker-thread count, applied to both
/// the log parse and the analysis stages.
///
/// The logs are *streamed* off disk into the pipeline — neither file is
/// ever loaded into a single `String`, so peak memory is bounded by the
/// number of distinct chains and certificates, not by connection volume.
pub fn run_pipeline_with(
    dir: &Path,
    threads: usize,
) -> CliResult<(Analysis, certchain_trust::TrustDb)> {
    let ssl_file = std::fs::File::open(dir.join("ssl.log"))
        .map_err(io_ctx(format!("reading {}/ssl.log", dir.display())))?;
    let x509_file = std::fs::File::open(dir.join("x509.log"))
        .map_err(io_ctx(format!("reading {}/x509.log", dir.display())))?;
    let trust = load_trust(dir)?;
    let ct = load_ct_index(dir)?;
    let crosssign = CrossSignRegistry::from_disclosures(&load_crosssign(dir)?);
    let options = PipelineOptions {
        threads,
        ..PipelineOptions::default()
    };
    let pipeline = Pipeline::with_options(&trust, &ct, crosssign, options);
    let ssl = SslLogStream::new(std::io::BufReader::new(ssl_file))
        .map(|r| r.map_err(|e| CliError::Invalid(format!("ssl.log: {e}"))));
    let x509 = X509LogStream::new(std::io::BufReader::new(x509_file))
        .map(|r| r.map_err(|e| CliError::Invalid(format!("x509.log: {e}"))));
    let analysis = pipeline.analyze_stream(ssl, x509)?;
    Ok((analysis, trust))
}

fn render(analysis: &Analysis) -> String {
    let mut out = String::new();
    let mut census = Table::new(
        "Chain census",
        &[
            "Category",
            "#. Chains",
            "Connections",
            "Established",
            "No-SNI",
        ],
    );
    for (name, cat) in [
        ("Public-DB-only", ChainCategoryLabel::PublicOnly),
        ("Non-public-DB-only", ChainCategoryLabel::NonPublicOnly),
        ("Hybrid", ChainCategoryLabel::Hybrid),
        ("TLS interception", ChainCategoryLabel::Interception),
    ] {
        let chains = analysis.chains_in(cat).count();
        let usage = analysis.usage_of(|c| c.category == cat);
        census.row(&[
            name.to_string(),
            num(chains as f64, 0),
            num(usage.connections, 0),
            pct(usage.established_rate()),
            pct(usage.no_sni_rate()),
        ]);
    }
    out.push_str(&census.render());

    // Hybrid taxonomy.
    use certchain_chainlab::HybridCategory as H;
    let count = |pred: &dyn Fn(&Option<H>) -> bool| {
        analysis
            .chains_in(ChainCategoryLabel::Hybrid)
            .filter(|c| pred(&c.hybrid_category))
            .count()
    };
    let mut hybrid = Table::new("Hybrid chains", &["Category", "#. Chains"]);
    hybrid.row(&[
        "Complete: non-public leaf to public anchor".into(),
        count(&|h| matches!(h, Some(H::CompleteNonPubToPub))).to_string(),
    ]);
    hybrid.row(&[
        "Complete: public chained to private".into(),
        count(&|h| matches!(h, Some(H::CompletePubToPrv))).to_string(),
    ]);
    hybrid.row(&[
        "Contains a complete matched path".into(),
        count(&|h| matches!(h, Some(H::ContainsPath))).to_string(),
    ]);
    hybrid.row(&[
        "No complete matched path".into(),
        count(&|h| matches!(h, Some(H::NoPath(_)))).to_string(),
    ]);
    out.push('\n');
    out.push_str(&hybrid.render());

    out.push_str(&format!(
        "\ninterception entities: {}\nDGA-cluster chains: {}\nTLS 1.3 records (no chain): {}\nunresolvable records: {}\n",
        analysis.interception_entities.len(),
        analysis.chains.iter().filter(|c| c.is_dga).count(),
        analysis.no_chain_records,
        analysis.unresolvable_records,
    ));
    out
}
