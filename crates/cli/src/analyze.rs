//! `certchain analyze`: run the full chain-analysis pipeline over an
//! on-disk dataset (synthetic or real Zeek logs with the same fields).

use crate::dataset::DatasetFormat;
use crate::dataset::{colstore_dir, detect_format, load_crosssign, load_ct_index, load_trust};
use crate::{io_ctx, CliError, CliResult};
use certchain_chainlab::{Analysis, ChainCategoryLabel, CrossSignRegistry, Pipeline};
use certchain_chainlab::{PipelineOptions, RowFilter};
use certchain_colstore::{DatasetReader, MapMode};
use certchain_netsim::{SslLogStream, StreamStats, X509LogStream};
use certchain_obs::{Progress, Registry};
use certchain_report::table::{num, pct};
use certchain_report::Table;
use std::path::{Path, PathBuf};
use std::sync::Arc;

/// Knobs for `certchain analyze` beyond the dataset directory.
#[derive(Debug, Clone, Default)]
pub struct AnalyzeOptions {
    /// Worker threads (`0` = available parallelism).
    pub threads: usize,
    /// Emit the machine-readable JSON summary instead of tables.
    pub json: bool,
    /// Write a `certchain-metrics/v1` snapshot to this path.
    pub metrics_json: Option<PathBuf>,
    /// Report live progress (records/sec, queue depth) on stderr.
    pub progress: bool,
    /// Print the stage-timing and counter summary on stderr at the end.
    pub verbose: bool,
    /// Force a log representation instead of auto-detecting (`None`).
    /// The report tables and JSON are byte-identical either way; only
    /// the human report's loss-accounting line reflects the source.
    pub format: Option<DatasetFormat>,
    /// Keep only connections to this responder port. Filtered-out rows
    /// are invisible to the whole analysis; on a v2 columnar store the
    /// filter also skips whole segments via zone maps. The report is
    /// byte-identical across formats and thread counts either way.
    pub filter_port: Option<u16>,
    /// Keep only connections that sent exactly this SNI.
    pub filter_sni: Option<String>,
    /// Keep only connections whose chain's structural category is in
    /// this set. On a v2 columnar store carrying category digests, the
    /// filter skips whole segments whose digest proves no row matches.
    pub filter_category: Option<certchain_colstore::CategorySet>,
}

impl AnalyzeOptions {
    /// The pipeline-level row predicate these options describe.
    fn row_filter(&self) -> RowFilter {
        RowFilter {
            port: self.filter_port,
            sni: self.filter_sni.clone(),
            categories: self.filter_category,
        }
    }
}

/// Input-side loss accounting, per source format. The TSV path tallies
/// parse losses; the columnar path has no parse stage, so its row counts
/// come straight from the validated manifest.
enum LossStats {
    Tsv {
        ssl: Arc<StreamStats>,
        x509: Arc<StreamStats>,
    },
    Columnar {
        ssl_rows: u64,
        x509_rows: u64,
    },
}

/// Analyze `<dir>/ssl.log` + `<dir>/x509.log` against the trust material
/// and CT corpus in the same directory, using all available cores.
/// Returns the rendered report.
pub fn analyze(dir: &Path) -> CliResult<String> {
    analyze_with(dir, 0)
}

/// Like [`analyze`], on `threads` worker threads (`0` = available
/// parallelism). The report is identical for every thread count.
pub fn analyze_with(dir: &Path, threads: usize) -> CliResult<String> {
    analyze_opts(
        dir,
        &AnalyzeOptions {
            threads,
            ..AnalyzeOptions::default()
        },
    )
}

/// Like [`analyze`], but emit the machine-readable JSON summary.
pub fn analyze_json(dir: &Path) -> CliResult<String> {
    analyze_json_with(dir, 0)
}

/// Like [`analyze_json`], on `threads` worker threads.
pub fn analyze_json_with(dir: &Path, threads: usize) -> CliResult<String> {
    analyze_opts(
        dir,
        &AnalyzeOptions {
            threads,
            json: true,
            ..AnalyzeOptions::default()
        },
    )
}

/// The full `certchain analyze` implementation: streams the logs in
/// permissive (loss-accounting) mode, runs the instrumented pipeline, and
/// honors every [`AnalyzeOptions`] knob. The table/JSON report bytes are
/// identical whatever the observability settings — metrics ride alongside
/// the analysis, never inside it.
pub fn analyze_opts(dir: &Path, opts: &AnalyzeOptions) -> CliResult<String> {
    let format = match opts.format {
        Some(f) => f,
        None => detect_format(dir)?,
    };
    let registry = Arc::new(Registry::new());
    let (analysis, loss) = {
        let _total = registry.stage("analyze_total");
        match format {
            DatasetFormat::Tsv => run_observed(dir, opts, &registry)?,
            DatasetFormat::Columnar => run_observed_colstore(dir, opts, &registry)?,
        }
    };
    let dropped = match &loss {
        LossStats::Tsv { ssl, x509 } => {
            record_stream_stats(&registry, "zeek.ssl", ssl);
            record_stream_stats(&registry, "zeek.x509", x509);
            ssl.malformed() + x509.malformed()
        }
        // A columnar store is write-validated; there is nothing to drop.
        // Still touch the counter so snapshot keys are format-stable.
        LossStats::Columnar { .. } => 0,
    };
    registry.counter("records_dropped").add(dropped);

    let out = if opts.json {
        let mut json = certchain_chainlab::AnalysisSummary::from_analysis(&analysis).to_json();
        json.push('\n');
        json
    } else {
        let mut text = render(&analysis);
        text.push_str(&loss_line(&analysis, &loss));
        text
    };

    if let Some(path) = &opts.metrics_json {
        let text = registry.snapshot().to_json().to_pretty() + "\n";
        std::fs::write(path, text)
            .map_err(io_ctx(format!("writing metrics to {}", path.display())))?;
    }
    if opts.verbose {
        eprint!("{}", verbose_summary(&registry));
    }
    Ok(out)
}

/// Run the pipeline and return the raw analysis (used by tests).
pub fn run_pipeline(dir: &Path) -> CliResult<(Analysis, certchain_trust::TrustDb)> {
    run_pipeline_with(dir, 0)
}

/// [`run_pipeline`] with an explicit worker-thread count, applied to both
/// the log parse and the analysis stages.
///
/// The logs are *streamed* off disk into the pipeline — neither file is
/// ever loaded into a single `String`, so peak memory is bounded by the
/// number of distinct chains and certificates, not by connection volume.
pub fn run_pipeline_with(
    dir: &Path,
    threads: usize,
) -> CliResult<(Analysis, certchain_trust::TrustDb)> {
    let ssl_file = std::fs::File::open(dir.join("ssl.log"))
        .map_err(io_ctx(format!("reading {}/ssl.log", dir.display())))?;
    let x509_file = std::fs::File::open(dir.join("x509.log"))
        .map_err(io_ctx(format!("reading {}/x509.log", dir.display())))?;
    let trust = load_trust(dir)?;
    let ct = load_ct_index(dir)?;
    let crosssign = CrossSignRegistry::from_disclosures(&load_crosssign(dir)?);
    let options = PipelineOptions {
        threads,
        ..PipelineOptions::default()
    };
    let pipeline = Pipeline::with_options(&trust, &ct, crosssign, options);
    let ssl = SslLogStream::new(std::io::BufReader::new(ssl_file))
        .map(|r| r.map_err(|e| CliError::Invalid(format!("ssl.log: {e}"))));
    let x509 = X509LogStream::new(std::io::BufReader::new(x509_file))
        .map(|r| r.map_err(|e| CliError::Invalid(format!("x509.log: {e}"))));
    let analysis = pipeline.analyze_stream(ssl, x509)?;
    Ok((analysis, trust))
}

/// The observed pipeline run behind [`analyze_opts`]: permissive streams
/// (malformed rows skipped and tallied, header problems still fatal), the
/// metrics registry attached, and optional progress reporting.
fn run_observed(
    dir: &Path,
    opts: &AnalyzeOptions,
    registry: &Arc<Registry>,
) -> CliResult<(Analysis, LossStats)> {
    let ssl_file = std::fs::File::open(dir.join("ssl.log"))
        .map_err(io_ctx(format!("reading {}/ssl.log", dir.display())))?;
    let x509_file = std::fs::File::open(dir.join("x509.log"))
        .map_err(io_ctx(format!("reading {}/x509.log", dir.display())))?;
    let trust = load_trust(dir)?;
    let ct = load_ct_index(dir)?;
    let crosssign = CrossSignRegistry::from_disclosures(&load_crosssign(dir)?);
    let options = PipelineOptions {
        threads: opts.threads,
        filter: opts.row_filter(),
        ..PipelineOptions::default()
    };
    let mut pipeline =
        Pipeline::with_options(&trust, &ct, crosssign, options).with_metrics(Arc::clone(registry));
    if opts.progress {
        pipeline = pipeline.with_progress(Arc::new(Progress::stderr("analyze")));
    }
    let ssl_stream = SslLogStream::permissive(std::io::BufReader::new(ssl_file));
    let ssl_stats = ssl_stream.stats();
    let x509_stream = X509LogStream::permissive(std::io::BufReader::new(x509_file));
    let x509_stats = x509_stream.stats();
    let ssl = ssl_stream.map(|r| r.map_err(|e| CliError::Invalid(format!("ssl.log: {e}"))));
    let x509 = x509_stream.map(|r| r.map_err(|e| CliError::Invalid(format!("x509.log: {e}"))));
    let analysis = pipeline.analyze_stream(ssl, x509)?;
    Ok((
        analysis,
        LossStats::Tsv {
            ssl: ssl_stats,
            x509: x509_stats,
        },
    ))
}

/// The columnar counterpart of [`run_observed`]: map the store, fold
/// straight off the columns — no parse stage, no dispatch thread. The
/// report is byte-identical to the TSV path over the same records.
fn run_observed_colstore(
    dir: &Path,
    opts: &AnalyzeOptions,
    registry: &Arc<Registry>,
) -> CliResult<(Analysis, LossStats)> {
    let store = colstore_dir(dir);
    let reader = DatasetReader::open(&store, MapMode::Auto)
        .map_err(|e| CliError::Invalid(format!("{}: {e}", store.display())))?;
    let trust = load_trust(dir)?;
    let ct = load_ct_index(dir)?;
    let crosssign = CrossSignRegistry::from_disclosures(&load_crosssign(dir)?);
    let options = PipelineOptions {
        threads: opts.threads,
        filter: opts.row_filter(),
        ..PipelineOptions::default()
    };
    let mut pipeline =
        Pipeline::with_options(&trust, &ct, crosssign, options).with_metrics(Arc::clone(registry));
    if opts.progress {
        pipeline = pipeline.with_progress(Arc::new(Progress::stderr("analyze")));
    }
    let analysis = pipeline
        .analyze_colstore(&reader)
        .map_err(|e| CliError::Invalid(format!("{}: {e}", store.display())))?;
    Ok((
        analysis,
        LossStats::Columnar {
            ssl_rows: reader.ssl_rows(),
            x509_rows: reader.x509_rows(),
        },
    ))
}

/// Transfer one stream's loss-accounting tallies into the registry under
/// `prefix` (`zeek.ssl` / `zeek.x509`): lines read, records yielded, a
/// malformed total, and one counter per parse-failure reason.
fn record_stream_stats(registry: &Registry, prefix: &str, stats: &StreamStats) {
    registry
        .counter(&format!("{prefix}.lines_read"))
        .add(stats.lines());
    registry
        .counter(&format!("{prefix}.records"))
        .add(stats.records());
    registry
        .counter(&format!("{prefix}.malformed"))
        .add(stats.malformed());
    for (reason, n) in stats.malformed_by_reason() {
        registry
            .counter(&format!("{prefix}.malformed.{reason}"))
            .add(n);
    }
}

/// The one-line loss-accounting summary appended to the human report:
/// every input line either became a record, was a header/comment, or is
/// tallied here as malformed; every record either reached a chain or is
/// tallied as no-chain/unresolvable. The columnar store has no parse
/// stage, so its line reports manifest row counts instead.
fn loss_line(analysis: &Analysis, loss: &LossStats) -> String {
    let source = match loss {
        LossStats::Tsv { ssl, x509 } => format!(
            "ssl.log {} lines -> {} records ({} malformed); \
             x509.log {} lines -> {} records ({} malformed)",
            ssl.lines(),
            ssl.records(),
            ssl.malformed(),
            x509.lines(),
            x509.records(),
            x509.malformed(),
        ),
        LossStats::Columnar {
            ssl_rows,
            x509_rows,
        } => format!("colstore {ssl_rows} ssl rows, {x509_rows} x509 rows"),
    };
    format!(
        "loss accounting: {source}; {} no-chain, {} unresolvable\n",
        analysis.no_chain_records, analysis.unresolvable_records,
    )
}

/// The `-v` stderr epilogue: stage wall times and deterministic counters.
fn verbose_summary(registry: &Registry) -> String {
    let snap = registry.snapshot();
    let mut out = String::from("stage timings:\n");
    for (name, stage) in &snap.stages {
        out.push_str(&format!(
            "  {name:<16} {:>10.1} ms  ({} invocation{})\n",
            stage.wall_ms,
            stage.invocations,
            if stage.invocations == 1 { "" } else { "s" }
        ));
    }
    out.push_str("counters:\n");
    for (name, value) in &snap.counters {
        out.push_str(&format!("  {name:<32} {value}\n"));
    }
    for (name, value) in &snap.gauges {
        out.push_str(&format!("  {name:<32} {value}\n"));
    }
    out
}

/// Render the human report tables (shared with `certchain serve`, whose
/// drain-mode stdout must stay byte-identical to `analyze` minus the
/// loss-accounting line).
pub(crate) fn render(analysis: &Analysis) -> String {
    let mut out = String::new();
    let mut census = Table::new(
        "Chain census",
        &[
            "Category",
            "#. Chains",
            "Connections",
            "Established",
            "No-SNI",
        ],
    );
    for (name, cat) in [
        ("Public-DB-only", ChainCategoryLabel::PublicOnly),
        ("Non-public-DB-only", ChainCategoryLabel::NonPublicOnly),
        ("Hybrid", ChainCategoryLabel::Hybrid),
        ("TLS interception", ChainCategoryLabel::Interception),
    ] {
        let chains = analysis.chains_in(cat).count();
        let usage = analysis.usage_of(|c| c.category == cat);
        census.row(&[
            name.to_string(),
            num(chains as f64, 0),
            num(usage.connections, 0),
            pct(usage.established_rate()),
            pct(usage.no_sni_rate()),
        ]);
    }
    out.push_str(&census.render());

    // Hybrid taxonomy.
    use certchain_chainlab::HybridCategory as H;
    let count = |pred: &dyn Fn(&Option<H>) -> bool| {
        analysis
            .chains_in(ChainCategoryLabel::Hybrid)
            .filter(|c| pred(&c.hybrid_category))
            .count()
    };
    let mut hybrid = Table::new("Hybrid chains", &["Category", "#. Chains"]);
    hybrid.row(&[
        "Complete: non-public leaf to public anchor".into(),
        count(&|h| matches!(h, Some(H::CompleteNonPubToPub))).to_string(),
    ]);
    hybrid.row(&[
        "Complete: public chained to private".into(),
        count(&|h| matches!(h, Some(H::CompletePubToPrv))).to_string(),
    ]);
    hybrid.row(&[
        "Contains a complete matched path".into(),
        count(&|h| matches!(h, Some(H::ContainsPath))).to_string(),
    ]);
    hybrid.row(&[
        "No complete matched path".into(),
        count(&|h| matches!(h, Some(H::NoPath(_)))).to_string(),
    ]);
    out.push('\n');
    out.push_str(&hybrid.render());

    out.push_str(&format!(
        "\ninterception entities: {}\nDGA-cluster chains: {}\nTLS 1.3 records (no chain): {}\nunresolvable records: {}\n",
        analysis.interception_entities.len(),
        analysis.chains.iter().filter(|c| c.is_dga).count(),
        analysis.no_chain_records,
        analysis.unresolvable_records,
    ));
    out
}
