//! The `certchain` command-line tool.
//!
//! ```text
//! certchain generate --out <dir> [--profile quick|default] [--seed N] [--threads N]
//!                    [--format tsv|columnar] [--progress] [--metrics-json <path>]
//! certchain convert  --dir <dir> [--force] [--store-version N] [--segment-rows N]
//!                    [--metrics-json <path>]
//! certchain compact  --dir <dir> [--segment-rows N] [--metrics-json <path>]
//! certchain analyze  --dir <dir> [--threads N] [--json] [--format tsv|columnar]
//!                    [--filter-port N] [--filter-sni <name>]
//!                    [--filter-category <list>]
//!                    [--progress] [--metrics-json <path>] [-v]
//! certchain validate <chain.pem> [--dir <dataset dir with trust/>]
//! ```

use certchain_cli::dataset::DatasetFormat;
use certchain_cli::{analyze, compact, convert, generate, serve, validate, CliResult};
use certchain_workload::CampusProfile;
use std::path::PathBuf;
use std::process::ExitCode;

const USAGE: &str = "\
certchain — certificate-chain structure and usage analysis

USAGE:
  certchain generate --out <dir> [--profile quick|default] [--seed N] [--threads N]
                     [--format tsv|columnar] [--progress] [--metrics-json <path>]
      Generate a synthetic campus dataset (logs + trust PEMs + CT corpus).
      --format columnar writes the mmap-backed columnar store instead of
      Zeek TSV logs; analyzing either yields byte-identical reports.
  certchain convert --dir <dir> [--force] [--store-version 1|2]
                    [--segment-rows N] [--metrics-json <path>]
      Re-encode <dir>/ssl.log + <dir>/x509.log as <dir>/colstore/, the
      columnar store `analyze` then reads without a parse stage. Refuses
      to overwrite an existing store unless --force is given.
      --store-version 1 writes the legacy raw-column layout;
      --segment-rows tunes the v2 row-band size.
  certchain compact --dir <dir> [--segment-rows N] [--metrics-json <path>]
      Rewrite <dir>/colstore/ in the current segmented (v2) format —
      the live-migration path for v1 stores, and for v2 stores a
      recompaction that re-encodes every column with the newest codecs
      and recomputes the per-segment category digests. The original
      store is replaced only after the new one is complete.
  certchain analyze --dir <dir> [--json] [--threads N] [--format tsv|columnar]
                    [--filter-port N] [--filter-sni <name>]
                    [--filter-category <list>]
                    [--progress] [--metrics-json <path>] [-v|--verbose]
      Analyze the dataset logs against <dir>/trust and <dir>/ct; --json
      emits the machine-readable summary. The columnar store is preferred
      automatically when <dir>/colstore/dataset.json exists; --format
      forces one representation.
      --threads sets the worker-thread count (default: all cores); the
      output is identical for every value.
      --filter-port / --filter-sni / --filter-category restrict the
      analysis to matching connections (filtered rows are invisible); on
      a v2 store the filters skip whole row bands via zone maps and
      per-segment category digests. --filter-category takes a comma-
      separated list of structural chain categories out of none /
      incomplete / self_signed / public_only / non_public_only / hybrid.

  Observability (both commands; never changes the output bytes):
      --metrics-json <path>  write a certchain-metrics/v1 snapshot
      --progress             live records/sec + queue depth on stderr
      -v, --verbose          stage timings and counters on stderr (analyze)
  certchain serve --dir <dir> --spool <dir> --checkpoint <dir>
                  [--listen <addr>] [--listen-addr-file <path>]
                  [--threads N] [--drain] [--interval-ms N]
                  [--watchdog-cycles N] [--trace-capacity N]
      Watch a spool of rotated Zeek logs (ssl.<ts>.log / x509.<ts>.log),
      fold each new file into a checkpointed pipeline state, and expose
      /report, /report.json, /metrics (JSON or Prometheus via
      ?format=), /trace.json, /status, and /healthz over HTTP when
      --listen is given. A kill at any point is safe: the next run
      resumes from the last complete checkpoint and re-folds only what
      that checkpoint had not covered. --drain scans once, prints the
      report tables, and exits — over the same records those tables are
      byte-identical to `analyze` (minus its loss-accounting line).
      --watchdog-cycles sets how many missed intervals flip /healthz to
      503 (default 5); --trace-capacity sizes the /trace.json ring
      journal (default 1024 records, oldest evicted).
  certchain spool-split --dir <dir> --out <spool> [--parts N]
      Split <dir>/ssl.log + <dir>/x509.log into N rotated spool files
      each (default 4) for feeding `serve`.
  certchain validate <chain.pem> [--dir <dataset dir>]
      Run the issuer-subject and key-signature validators over a PEM chain;
      with --dir, also compare browser vs strict validation policies.
  certchain lint <chain.pem> [--at YYYY-MM-DD]
      Lint a PEM chain against the paper's compliance observations
      (missing basicConstraints, expired leaves, unnecessary certificates,
      staging artifacts, included roots). Defaults to linting as of now.
  certchain help
      Show this message.
";

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match run(&args) {
        Ok(output) => {
            print!("{output}");
            ExitCode::SUCCESS
        }
        Err(e) => {
            eprintln!("certchain: {e}");
            eprintln!("\n{USAGE}");
            ExitCode::FAILURE
        }
    }
}

fn run(args: &[String]) -> CliResult<String> {
    use certchain_cli::CliError;
    let Some(command) = args.first() else {
        return Err(CliError::Invalid("missing command".into()));
    };
    match command.as_str() {
        "generate" => {
            let out = flag_value(args, "--out")?
                .ok_or_else(|| CliError::Invalid("generate requires --out <dir>".into()))?;
            let mut profile = match flag_value(args, "--profile")?.as_deref() {
                Some("quick") => CampusProfile::quick(),
                Some("default") | None => CampusProfile::default(),
                Some(other) => return Err(CliError::Invalid(format!("unknown profile {other:?}"))),
            };
            if let Some(seed) = flag_value(args, "--seed")? {
                profile.seed = seed
                    .parse()
                    .map_err(|_| CliError::Invalid(format!("bad seed {seed:?}")))?;
            }
            let opts = generate::GenerateOptions {
                threads: parse_threads(args)?,
                progress: has_flag(args, "--progress"),
                metrics_json: flag_value(args, "--metrics-json")?.map(PathBuf::from),
                format: match flag_value(args, "--format")? {
                    Some(f) => DatasetFormat::parse(&f)?,
                    None => DatasetFormat::Tsv,
                },
            };
            let summary = generate::generate_opts(&PathBuf::from(out), profile, &opts)?;
            Ok(format!("{summary}\n"))
        }
        "convert" => {
            let dir = flag_value(args, "--dir")?
                .ok_or_else(|| CliError::Invalid("convert requires --dir <dir>".into()))?;
            let opts = convert::ConvertOptions {
                metrics_json: flag_value(args, "--metrics-json")?.map(PathBuf::from),
                force: has_flag(args, "--force"),
                store_version: parse_u64_flag(args, "--store-version")?,
                segment_rows: parse_u64_flag(args, "--segment-rows")?,
            };
            convert::convert_opts(&PathBuf::from(dir), &opts)
        }
        "compact" => {
            let dir = flag_value(args, "--dir")?
                .ok_or_else(|| CliError::Invalid("compact requires --dir <dir>".into()))?;
            let opts = compact::CompactOptions {
                metrics_json: flag_value(args, "--metrics-json")?.map(PathBuf::from),
                segment_rows: parse_u64_flag(args, "--segment-rows")?,
            };
            compact::compact_opts(&PathBuf::from(dir), &opts)
        }
        "analyze" => {
            let dir = flag_value(args, "--dir")?
                .ok_or_else(|| CliError::Invalid("analyze requires --dir <dir>".into()))?;
            let opts = analyze::AnalyzeOptions {
                threads: parse_threads(args)?,
                json: has_flag(args, "--json"),
                metrics_json: flag_value(args, "--metrics-json")?.map(PathBuf::from),
                progress: has_flag(args, "--progress"),
                verbose: has_flag(args, "-v") || has_flag(args, "--verbose"),
                format: match flag_value(args, "--format")? {
                    Some(f) => Some(DatasetFormat::parse(&f)?),
                    None => None,
                },
                filter_port: match flag_value(args, "--filter-port")? {
                    Some(v) => Some(v.parse().map_err(|_| {
                        CliError::Invalid(format!("bad port {v:?} for --filter-port"))
                    })?),
                    None => None,
                },
                filter_sni: flag_value(args, "--filter-sni")?,
                filter_category: match flag_value(args, "--filter-category")? {
                    Some(list) => Some(
                        certchain_colstore::CategorySet::parse_list(&list)
                            .map_err(|e| CliError::Invalid(format!("--filter-category: {e}")))?,
                    ),
                    None => None,
                },
            };
            analyze::analyze_opts(&PathBuf::from(dir), &opts)
        }
        "serve" => {
            let need = |flag: &str| {
                flag_value(args, flag)?
                    .ok_or_else(|| CliError::Invalid(format!("serve requires {flag} <dir>")))
            };
            let dir = need("--dir")?;
            let spool = need("--spool")?;
            let checkpoint = need("--checkpoint")?;
            let opts = serve::ServeOptions {
                threads: parse_threads(args)?,
                listen: flag_value(args, "--listen")?,
                drain_once: has_flag(args, "--drain"),
                interval_ms: parse_u64_flag(args, "--interval-ms")?
                    .unwrap_or(serve::ServeOptions::default().interval_ms),
                listen_addr_file: flag_value(args, "--listen-addr-file")?.map(PathBuf::from),
                watchdog_cycles: parse_u64_flag(args, "--watchdog-cycles")?
                    .unwrap_or(serve::ServeOptions::default().watchdog_cycles),
                trace_capacity: parse_u64_flag(args, "--trace-capacity")?
                    .map(|n| n as usize)
                    .unwrap_or(serve::ServeOptions::default().trace_capacity),
            };
            serve::serve(
                &PathBuf::from(dir),
                &PathBuf::from(spool),
                &PathBuf::from(checkpoint),
                &opts,
            )
        }
        "spool-split" => {
            let dir = flag_value(args, "--dir")?
                .ok_or_else(|| CliError::Invalid("spool-split requires --dir <dir>".into()))?;
            let out = flag_value(args, "--out")?
                .ok_or_else(|| CliError::Invalid("spool-split requires --out <spool>".into()))?;
            let parts = parse_u64_flag(args, "--parts")?.unwrap_or(4);
            serve::spool_split(&PathBuf::from(dir), &PathBuf::from(out), parts)
        }
        "validate" => {
            let chain = args
                .get(1)
                .filter(|a| !a.starts_with("--"))
                .ok_or_else(|| CliError::Invalid("validate requires a chain file".into()))?;
            let trust = match flag_value(args, "--dir")? {
                Some(dir) => Some(certchain_cli::dataset::load_trust(&PathBuf::from(dir))?),
                None => None,
            };
            validate::validate(&PathBuf::from(chain), trust.as_ref(), None)
        }
        "lint" => {
            let chain = args
                .get(1)
                .filter(|a| !a.starts_with("--"))
                .ok_or_else(|| CliError::Invalid("lint requires a chain file".into()))?;
            let at = match flag_value(args, "--at")? {
                Some(date) => Some(parse_date(&date)?),
                None => None,
            };
            validate::lint(&PathBuf::from(chain), at)
        }
        "help" | "--help" | "-h" => Ok(USAGE.to_string()),
        other => Err(CliError::Invalid(format!("unknown command {other:?}"))),
    }
}

/// Parse a `YYYY-MM-DD` date into midnight UTC.
fn parse_date(s: &str) -> CliResult<certchain_asn1::Asn1Time> {
    use certchain_cli::CliError;
    let bad = || CliError::Invalid(format!("bad date {s:?} (expected YYYY-MM-DD)"));
    let parts: Vec<&str> = s.split('-').collect();
    if parts.len() != 3 {
        return Err(bad());
    }
    let nums: Vec<u64> = parts
        .iter()
        .map(|p| p.parse().map_err(|_| bad()))
        .collect::<CliResult<_>>()?;
    certchain_asn1::Asn1Time::from_ymd_hms(nums[0], nums[1], nums[2], 0, 0, 0).map_err(|_| bad())
}

/// Optional numeric flag extraction.
fn parse_u64_flag(args: &[String], flag: &str) -> CliResult<Option<u64>> {
    use certchain_cli::CliError;
    match flag_value(args, flag)? {
        None => Ok(None),
        Some(v) => v
            .parse()
            .map(Some)
            .map_err(|_| CliError::Invalid(format!("bad value {v:?} for {flag}"))),
    }
}

/// `--threads N` extraction: absent → 0 (all cores).
fn parse_threads(args: &[String]) -> CliResult<usize> {
    use certchain_cli::CliError;
    match flag_value(args, "--threads")? {
        None => Ok(0),
        Some(v) => v
            .parse()
            .map_err(|_| CliError::Invalid(format!("bad thread count {v:?}"))),
    }
}

/// Boolean flag presence.
fn has_flag(args: &[String], flag: &str) -> bool {
    args.iter().any(|a| a == flag)
}

/// `--flag value` extraction.
fn flag_value(args: &[String], flag: &str) -> CliResult<Option<String>> {
    use certchain_cli::CliError;
    for (i, arg) in args.iter().enumerate() {
        if arg == flag {
            return args
                .get(i + 1)
                .cloned()
                .map(Some)
                .ok_or_else(|| CliError::Invalid(format!("{flag} requires a value")));
        }
    }
    Ok(None)
}
