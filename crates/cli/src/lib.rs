#![forbid(unsafe_code)]
//! Library backing the `certchain` command-line tool.
//!
//! The CLI is the downstream-user surface of the reproduction: it exports
//! a synthetic campus dataset to disk (Zeek TSV logs + PEM trust material)
//! and analyzes such a dataset — or real Zeek logs with the same field
//! subset — end to end.
//!
//! ```sh
//! certchain generate --out /tmp/campus --profile quick
//! certchain convert  --dir /tmp/campus        # TSV -> columnar store
//! certchain compact  --dir /tmp/campus        # migrate store to current format
//! certchain analyze  --dir /tmp/campus        # auto-detects the store
//! certchain serve    --dir /tmp/campus --spool /tmp/spool --checkpoint /tmp/ckpt
//! certchain validate /tmp/campus/sample-chain.pem
//! ```

pub mod analyze;
pub(crate) mod catdigest;
pub mod compact;
pub mod convert;
pub mod dataset;
pub mod generate;
pub mod serve;
pub mod validate;

use std::fmt;

/// CLI-level errors, rendered to stderr by the binary.
#[derive(Debug)]
pub enum CliError {
    /// I/O failure with context.
    Io(String, std::io::Error),
    /// Malformed input (logs, PEM, arguments).
    Invalid(String),
}

impl fmt::Display for CliError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CliError::Io(what, e) => write!(f, "{what}: {e}"),
            CliError::Invalid(msg) => write!(f, "{msg}"),
        }
    }
}

impl std::error::Error for CliError {}

/// Shorthand result.
pub type CliResult<T> = Result<T, CliError>;

/// Wrap an I/O error with context.
pub fn io_ctx(what: impl Into<String>) -> impl FnOnce(std::io::Error) -> CliError {
    move |e| CliError::Io(what.into(), e)
}
