//! On-disk dataset layout shared by `generate` and `analyze`.
//!
//! ```text
//! <dir>/
//!   ssl.log            Zeek-format TLS connection log
//!   x509.log           Zeek-format certificate log
//!   colstore/          columnar store (optional; preferred when present)
//!     dataset.json          versioned manifest
//!     *.dat, ssl.*, x509.*  one file per column
//!   trust/roots/*.pem       trusted root certificates (all programs)
//!   trust/ccadb/*.pem       CCADB-listed intermediates
//!   ct/*.pem                CT-logged certificates (crt.sh-style corpus)
//!   crosssign.tsv           subject<TAB>alternate-issuer disclosure pairs
//!   sample-chain.pem        one delivered chain, for `certchain validate`
//! ```
//!
//! A dataset carries its logs as Zeek TSV, as a columnar store, or both.
//! [`detect_format`] prefers the columnar store when a manifest is
//! present (it skips the parse stage entirely); `--format` overrides.

use crate::{io_ctx, CliError, CliResult};
use certchain_ctlog::DomainIndex;
use certchain_trust::TrustDb;
use certchain_x509::{pem, Certificate, DistinguishedName};
use std::path::Path;
use std::sync::Arc;

/// How a dataset's log tables are stored on disk.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum DatasetFormat {
    /// Zeek TSV logs (`ssl.log` / `x509.log`).
    Tsv,
    /// Columnar store under `colstore/` (`certchain-colstore/v1`).
    Columnar,
}

impl DatasetFormat {
    /// Parse a `--format` argument.
    pub fn parse(s: &str) -> CliResult<DatasetFormat> {
        match s {
            "tsv" => Ok(DatasetFormat::Tsv),
            "columnar" => Ok(DatasetFormat::Columnar),
            other => Err(CliError::Invalid(format!(
                "unknown format {other:?} (expected tsv or columnar)"
            ))),
        }
    }
}

/// The columnar store directory of a dataset.
pub fn colstore_dir(dir: &Path) -> std::path::PathBuf {
    dir.join(certchain_colstore::STORE_DIR)
}

/// Detect which log representation to analyze: the columnar store when a
/// manifest is present (no parse stage), Zeek TSV otherwise. A manifest
/// that exists but fails the schema/version check is an error spelling
/// out expected vs found — a newer- or older-format store must never
/// silently fall back to re-parsing possibly stale TSV.
pub fn detect_format(dir: &Path) -> CliResult<DatasetFormat> {
    let store = colstore_dir(dir);
    if store.join(certchain_colstore::MANIFEST_FILE).is_file() {
        certchain_colstore::Manifest::load(&store)
            .map_err(|e| CliError::Invalid(format!("{}: {e}", store.display())))?;
        return Ok(DatasetFormat::Columnar);
    }
    Ok(DatasetFormat::Tsv)
}

/// Read every `*.pem` file under `dir` (non-recursive) into certificates.
pub fn read_pem_dir(dir: &Path) -> CliResult<Vec<Arc<Certificate>>> {
    let mut certs = Vec::new();
    let entries = std::fs::read_dir(dir).map_err(io_ctx(format!("reading {}", dir.display())))?;
    let mut paths: Vec<_> = entries
        .filter_map(|e| e.ok().map(|e| e.path()))
        .filter(|p| p.extension().map(|e| e == "pem").unwrap_or(false))
        .collect();
    paths.sort();
    for path in paths {
        let text = std::fs::read_to_string(&path)
            .map_err(io_ctx(format!("reading {}", path.display())))?;
        let blocks = pem::decode_all("CERTIFICATE", &text)
            .map_err(|e| CliError::Invalid(format!("{}: {e}", path.display())))?;
        for der in blocks {
            let cert = Certificate::parse(&der)
                .map_err(|e| CliError::Invalid(format!("{}: {e}", path.display())))?;
            certs.push(cert.into_arc());
        }
    }
    Ok(certs)
}

/// Load the trust databases from `<dir>/trust/`.
pub fn load_trust(dir: &Path) -> CliResult<TrustDb> {
    let mut trust = TrustDb::new();
    let roots_dir = dir.join("trust/roots");
    for root in read_pem_dir(&roots_dir)? {
        trust.add_root_everywhere(root);
    }
    let ccadb_dir = dir.join("trust/ccadb");
    if ccadb_dir.is_dir() {
        // Intermediates may chain through each other; insert in passes so
        // order on disk does not matter.
        let mut pending = read_pem_dir(&ccadb_dir)?;
        loop {
            let before = pending.len();
            pending.retain(|cert| {
                trust
                    .try_add_ccadb_intermediate(Arc::clone(cert), false, true)
                    .is_err()
            });
            if pending.is_empty() || pending.len() == before {
                break;
            }
        }
        if !pending.is_empty() {
            return Err(CliError::Invalid(format!(
                "{} CCADB intermediate(s) do not chain to any loaded root",
                pending.len()
            )));
        }
    }
    Ok(trust)
}

/// Load the CT corpus from `<dir>/ct/` into a crt.sh-style index.
pub fn load_ct_index(dir: &Path) -> CliResult<DomainIndex> {
    let mut index = DomainIndex::new();
    let ct_dir = dir.join("ct");
    if ct_dir.is_dir() {
        for cert in read_pem_dir(&ct_dir)? {
            index.add(cert);
        }
    }
    Ok(index)
}

/// Load cross-signing disclosures from `<dir>/crosssign.tsv`.
pub fn load_crosssign(dir: &Path) -> CliResult<Vec<(DistinguishedName, DistinguishedName)>> {
    let path = dir.join("crosssign.tsv");
    if !path.is_file() {
        return Ok(Vec::new());
    }
    let text =
        std::fs::read_to_string(&path).map_err(io_ctx(format!("reading {}", path.display())))?;
    let mut pairs = Vec::new();
    for (lineno, line) in text.lines().enumerate() {
        if line.is_empty() || line.starts_with('#') {
            continue;
        }
        let (subject, issuer) = line.split_once('\t').ok_or_else(|| {
            CliError::Invalid(format!("crosssign.tsv line {}: missing tab", lineno + 1))
        })?;
        let parse = |s: &str| {
            DistinguishedName::parse_rfc4514(s).ok_or_else(|| {
                CliError::Invalid(format!("crosssign.tsv line {}: bad DN {s:?}", lineno + 1))
            })
        };
        pairs.push((parse(subject)?, parse(issuer)?));
    }
    Ok(pairs)
}

#[cfg(test)]
mod tests {
    use super::*;
    use certchain_asn1::Asn1Time;
    use certchain_cryptosim::KeyPair;
    use certchain_x509::{CertificateBuilder, Validity};

    fn tempdir(name: &str) -> std::path::PathBuf {
        let dir =
            std::env::temp_dir().join(format!("certchain-cli-test-{name}-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).unwrap();
        dir
    }

    fn write_pem(path: &Path, cert: &Certificate) {
        std::fs::write(path, pem::encode("CERTIFICATE", cert.der())).unwrap();
    }

    #[test]
    fn pem_dir_round_trip() {
        let dir = tempdir("pemdir");
        let kp = KeyPair::derive(1, "cli:root");
        let dn = DistinguishedName::cn("CLI Root");
        let cert = CertificateBuilder::new()
            .issuer(dn.clone())
            .subject(dn)
            .validity(Validity::days_from(Asn1Time::from_unix(0), 10))
            .ca(None)
            .sign(&kp);
        write_pem(&dir.join("root.pem"), &cert);
        std::fs::write(dir.join("ignored.txt"), "not pem").unwrap();
        let certs = read_pem_dir(&dir).unwrap();
        assert_eq!(certs.len(), 1);
        assert_eq!(certs[0].fingerprint(), cert.fingerprint());
    }

    #[test]
    fn load_trust_resolves_chained_intermediates_in_any_order() {
        let dir = tempdir("trust");
        std::fs::create_dir_all(dir.join("trust/roots")).unwrap();
        std::fs::create_dir_all(dir.join("trust/ccadb")).unwrap();
        let root_kp = KeyPair::derive(2, "cli:root2");
        let root_dn = DistinguishedName::cn("CLI Root 2");
        let root = CertificateBuilder::new()
            .issuer(root_dn.clone())
            .subject(root_dn.clone())
            .validity(Validity::days_from(Asn1Time::from_unix(0), 100))
            .ca(None)
            .sign(&root_kp);
        let ica_kp = KeyPair::derive(2, "cli:ica");
        let ica_dn = DistinguishedName::cn("CLI ICA");
        let ica = CertificateBuilder::new()
            .issuer(root_dn)
            .subject(ica_dn.clone())
            .validity(Validity::days_from(Asn1Time::from_unix(0), 100))
            .public_key(ica_kp.public().clone())
            .ca(None)
            .sign(&root_kp);
        let sub_kp = KeyPair::derive(2, "cli:sub");
        let sub = CertificateBuilder::new()
            .issuer(ica_dn)
            .subject(DistinguishedName::cn("CLI Sub ICA"))
            .validity(Validity::days_from(Asn1Time::from_unix(0), 100))
            .public_key(sub_kp.public().clone())
            .ca(None)
            .sign(&ica_kp);
        write_pem(&dir.join("trust/roots/root.pem"), &root);
        // Deliberately name the deeper intermediate so it sorts FIRST.
        write_pem(&dir.join("trust/ccadb/a-sub.pem"), &sub);
        write_pem(&dir.join("trust/ccadb/b-ica.pem"), &ica);
        let trust = load_trust(&dir).unwrap();
        assert!(trust.is_listed_subject(&DistinguishedName::cn("CLI ICA")));
        assert!(trust.is_listed_subject(&DistinguishedName::cn("CLI Sub ICA")));
    }

    #[test]
    fn crosssign_tsv_parses() {
        let dir = tempdir("xsign");
        std::fs::write(
            dir.join("crosssign.tsv"),
            "# comment\nCN=ICA\tCN=Alt Root\n",
        )
        .unwrap();
        let pairs = load_crosssign(&dir).unwrap();
        assert_eq!(pairs.len(), 1);
        assert_eq!(pairs[0].0.common_name(), Some("ICA"));
        // Missing file → empty.
        assert!(load_crosssign(&tempdir("xsign-empty")).unwrap().is_empty());
    }
}
