//! `certchain validate`: run both Appendix-D validators over a PEM chain
//! file, plus the browser/strict policy comparison when trust material is
//! available.

use crate::{io_ctx, CliError, CliResult};
use certchain_asn1::Asn1Time;
use certchain_netsim::{validate_chain, ValidationPolicy};
use certchain_scanner::sclient::{ScanResult, ScannedCert};
use certchain_scanner::{
    validate_issuer_subject, validate_keysig, IssuerSubjectVerdict, KeysigVerdict,
};
use certchain_trust::TrustDb;
use certchain_x509::{pem, Certificate};
use std::path::Path;
use std::sync::Arc;

/// Validate the chain in `path` (concatenated PEM certificates, leaf
/// first). `trust` enables the browser/strict comparison; `at` is the
/// evaluation time (defaults to the last certificate's notBefore).
pub fn validate(path: &Path, trust: Option<&TrustDb>, at: Option<Asn1Time>) -> CliResult<String> {
    let text =
        std::fs::read_to_string(path).map_err(io_ctx(format!("reading {}", path.display())))?;
    let blocks = pem::decode_all("CERTIFICATE", &text)
        .map_err(|e| CliError::Invalid(format!("{}: {e}", path.display())))?;

    let mut out = String::new();
    let mut scanned = Vec::with_capacity(blocks.len());
    let mut parsed: Vec<Option<Certificate>> = Vec::with_capacity(blocks.len());
    for (i, der) in blocks.iter().enumerate() {
        match Certificate::parse(der) {
            Ok(cert) => {
                out.push_str(&format!(
                    "[{i}] subject: {}\n    issuer:  {}\n    valid:   {} .. {}\n",
                    cert.subject, cert.issuer, cert.validity.not_before, cert.validity.not_after
                ));
                scanned.push(ScannedCert {
                    der: der.clone(),
                    issuer: cert.issuer.to_rfc4514(),
                    subject: cert.subject.to_rfc4514(),
                });
                parsed.push(Some(cert));
            }
            Err(e) => {
                out.push_str(&format!("[{i}] <unparseable certificate: {e}>\n"));
                scanned.push(ScannedCert {
                    der: der.clone(),
                    issuer: String::new(),
                    subject: String::new(),
                });
                parsed.push(None);
            }
        }
    }

    let result = ScanResult {
        domain: path.display().to_string(),
        chain: scanned,
        pem: text,
        server_idx: 0,
    };
    out.push('\n');
    out.push_str(&format!(
        "issuer-subject method : {}\n",
        describe_is(&validate_issuer_subject(&result))
    ));
    out.push_str(&format!(
        "key-signature method  : {}\n",
        describe_ks(&validate_keysig(&result))
    ));

    if let Some(trust) = trust {
        if parsed.iter().all(Option::is_some) {
            let chain: Vec<Arc<Certificate>> = parsed
                .into_iter()
                .map(|c| c.expect("checked above").into_arc())
                .collect();
            let at = at.unwrap_or(chain[0].validity.not_before);
            out.push('\n');
            for (name, policy) in [
                ("browser (path building) ", ValidationPolicy::Browser),
                (
                    "strict (presented chain)",
                    ValidationPolicy::StrictPresented,
                ),
            ] {
                match validate_chain(policy, &chain, trust, at, None) {
                    Ok(()) => out.push_str(&format!("{name}: VALID\n")),
                    Err(e) => out.push_str(&format!("{name}: REJECTED ({e})\n")),
                }
            }
        }
    }
    Ok(out)
}

/// Lint the chain in `path` against the paper's compliance observations.
pub fn lint(path: &Path, at: Option<Asn1Time>) -> CliResult<String> {
    use certchain_chainlab::{lint_chain, CertRecord, CrossSignRegistry};
    let text =
        std::fs::read_to_string(path).map_err(io_ctx(format!("reading {}", path.display())))?;
    let blocks = pem::decode_all("CERTIFICATE", &text)
        .map_err(|e| CliError::Invalid(format!("{}: {e}", path.display())))?;
    let mut chain = Vec::with_capacity(blocks.len());
    for (i, der) in blocks.iter().enumerate() {
        let cert = Certificate::parse(der)
            .map_err(|e| CliError::Invalid(format!("certificate {i}: {e}")))?;
        chain.push(CertRecord {
            fingerprint: cert.fingerprint(),
            issuer: cert.issuer.clone(),
            subject: cert.subject.clone(),
            validity: cert.validity,
            bc_ca: cert.basic_constraints().map(|bc| bc.ca),
            san_dns: cert.dns_names().iter().map(|s| s.to_string()).collect(),
        });
    }
    let report = certchain_chainlab::matchpath::analyze(&chain, &CrossSignRegistry::new());
    // Lint against *now* by default — otherwise the expired-leaf checks
    // could never fire (a chain is always valid at its own notBefore).
    let at = at.unwrap_or_else(now);
    let findings = lint_chain(&chain, &report, at);
    if findings.is_empty() {
        return Ok("no findings\n".to_string());
    }
    let mut out = String::new();
    for f in findings {
        out.push_str(&format!("{f}\n"));
    }
    Ok(out)
}

/// Current wall-clock time as an [`Asn1Time`]. The simulator never uses
/// wall time, but the CLI lints *real* chains for *today's* user — so the
/// read goes through `obs::clock`, the workspace's single sanctioned
/// wall-clock site.
fn now() -> Asn1Time {
    Asn1Time::from_unix(certchain_obs::clock::wall_unix_secs())
}

fn describe_is(v: &IssuerSubjectVerdict) -> String {
    match v {
        IssuerSubjectVerdict::Single => "single-certificate chain".into(),
        IssuerSubjectVerdict::Valid => "VALID (all issuer-subject pairs match)".into(),
        IssuerSubjectVerdict::Broken { mismatch_positions } => {
            format!("BROKEN (mismatched pairs at {mismatch_positions:?})")
        }
    }
}

fn describe_ks(v: &KeysigVerdict) -> String {
    match v {
        KeysigVerdict::Single => "single-certificate chain".into(),
        KeysigVerdict::Valid => "VALID (all signatures verify)".into(),
        KeysigVerdict::Broken { failure_positions } => {
            format!("BROKEN (signature failures at {failure_positions:?})")
        }
        KeysigVerdict::UnrecognizedKey => "UNRECOGNIZED KEY ALGORITHM".into(),
        KeysigVerdict::ParseError { position } => {
            format!("ASN.1 PARSE ERROR at certificate {position}")
        }
    }
}
