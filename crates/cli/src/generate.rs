//! `certchain generate`: export a synthetic campus dataset to disk.
//!
//! The Zeek logs are written *while the trace is generated*: a
//! [`TraceSink`] feeds each record straight into the incremental log
//! writers, so the connection stream is never materialized in memory.
//! Only the compact sidecars (trust material, CT corpus, disclosures) go
//! through the in-memory trace context.

use crate::dataset::{colstore_dir, DatasetFormat};
use crate::{io_ctx, CliError, CliResult};
use certchain_colstore::DatasetWriter;
use certchain_netsim::zeek::tsv::{SslLogWriter, X509LogWriter};
use certchain_netsim::{SimClock, SslRecord, X509Record};
use certchain_obs::{Progress, Registry};
use certchain_workload::{CampusProfile, CampusTrace, ConnMeta, TraceSink};
use certchain_x509::pem;
use std::collections::HashSet;
use std::io::Write;
use std::path::{Path, PathBuf};
use std::sync::Arc;

/// Records between progress ticks from the file sink.
const PROGRESS_EVERY: u64 = 8192;

/// Knobs for `certchain generate` beyond profile and output directory.
#[derive(Debug, Clone)]
pub struct GenerateOptions {
    /// Worker threads (`0` = available parallelism).
    pub threads: usize,
    /// Report live progress (records/sec) on stderr.
    pub progress: bool,
    /// Write a `certchain-metrics/v1` snapshot to this path.
    pub metrics_json: Option<PathBuf>,
    /// Log representation to write: Zeek TSV (the default) or the
    /// columnar store. Sidecars are identical either way, and analyzing
    /// either representation yields byte-identical reports.
    pub format: DatasetFormat,
}

impl Default for GenerateOptions {
    fn default() -> GenerateOptions {
        GenerateOptions {
            threads: 0,
            progress: false,
            metrics_json: None,
            format: DatasetFormat::Tsv,
        }
    }
}

/// Generate a trace with `profile` and write the full dataset to `out`,
/// using all available cores.
///
/// Returns a short human-readable summary.
pub fn generate(out: &Path, profile: CampusProfile) -> CliResult<String> {
    generate_with(out, profile, 0)
}

/// Like [`generate`], on `threads` worker threads (`0` = available
/// parallelism). The dataset is identical for every thread count, and
/// identical to writing a fully materialized [`CampusTrace`].
pub fn generate_with(out: &Path, profile: CampusProfile, threads: usize) -> CliResult<String> {
    generate_opts(
        out,
        profile,
        &GenerateOptions {
            threads,
            ..GenerateOptions::default()
        },
    )
}

/// The full `certchain generate` implementation, honoring every
/// [`GenerateOptions`] knob. The dataset bytes are identical whatever the
/// observability settings.
pub fn generate_opts(
    out: &Path,
    profile: CampusProfile,
    opts: &GenerateOptions,
) -> CliResult<String> {
    for sub in ["trust/roots", "trust/ccadb", "ct"] {
        std::fs::create_dir_all(out.join(sub))
            .map_err(io_ctx(format!("creating {}", out.join(sub).display())))?;
    }
    let registry = Arc::new(Registry::new());
    let (ctx, ssl_count, x509_count) = match opts.format {
        DatasetFormat::Tsv => generate_tsv(out, profile, opts, &registry)?,
        DatasetFormat::Columnar => generate_columnar(out, profile, opts, &registry)?,
    };
    {
        let _span = registry.stage("write_sidecars");
        write_sidecars(out, &ctx.servers, &ctx.eco, &ctx.cross_sign_disclosures)?;
    }
    if let Some(path) = &opts.metrics_json {
        let text = registry.snapshot().to_json().to_pretty() + "\n";
        std::fs::write(path, text)
            .map_err(io_ctx(format!("writing metrics to {}", path.display())))?;
    }
    Ok(format!(
        "wrote {} connection records, {} certificates, {} servers to {}",
        ssl_count,
        x509_count,
        ctx.servers.len(),
        out.display()
    ))
}

/// The TSV log-writing body of [`generate_opts`].
fn generate_tsv(
    out: &Path,
    profile: CampusProfile,
    opts: &GenerateOptions,
    registry: &Arc<Registry>,
) -> CliResult<(certchain_workload::trace::TraceContext, u64, u64)> {
    let open = SimClock::campus_window_start().now();
    let ssl = std::io::BufWriter::new(
        std::fs::File::create(out.join("ssl.log")).map_err(io_ctx("creating ssl.log"))?,
    );
    let x509 = std::io::BufWriter::new(
        std::fs::File::create(out.join("x509.log")).map_err(io_ctx("creating x509.log"))?,
    );
    let mut sink = FileSink {
        ssl: SslLogWriter::new(ssl, open).map_err(io_ctx("writing ssl.log"))?,
        x509: X509LogWriter::new(x509, open).map_err(io_ctx("writing x509.log"))?,
        ssl_count: 0,
        x509_count: 0,
        progress: opts.progress.then(|| Progress::stderr("generate")),
    };
    let ctx = {
        let _span = registry.stage("generate_total");
        CampusTrace::stream_observed(profile, opts.threads, &mut sink, Some(registry))?
    };
    if let Some(p) = &sink.progress {
        p.finish(sink.ssl_count);
    }
    sink.ssl
        .finish()
        .and_then(|mut w| w.flush())
        .map_err(io_ctx("closing ssl.log"))?;
    sink.x509
        .finish()
        .and_then(|mut w| w.flush())
        .map_err(io_ctx("closing x509.log"))?;
    Ok((ctx, sink.ssl_count, sink.x509_count))
}

/// The columnar log-writing body of [`generate_opts`]: the same record
/// stream feeds a [`DatasetWriter`] instead of the TSV writers.
fn generate_columnar(
    out: &Path,
    profile: CampusProfile,
    opts: &GenerateOptions,
    registry: &Arc<Registry>,
) -> CliResult<(certchain_workload::trace::TraceContext, u64, u64)> {
    let store = colstore_dir(out);
    let mut sink = ColumnarSink {
        writer: DatasetWriter::create(&store)
            .map_err(|e| CliError::Invalid(format!("colstore: {e}")))?,
        progress: opts.progress.then(|| Progress::stderr("generate")),
    };
    let ctx = {
        let _span = registry.stage("generate_total");
        CampusTrace::stream_observed(profile, opts.threads, &mut sink, Some(registry))?
    };
    let (ssl_count, x509_count) = sink.writer.rows();
    if let Some(p) = &sink.progress {
        p.finish(ssl_count);
    }
    sink.writer
        .finish()
        .map_err(|e| CliError::Invalid(format!("colstore: {e}")))?;
    Ok((ctx, ssl_count, x509_count))
}

/// The streaming sink: every record goes straight to its log writer.
struct FileSink<W1: Write, W2: Write> {
    ssl: SslLogWriter<W1>,
    x509: X509LogWriter<W2>,
    ssl_count: u64,
    x509_count: u64,
    progress: Option<Progress>,
}

impl<W1: Write, W2: Write> TraceSink for FileSink<W1, W2> {
    type Error = CliError;

    fn ssl(&mut self, record: SslRecord, _meta: ConnMeta) -> Result<(), CliError> {
        self.ssl_count += 1;
        if let Some(p) = &self.progress {
            if self.ssl_count % PROGRESS_EVERY == 0 {
                p.tick(self.ssl_count, 0, &[]);
            }
        }
        self.ssl.record(&record).map_err(io_ctx("writing ssl.log"))
    }

    fn x509(&mut self, record: X509Record) -> Result<(), CliError> {
        self.x509_count += 1;
        self.x509
            .record(&record)
            .map_err(io_ctx("writing x509.log"))
    }
}

/// The columnar streaming sink: every record appends to its columns.
struct ColumnarSink {
    writer: DatasetWriter,
    progress: Option<Progress>,
}

impl TraceSink for ColumnarSink {
    type Error = CliError;

    fn ssl(&mut self, record: SslRecord, _meta: ConnMeta) -> Result<(), CliError> {
        self.writer
            .append_ssl(&record)
            .map_err(|e| CliError::Invalid(format!("colstore: {e}")))?;
        if let Some(p) = &self.progress {
            let (ssl_count, _) = self.writer.rows();
            if ssl_count % PROGRESS_EVERY == 0 {
                p.tick(ssl_count, 0, &[]);
            }
        }
        Ok(())
    }

    fn x509(&mut self, record: X509Record) -> Result<(), CliError> {
        self.writer
            .append_x509(&record)
            .map_err(|e| CliError::Invalid(format!("colstore: {e}")))
    }
}

/// Write an already-generated trace as an on-disk dataset (the batch
/// counterpart of [`generate_with`], kept for callers that already hold a
/// [`CampusTrace`]; both produce byte-identical datasets).
pub fn write_dataset(out: &Path, trace: &CampusTrace) -> CliResult<()> {
    for sub in ["trust/roots", "trust/ccadb", "ct"] {
        std::fs::create_dir_all(out.join(sub))
            .map_err(io_ctx(format!("creating {}", out.join(sub).display())))?;
    }
    let open = SimClock::campus_window_start().now();
    let mut ssl = SslLogWriter::new(
        std::io::BufWriter::new(
            std::fs::File::create(out.join("ssl.log")).map_err(io_ctx("creating ssl.log"))?,
        ),
        open,
    )
    .map_err(io_ctx("writing ssl.log"))?;
    for rec in &trace.ssl_records {
        ssl.record(rec).map_err(io_ctx("writing ssl.log"))?;
    }
    ssl.finish()
        .and_then(|mut w| w.flush())
        .map_err(io_ctx("closing ssl.log"))?;
    let mut x509 = X509LogWriter::new(
        std::io::BufWriter::new(
            std::fs::File::create(out.join("x509.log")).map_err(io_ctx("creating x509.log"))?,
        ),
        open,
    )
    .map_err(io_ctx("writing x509.log"))?;
    for rec in &trace.x509_records {
        x509.record(rec).map_err(io_ctx("writing x509.log"))?;
    }
    x509.finish()
        .and_then(|mut w| w.flush())
        .map_err(io_ctx("closing x509.log"))?;
    write_sidecars(
        out,
        &trace.servers,
        &trace.eco,
        &trace.cross_sign_disclosures,
    )
}

/// The non-log dataset files shared by the streaming and batch writers:
/// trust material, CT corpus, cross-signing disclosures, sample chain.
fn write_sidecars(
    out: &Path,
    servers: &[certchain_workload::servers::GeneratedServer],
    eco: &certchain_workload::Ecosystem,
    cross_sign_disclosures: &[(
        certchain_x509::DistinguishedName,
        certchain_x509::DistinguishedName,
    )],
) -> CliResult<()> {
    // Trust material: roots (deduplicated across programs) and CCADB.
    let mut seen = HashSet::new();
    let mut root_idx = 0usize;
    for store in eco.trust.stores().values() {
        for root in store.iter() {
            if seen.insert(root.fingerprint()) {
                let path = out.join(format!("trust/roots/root-{root_idx:03}.pem"));
                std::fs::write(&path, pem::encode("CERTIFICATE", root.der()))
                    .map_err(io_ctx(format!("writing {}", path.display())))?;
                root_idx += 1;
            }
        }
    }
    for (i, entry) in eco.trust.ccadb().iter().enumerate() {
        let path = out.join(format!("trust/ccadb/ica-{i:03}.pem"));
        std::fs::write(&path, pem::encode("CERTIFICATE", entry.cert.der()))
            .map_err(io_ctx(format!("writing {}", path.display())))?;
    }

    // CT corpus.
    for (i, entry) in eco.ct.entries().iter().enumerate() {
        let path = out.join(format!("ct/logged-{i:05}.pem"));
        std::fs::write(&path, pem::encode("CERTIFICATE", entry.cert.der()))
            .map_err(io_ctx(format!("writing {}", path.display())))?;
    }

    // Cross-signing disclosures.
    let mut tsv = String::from("# subject<TAB>alternate issuer\n");
    for (subject, issuer) in cross_sign_disclosures {
        tsv.push_str(&format!(
            "{}\t{}\n",
            subject.to_rfc4514(),
            issuer.to_rfc4514()
        ));
    }
    std::fs::write(out.join("crosssign.tsv"), tsv).map_err(io_ctx("writing crosssign.tsv"))?;

    // A sample delivered chain for `certchain validate`: the first hybrid
    // contains-path server (complete path + unnecessary certificate).
    if let Some(server) = servers.iter().find(|s| {
        matches!(
            s.category,
            certchain_workload::trace::ChainCategory::Hybrid(
                certchain_workload::trace::HybridKind::ContainsPath(_)
            )
        )
    }) {
        let mut text = String::new();
        for cert in &server.endpoint.chain {
            text.push_str(&pem::encode("CERTIFICATE", cert.der()));
        }
        std::fs::write(out.join("sample-chain.pem"), text)
            .map_err(io_ctx("writing sample-chain.pem"))?;
    }
    Ok(())
}
