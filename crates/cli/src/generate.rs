//! `certchain generate`: export a synthetic campus dataset to disk.

use crate::{io_ctx, CliResult};
use certchain_netsim::zeek::tsv::{write_ssl_log, write_x509_log};
use certchain_netsim::SimClock;
use certchain_workload::{CampusProfile, CampusTrace};
use certchain_x509::pem;
use std::collections::HashSet;
use std::io::Write;
use std::path::Path;

/// Generate a trace with `profile` and write the full dataset to `out`,
/// using all available cores.
///
/// Returns a short human-readable summary.
pub fn generate(out: &Path, profile: CampusProfile) -> CliResult<String> {
    generate_with(out, profile, 0)
}

/// Like [`generate`], on `threads` worker threads (`0` = available
/// parallelism). The dataset is identical for every thread count.
pub fn generate_with(out: &Path, profile: CampusProfile, threads: usize) -> CliResult<String> {
    let trace = CampusTrace::generate_with(profile, threads);
    write_dataset(out, &trace)?;
    Ok(format!(
        "wrote {} connection records, {} certificates, {} servers to {}",
        trace.ssl_records.len(),
        trace.x509_records.len(),
        trace.servers.len(),
        out.display()
    ))
}

/// Write an already-generated trace as an on-disk dataset.
pub fn write_dataset(out: &Path, trace: &CampusTrace) -> CliResult<()> {
    for sub in ["trust/roots", "trust/ccadb", "ct"] {
        std::fs::create_dir_all(out.join(sub))
            .map_err(io_ctx(format!("creating {}", out.join(sub).display())))?;
    }
    let open = SimClock::campus_window_start().now();

    // Zeek logs.
    let mut ssl = std::io::BufWriter::new(
        std::fs::File::create(out.join("ssl.log")).map_err(io_ctx("creating ssl.log"))?,
    );
    write_ssl_log(&mut ssl, &trace.ssl_records, open).map_err(io_ctx("writing ssl.log"))?;
    ssl.flush().map_err(io_ctx("flushing ssl.log"))?;
    let mut x509 = std::io::BufWriter::new(
        std::fs::File::create(out.join("x509.log")).map_err(io_ctx("creating x509.log"))?,
    );
    write_x509_log(&mut x509, &trace.x509_records, open).map_err(io_ctx("writing x509.log"))?;
    x509.flush().map_err(io_ctx("flushing x509.log"))?;

    // Trust material: roots (deduplicated across programs) and CCADB.
    let mut seen = HashSet::new();
    let mut root_idx = 0usize;
    for store in trace.eco.trust.stores().values() {
        for root in store.iter() {
            if seen.insert(root.fingerprint()) {
                let path = out.join(format!("trust/roots/root-{root_idx:03}.pem"));
                std::fs::write(&path, pem::encode("CERTIFICATE", root.der()))
                    .map_err(io_ctx(format!("writing {}", path.display())))?;
                root_idx += 1;
            }
        }
    }
    for (i, entry) in trace.eco.trust.ccadb().iter().enumerate() {
        let path = out.join(format!("trust/ccadb/ica-{i:03}.pem"));
        std::fs::write(&path, pem::encode("CERTIFICATE", entry.cert.der()))
            .map_err(io_ctx(format!("writing {}", path.display())))?;
    }

    // CT corpus.
    for (i, entry) in trace.eco.ct.entries().iter().enumerate() {
        let path = out.join(format!("ct/logged-{i:05}.pem"));
        std::fs::write(&path, pem::encode("CERTIFICATE", entry.cert.der()))
            .map_err(io_ctx(format!("writing {}", path.display())))?;
    }

    // Cross-signing disclosures.
    let mut tsv = String::from("# subject<TAB>alternate issuer\n");
    for (subject, issuer) in &trace.cross_sign_disclosures {
        tsv.push_str(&format!(
            "{}\t{}\n",
            subject.to_rfc4514(),
            issuer.to_rfc4514()
        ));
    }
    std::fs::write(out.join("crosssign.tsv"), tsv).map_err(io_ctx("writing crosssign.tsv"))?;

    // A sample delivered chain for `certchain validate`: the first hybrid
    // contains-path server (complete path + unnecessary certificate).
    if let Some(server) = trace.servers.iter().find(|s| {
        matches!(
            s.category,
            certchain_workload::trace::ChainCategory::Hybrid(
                certchain_workload::trace::HybridKind::ContainsPath(_)
            )
        )
    }) {
        let mut text = String::new();
        for cert in &server.endpoint.chain {
            text.push_str(&pem::encode("CERTIFICATE", cert.der()));
        }
        std::fs::write(out.join("sample-chain.pem"), text)
            .map_err(io_ctx("writing sample-chain.pem"))?;
    }
    Ok(())
}
