//! TSV-vs-columnar parity: `certchain convert` followed by a columnar
//! `analyze` must reproduce the TSV analysis byte-for-byte — same JSON
//! summary, same report tables, at every thread count — and a stale
//! store version must fail loudly instead of silently falling back.

use certchain_cli::dataset::DatasetFormat;
use certchain_cli::{analyze, convert, generate};
use certchain_obs::json::JsonValue;
use certchain_workload::CampusProfile;
use std::path::PathBuf;

/// One shared dataset, generated and converted once: every test here
/// reads it, none mutates it (the version test copies the store first).
fn dataset_dir() -> &'static PathBuf {
    static CELL: std::sync::OnceLock<PathBuf> = std::sync::OnceLock::new();
    CELL.get_or_init(|| {
        let dir = std::env::temp_dir().join(format!("certchain-colpar-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        let profile = CampusProfile {
            seed: 99,
            chain_scale: 0.0005,
            conn_scale: 0.00005,
            public_chains: 120,
            public_conns_per_chain: 2,
        };
        generate::generate(&dir, profile).expect("generate succeeds");
        let summary = convert::convert(&dir).expect("convert succeeds");
        assert!(summary.contains("ssl rows"), "{summary}");
        dir
    })
}

fn analyze_with(format: DatasetFormat, threads: usize, json: bool) -> String {
    analyze::analyze_opts(
        dataset_dir(),
        &analyze::AnalyzeOptions {
            threads,
            json,
            format: Some(format),
            ..analyze::AnalyzeOptions::default()
        },
    )
    .expect("analyze succeeds")
}

/// The human report minus its loss-accounting line, which by design
/// describes the input representation (log lines vs store rows).
fn tables_only(report: &str) -> String {
    report
        .lines()
        .filter(|l| !l.contains("loss accounting:"))
        .collect::<Vec<_>>()
        .join("\n")
}

#[test]
fn json_summary_is_byte_identical_across_formats_and_threads() {
    let baseline = analyze_with(DatasetFormat::Tsv, 1, true);
    for threads in [1usize, 2, 8] {
        for format in [DatasetFormat::Tsv, DatasetFormat::Columnar] {
            let got = analyze_with(format, threads, true);
            assert_eq!(
                got, baseline,
                "JSON diverged for {format:?} at {threads} threads"
            );
        }
    }
}

#[test]
fn report_tables_are_byte_identical_across_formats() {
    let tsv = analyze_with(DatasetFormat::Tsv, 1, false);
    let col = analyze_with(DatasetFormat::Columnar, 8, false);
    assert_ne!(tsv, col, "loss lines describe different representations");
    assert_eq!(tables_only(&tsv), tables_only(&col));
    assert!(
        col.contains("colstore"),
        "columnar loss line names the store"
    );
}

#[test]
fn store_is_auto_detected_when_present() {
    // No explicit --format: the converted store must win over the TSVs.
    let auto = analyze::analyze_opts(dataset_dir(), &analyze::AnalyzeOptions::default()).unwrap();
    assert!(auto.contains("colstore"), "{auto}");
}

/// Copy the shared dataset (logs, trust material, CT corpus, and the
/// converted store) into a private directory a test may mutate.
fn copy_dataset(tag: &str) -> PathBuf {
    let src = dataset_dir();
    let dir = std::env::temp_dir().join(format!("certchain-colpar-{tag}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(dir.join("colstore")).unwrap();
    for entry in std::fs::read_dir(src).unwrap() {
        let entry = entry.unwrap();
        if entry.file_type().unwrap().is_file() {
            std::fs::copy(entry.path(), dir.join(entry.file_name())).unwrap();
        }
    }
    for entry in std::fs::read_dir(src.join("colstore")).unwrap() {
        let entry = entry.unwrap();
        std::fs::copy(entry.path(), dir.join("colstore").join(entry.file_name())).unwrap();
    }
    for sub in ["trust/roots", "trust/ccadb", "ct"] {
        std::fs::create_dir_all(dir.join(sub)).unwrap();
        for entry in std::fs::read_dir(src.join(sub)).unwrap() {
            let entry = entry.unwrap();
            std::fs::copy(entry.path(), dir.join(sub).join(entry.file_name())).unwrap();
        }
    }
    dir
}

#[test]
fn version_mismatch_fails_instead_of_falling_back() {
    // Copy the dataset so the shared one keeps its valid store.
    let dir = copy_dataset("ver");
    let manifest = dir.join("colstore/dataset.json");
    let text = std::fs::read_to_string(&manifest).unwrap();
    let bumped = text.replace("\"version\": 2", "\"version\": 99");
    assert_ne!(text, bumped, "manifest carries the version field");
    std::fs::write(&manifest, bumped).unwrap();

    // Auto-detection sees the manifest, reads a future version, and must
    // error — analyzing the TSVs anyway would hide a real format skew.
    let err = analyze::analyze_opts(&dir, &analyze::AnalyzeOptions::default()).unwrap_err();
    let msg = err.to_string();
    assert!(msg.contains("expected 1"), "{msg}");
    assert!(msg.contains("found 99"), "{msg}");

    // An explicit TSV override still works on the same directory.
    let report = analyze::analyze_opts(
        &dir,
        &analyze::AnalyzeOptions {
            format: Some(DatasetFormat::Tsv),
            ..analyze::AnalyzeOptions::default()
        },
    )
    .unwrap();
    assert!(report.contains("Chain census"));
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn columnar_metrics_are_thread_invariant_and_counted() {
    let dir = dataset_dir();
    let snapshot_for = |threads: usize, tag: &str| {
        let path = std::env::temp_dir().join(format!(
            "certchain-colpar-metrics-{tag}-{}.json",
            std::process::id()
        ));
        analyze::analyze_opts(
            dir,
            &analyze::AnalyzeOptions {
                threads,
                format: Some(DatasetFormat::Columnar),
                metrics_json: Some(path.clone()),
                ..analyze::AnalyzeOptions::default()
            },
        )
        .unwrap();
        let snap = certchain_obs::json::parse(&std::fs::read_to_string(&path).unwrap()).unwrap();
        let _ = std::fs::remove_file(&path);
        snap
    };
    let one = snapshot_for(1, "t1");
    let eight = snapshot_for(8, "t8");
    // The deterministic section must not depend on the worker count.
    assert_eq!(
        one.get("deterministic").map(JsonValue::to_pretty),
        eight.get("deterministic").map(JsonValue::to_pretty),
        "deterministic metrics diverged across thread counts"
    );
    let metric = |section: &str, name: &str| {
        one.get("deterministic")
            .and_then(|d| d.get(section))
            .and_then(|c| c.get(name))
            .and_then(JsonValue::as_u64)
            .unwrap_or_else(|| panic!("{section} entry {name} missing"))
    };
    let reader = certchain_colstore::DatasetReader::open(
        &certchain_cli::dataset::colstore_dir(dir),
        certchain_colstore::MapMode::Auto,
    )
    .unwrap();
    assert_eq!(
        metric("counters", "colstore.rows_read"),
        reader.ssl_rows() + reader.x509_rows()
    );
    assert!(metric("gauges", "colstore.bytes_mapped") > 0);
    assert_eq!(
        metric("gauges", "colstore.bytes_mapped"),
        reader.bytes_mapped()
    );
    // The TSV parse-stage counters stay format-stable (present, zeroed).
    assert_eq!(metric("counters", "records_dropped"), 0);
}

#[test]
fn convert_refuses_to_overwrite_without_force() {
    let dir = copy_dataset("force");
    let err = convert::convert(&dir).unwrap_err();
    assert!(err.to_string().contains("--force"), "{err}");
    let summary = convert::convert_opts(
        &dir,
        &convert::ConvertOptions {
            force: true,
            ..convert::ConvertOptions::default()
        },
    )
    .unwrap();
    assert!(summary.contains("ssl rows"), "{summary}");
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn compact_migrates_v1_stores_with_identical_reports() {
    use certchain_cli::compact;
    let dir = copy_dataset("compact");
    // Rewrite the store in the legacy v1 layout first.
    convert::convert_opts(
        &dir,
        &convert::ConvertOptions {
            force: true,
            store_version: Some(1),
            ..convert::ConvertOptions::default()
        },
    )
    .unwrap();
    let manifest = certchain_colstore::Manifest::load(&dir.join("colstore")).unwrap();
    assert_eq!(manifest.version, 1);
    let report_at = |threads: usize| {
        analyze::analyze_opts(
            &dir,
            &analyze::AnalyzeOptions {
                threads,
                json: true,
                format: Some(DatasetFormat::Columnar),
                ..analyze::AnalyzeOptions::default()
            },
        )
        .unwrap()
    };
    let v1_report = report_at(1);
    // Live migration: the v1 store analyzes without any re-conversion,
    // and `compact` then rewrites it as v2 with byte-identical output.
    let summary = compact::compact(&dir).unwrap();
    assert!(summary.contains("from v1 to v2"), "{summary}");
    let manifest = certchain_colstore::Manifest::load(&dir.join("colstore")).unwrap();
    assert_eq!(manifest.version, 2);
    for threads in [1usize, 2, 8] {
        assert_eq!(
            report_at(threads),
            v1_report,
            "diverged at {threads} threads"
        );
    }
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn filtered_analysis_skips_segments_and_matches_tsv() {
    let dir = copy_dataset("filter");
    // Small row bands so the store has many segments to skip.
    convert::convert_opts(
        &dir,
        &convert::ConvertOptions {
            force: true,
            segment_rows: Some(32),
            ..convert::ConvertOptions::default()
        },
    )
    .unwrap();
    // Pick the rarest SNI in the store (lexicographically smallest on
    // ties) — a predicate most row bands cannot match.
    let store = certchain_cli::dataset::colstore_dir(&dir);
    let reader =
        certchain_colstore::DatasetReader::open(&store, certchain_colstore::MapMode::Auto).unwrap();
    let mut freq: std::collections::BTreeMap<String, u64> = std::collections::BTreeMap::new();
    for rec in reader.ssl_iter().unwrap() {
        if let Some(sni) = rec.unwrap().server_name {
            *freq.entry(sni).or_default() += 1;
        }
    }
    let (sni, _) = freq
        .iter()
        .min_by_key(|(name, n)| (**n, (*name).clone()))
        .expect("dataset has SNI-bearing rows");
    let sni = sni.clone();
    drop(reader);

    let metrics_path = dir.join("filter-metrics.json");
    let filtered = |format: DatasetFormat, threads: usize| {
        analyze::analyze_opts(
            &dir,
            &analyze::AnalyzeOptions {
                threads,
                json: true,
                format: Some(format),
                filter_sni: Some(sni.clone()),
                metrics_json: Some(metrics_path.clone()),
                ..analyze::AnalyzeOptions::default()
            },
        )
        .unwrap()
    };
    let baseline = filtered(DatasetFormat::Tsv, 1);
    let unfiltered = analyze_with(DatasetFormat::Tsv, 1, true);
    assert_ne!(baseline, unfiltered, "the filter must change the analysis");
    for threads in [1usize, 2, 8] {
        assert_eq!(
            filtered(DatasetFormat::Columnar, threads),
            baseline,
            "filtered columnar diverged at {threads} threads"
        );
    }
    // The last columnar run's metrics must show zone maps at work.
    let snap =
        certchain_obs::json::parse(&std::fs::read_to_string(&metrics_path).unwrap()).unwrap();
    let counter = |name: &str| {
        snap.get("deterministic")
            .and_then(|d| d.get("counters"))
            .and_then(|c| c.get(name))
            .and_then(JsonValue::as_u64)
            .unwrap_or_else(|| panic!("counter {name} missing"))
    };
    assert!(counter("colstore.segments_read") > 0);
    assert!(
        counter("colstore.segments_skipped") > 0,
        "a rare-SNI filter must skip at least one segment"
    );
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn compact_preserves_digests_byte_for_byte() {
    use certchain_cli::compact;
    let dir = copy_dataset("digests");
    let store = certchain_cli::dataset::colstore_dir(&dir);
    let manifest = certchain_colstore::Manifest::load(&store).unwrap();
    let before = manifest
        .category_digests
        .clone()
        .expect("convert with trust material digests the store");
    // Byte-for-byte: compare the digests' canonical JSON, not just the
    // parsed counts.
    let digest_json = |d: &[certchain_colstore::CategoryDigest]| {
        certchain_obs::json::JsonValue::Arr(d.iter().map(|d| d.to_json()).collect()).to_pretty()
    };
    let summary = compact::compact(&dir).unwrap();
    assert!(summary.contains("already v2"), "{summary}");
    let manifest = certchain_colstore::Manifest::load(&store).unwrap();
    let after = manifest
        .category_digests
        .expect("recompaction recomputes digests");
    assert_eq!(digest_json(&before), digest_json(&after));
    let _ = std::fs::remove_dir_all(&dir);
}

/// Shared body for the category-filter parity tests: analyze `dir` with
/// `--filter-category non_public_only` in TSV and columnar form at
/// threads 1/2/8, demand byte-identity, and return the last columnar
/// run's metrics snapshot.
fn category_parity(dir: &std::path::Path) -> JsonValue {
    let set = certchain_colstore::CategorySet::parse_list("non_public_only").unwrap();
    let metrics_path = dir.join("cat-metrics.json");
    let filtered = |format: DatasetFormat, threads: usize| {
        analyze::analyze_opts(
            dir,
            &analyze::AnalyzeOptions {
                threads,
                json: true,
                format: Some(format),
                filter_category: Some(set),
                metrics_json: Some(metrics_path.clone()),
                ..analyze::AnalyzeOptions::default()
            },
        )
        .unwrap()
    };
    let baseline = filtered(DatasetFormat::Tsv, 1);
    for threads in [1usize, 2, 8] {
        assert_eq!(
            filtered(DatasetFormat::Columnar, threads),
            baseline,
            "category-filtered columnar diverged at {threads} threads"
        );
    }
    certchain_obs::json::parse(&std::fs::read_to_string(&metrics_path).unwrap()).unwrap()
}

fn counter_of(snap: &JsonValue, name: &str) -> u64 {
    snap.get("deterministic")
        .and_then(|d| d.get("counters"))
        .and_then(|c| c.get(name))
        .and_then(JsonValue::as_u64)
        .unwrap_or_else(|| panic!("counter {name} missing"))
}

#[test]
fn category_filter_skips_segments_and_matches_tsv() {
    let dir = copy_dataset("cat");
    // Small row bands so the digests have many segments to veto.
    convert::convert_opts(
        &dir,
        &convert::ConvertOptions {
            force: true,
            segment_rows: Some(32),
            ..convert::ConvertOptions::default()
        },
    )
    .unwrap();
    let snap = category_parity(&dir);
    assert!(
        counter_of(&snap, "colstore.segments_skipped_category") > 0,
        "digests must let a rare-category filter skip segments"
    );
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn digestless_stores_analyze_correctly_and_never_skip() {
    // A v1 store has no digests at all: category filtering must fall
    // back to per-row tests and still match the TSV oracle.
    let dir = copy_dataset("cat-v1");
    convert::convert_opts(
        &dir,
        &convert::ConvertOptions {
            force: true,
            store_version: Some(1),
            ..convert::ConvertOptions::default()
        },
    )
    .unwrap();
    category_parity(&dir);
    let _ = std::fs::remove_dir_all(&dir);

    // A digest-less v2 store (written by a pre-digest build, simulated
    // by streaming the store through a writer with no provider): the
    // fold must read every segment rather than guess.
    let dir = copy_dataset("cat-v2nodigest");
    let store = certchain_cli::dataset::colstore_dir(&dir);
    let rewrite = store.with_file_name("colstore.rewrite");
    {
        let reader =
            certchain_colstore::DatasetReader::open(&store, certchain_colstore::MapMode::Auto)
                .unwrap();
        let mut writer = certchain_colstore::DatasetWriter::create_with(
            &rewrite,
            certchain_colstore::WriterOptions {
                segment_rows: 32,
                ..certchain_colstore::WriterOptions::default()
            },
        )
        .unwrap();
        for rec in reader.x509_iter().unwrap() {
            writer.append_x509(&rec.unwrap()).unwrap();
        }
        for rec in reader.ssl_iter().unwrap() {
            writer.append_ssl(&rec.unwrap()).unwrap();
        }
        writer.finish().unwrap();
    }
    std::fs::remove_dir_all(&store).unwrap();
    std::fs::rename(&rewrite, &store).unwrap();
    assert!(
        certchain_colstore::Manifest::load(&store)
            .unwrap()
            .category_digests
            .is_none(),
        "rewrite without a provider must be digest-less"
    );
    let snap = category_parity(&dir);
    assert_eq!(
        counter_of(&snap, "colstore.segments_skipped_category"),
        0,
        "a digest-less store must never category-skip a segment"
    );
    let _ = std::fs::remove_dir_all(&dir);
}
