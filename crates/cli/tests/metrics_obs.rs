//! Observability round-trip: `analyze_opts` with a metrics path must
//! write a parseable `certchain-metrics/v1` snapshot whose loss
//! accounting balances, must not change the report bytes, and must tally
//! (not swallow, not die on) malformed Zeek rows.

use certchain_cli::{analyze, generate};
use certchain_obs::json::JsonValue;
use certchain_workload::CampusProfile;
use std::path::PathBuf;

/// A tiny dataset: this file is about the metrics plumbing, not volume.
fn tiny_profile() -> CampusProfile {
    CampusProfile {
        seed: 99,
        chain_scale: 0.0005,
        conn_scale: 0.00005,
        public_chains: 120,
        public_conns_per_chain: 2,
    }
}

fn fresh_dataset(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("certchain-obs-{tag}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    generate::generate(&dir, tiny_profile()).expect("generate succeeds");
    dir
}

#[test]
fn snapshot_parses_and_loss_accounting_balances() {
    let dir = fresh_dataset("clean");
    let metrics_path = dir.join("metrics.json");
    let opts = analyze::AnalyzeOptions {
        metrics_json: Some(metrics_path.clone()),
        ..analyze::AnalyzeOptions::default()
    };
    let report = analyze::analyze_opts(&dir, &opts).unwrap();
    assert!(report.contains("Chain census"));
    assert!(report.contains("loss accounting:"), "{report}");

    let text = std::fs::read_to_string(&metrics_path).unwrap();
    let snap = certchain_obs::json::parse(&text).expect("snapshot is valid JSON");
    assert_eq!(
        snap.get("schema").and_then(JsonValue::as_str),
        Some("certchain-metrics/v1")
    );
    let counter = |name: &str| {
        snap.get("deterministic")
            .and_then(|d| d.get("counters"))
            .and_then(|c| c.get(name))
            .and_then(JsonValue::as_u64)
            .unwrap_or_else(|| panic!("counter {name} missing"))
    };
    assert_eq!(counter("records_dropped"), 0);
    assert_eq!(counter("zeek.ssl.malformed"), 0);
    // Loss accounting: every line is a record, a header line, or malformed.
    let header_lines = 8; // Zeek preamble + #close
    assert_eq!(
        counter("zeek.ssl.lines_read"),
        counter("zeek.ssl.records") + header_lines
    );
    assert_eq!(
        counter("pipeline.ssl_records"),
        counter("zeek.ssl.records"),
        "every parsed record reached the pipeline"
    );
    // Timing is present but segregated from the deterministic section.
    assert!(snap.get("timing").and_then(|t| t.get("stages")).is_some());
    assert!(snap
        .get("deterministic")
        .and_then(|d| d.get("histograms"))
        .and_then(|h| h.get("pipeline.chain_length"))
        .is_some());
}

#[test]
fn report_bytes_are_identical_with_metrics_on_or_off() {
    let dir = fresh_dataset("bytes");
    let without = analyze::analyze_opts(&dir, &analyze::AnalyzeOptions::default()).unwrap();
    let with = analyze::analyze_opts(
        &dir,
        &analyze::AnalyzeOptions {
            metrics_json: Some(dir.join("metrics.json")),
            verbose: true,
            ..analyze::AnalyzeOptions::default()
        },
    )
    .unwrap();
    assert_eq!(without, with, "metrics/verbose changed the report bytes");
}

#[test]
fn malformed_rows_are_tallied_not_fatal() {
    let dir = fresh_dataset("malformed");
    // Corrupt one data row: a non-boolean `established` field fails the
    // parser but must only be tallied in permissive (CLI) mode.
    let ssl_path = dir.join("ssl.log");
    let log = std::fs::read_to_string(&ssl_path).unwrap();
    let mut corrupted = false;
    let patched: Vec<String> = log
        .lines()
        .map(|l| {
            if !corrupted && !l.starts_with('#') {
                corrupted = true;
                let mut fields: Vec<&str> = l.split('\t').collect();
                let established = fields.len() - 2; // last column is cert_chain_fps
                fields[established] = "maybe";
                fields.join("\t")
            } else {
                l.to_string()
            }
        })
        .collect();
    assert!(corrupted, "found a data row to corrupt");
    std::fs::write(&ssl_path, patched.join("\n") + "\n").unwrap();

    let metrics_path = dir.join("metrics.json");
    let opts = analyze::AnalyzeOptions {
        metrics_json: Some(metrics_path.clone()),
        ..analyze::AnalyzeOptions::default()
    };
    let report = analyze::analyze_opts(&dir, &opts).unwrap();
    assert!(report.contains("(1 malformed)"), "{report}");

    let snap =
        certchain_obs::json::parse(&std::fs::read_to_string(&metrics_path).unwrap()).unwrap();
    let counters = snap
        .get("deterministic")
        .and_then(|d| d.get("counters"))
        .expect("counters present");
    let counter = |name: &str| counters.get(name).and_then(JsonValue::as_u64);
    assert_eq!(counter("records_dropped"), Some(1));
    assert_eq!(counter("zeek.ssl.malformed"), Some(1));
    assert_eq!(counter("zeek.ssl.malformed.bad established"), Some(1));

    // The strict library path still refuses the corrupted log.
    assert!(analyze::run_pipeline(&dir).is_err());
}
