//! CLI round-trip: generate a dataset on disk, analyze it back, and
//! validate the sample chain — all through the library entry points the
//! binary calls.

use certchain_chainlab::ChainCategoryLabel;
use certchain_cli::{analyze, dataset, generate, validate};
use certchain_workload::CampusProfile;
use std::path::PathBuf;

fn dataset_dir() -> &'static PathBuf {
    static CELL: std::sync::OnceLock<PathBuf> = std::sync::OnceLock::new();
    CELL.get_or_init(|| {
        let dir = std::env::temp_dir().join(format!("certchain-cli-rt-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        // A tiny profile: the round trip is about formats, not volume.
        let profile = CampusProfile {
            seed: 99,
            chain_scale: 0.0005,
            conn_scale: 0.00005,
            public_chains: 120,
            public_conns_per_chain: 2,
        };
        generate::generate(&dir, profile).expect("generate succeeds");
        dir
    })
}

#[test]
fn dataset_layout_is_complete() {
    let dir = dataset_dir();
    for file in ["ssl.log", "x509.log", "crosssign.tsv", "sample-chain.pem"] {
        assert!(dir.join(file).is_file(), "{file} missing");
    }
    let roots = dataset::read_pem_dir(&dir.join("trust/roots")).unwrap();
    assert!(roots.len() >= 8, "all public roots exported");
    let icas = dataset::read_pem_dir(&dir.join("trust/ccadb")).unwrap();
    assert!(!icas.is_empty(), "CCADB intermediates exported");
    let ct = dataset::read_pem_dir(&dir.join("ct")).unwrap();
    assert!(!ct.is_empty(), "CT corpus exported");
}

#[test]
fn analyze_recovers_the_structure_from_disk() {
    let dir = dataset_dir();
    let (analysis, trust) = analyze::run_pipeline(dir).unwrap();
    assert_eq!(analysis.unresolvable_records, 0);
    assert_eq!(analysis.chains_in(ChainCategoryLabel::Hybrid).count(), 321);
    assert_eq!(analysis.interception_entities.len(), 80);
    assert!(!trust.ccadb().is_empty());
    // The rendered report mentions the census and hybrid taxonomy.
    let report = analyze::analyze(dir).unwrap();
    assert!(report.contains("Chain census"));
    assert!(report.contains("No complete matched path"));
}

#[test]
fn validate_sample_chain_diverges() {
    let dir = dataset_dir();
    let trust = dataset::load_trust(dir).unwrap();
    let out = validate::validate(&dir.join("sample-chain.pem"), Some(&trust), None).unwrap();
    // The exported sample is a contains-path chain: field methods flag the
    // unnecessary certificate, browser accepts, strict rejects.
    assert!(out.contains("BROKEN"), "{out}");
    assert!(out.contains("browser (path building) : VALID"), "{out}");
    assert!(out.contains("strict (presented chain): REJECTED"), "{out}");
}

#[test]
fn analyze_errors_are_structured() {
    let missing = std::env::temp_dir().join("certchain-cli-nonexistent");
    let err = analyze::analyze(&missing).unwrap_err();
    assert!(err.to_string().contains("ssl.log"), "{err}");
}
