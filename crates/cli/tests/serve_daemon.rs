//! `certchain serve` end to end: spool-split a generated dataset, drain
//! it in multiple sessions with restarts, and compare against batch
//! `analyze` — plus the HTTP surface and the compact leftover recovery.

use certchain_cli::{analyze, compact, convert, dataset, generate, serve};
use certchain_workload::CampusProfile;
use std::io::{Read, Write};
use std::net::TcpStream;
use std::path::{Path, PathBuf};

fn dataset_dir() -> &'static PathBuf {
    static CELL: std::sync::OnceLock<PathBuf> = std::sync::OnceLock::new();
    CELL.get_or_init(|| {
        let dir = std::env::temp_dir().join(format!("certchain-serve-ds-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        let profile = CampusProfile {
            seed: 77,
            chain_scale: 0.0005,
            conn_scale: 0.00005,
            public_chains: 120,
            public_conns_per_chain: 2,
        };
        generate::generate(&dir, profile).expect("generate succeeds");
        dir
    })
}

/// Batch reference: `analyze` output with its final loss-accounting line
/// stripped (serve's report has no parse-loss line — losses live in
/// `/status` instead).
fn batch_tables(threads: usize) -> String {
    let full = analyze::analyze_with(dataset_dir(), threads).expect("batch analyze");
    let body = full.trim_end_matches('\n');
    let cut = body.rfind('\n').expect("multi-line report");
    assert!(
        body[cut..].contains("loss accounting"),
        "expected the loss line last"
    );
    full[..cut + 1].to_string()
}

fn fresh(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("certchain-serve-{tag}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

fn drain(spool: &Path, checkpoint: &Path, threads: usize) -> String {
    serve::serve(
        dataset_dir(),
        spool,
        checkpoint,
        &serve::ServeOptions {
            threads,
            drain_once: true,
            ..serve::ServeOptions::default()
        },
    )
    .expect("serve drain")
}

#[test]
fn drained_spool_sessions_with_restart_match_batch_analyze() {
    let reference = batch_tables(1);
    for threads in [1usize, 2, 8] {
        let spool = fresh(&format!("spool-{threads}"));
        let hidden = fresh(&format!("hidden-{threads}"));
        let checkpoint = fresh(&format!("ckpt-{threads}"));
        let summary = serve::spool_split(dataset_dir(), &spool, 4).expect("spool-split");
        assert!(summary.contains("ssl.2024-09-01-00.log"));

        // Session 1 sees only part of the spool: hide the later ssl
        // rotations (x509 all present — order must not matter anyway).
        std::fs::create_dir_all(&hidden).unwrap();
        for name in ["ssl.2024-09-01-02.log", "ssl.2024-09-01-03.log"] {
            std::fs::rename(spool.join(name), hidden.join(name)).unwrap();
        }
        drain(&spool, &checkpoint, threads);

        // "Restart": a second drain process resumes from the checkpoint
        // after the remaining rotations arrive.
        for name in ["ssl.2024-09-01-02.log", "ssl.2024-09-01-03.log"] {
            std::fs::rename(hidden.join(name), spool.join(name)).unwrap();
        }
        let final_report = drain(&spool, &checkpoint, threads);
        assert_eq!(
            final_report, reference,
            "threads={threads}: drained serve diverged from batch analyze"
        );

        // A third drain with nothing new must not change the report and
        // must not mint a new checkpoint generation.
        let gens_before = list_gens(&checkpoint);
        let idle_report = drain(&spool, &checkpoint, threads);
        assert_eq!(idle_report, reference);
        assert_eq!(
            list_gens(&checkpoint),
            gens_before,
            "idle drain re-checkpointed"
        );

        for dir in [&spool, &hidden, &checkpoint] {
            let _ = std::fs::remove_dir_all(dir);
        }
    }
}

fn list_gens(checkpoint: &Path) -> Vec<String> {
    let mut gens: Vec<String> = std::fs::read_dir(checkpoint)
        .map(|rd| {
            rd.filter_map(|e| e.ok())
                .map(|e| e.file_name().to_string_lossy().into_owned())
                .collect()
        })
        .unwrap_or_default();
    gens.sort();
    gens
}

#[test]
fn unrecognized_and_compressed_spool_entries_are_skipped() {
    let spool = fresh("spool-skip");
    let checkpoint = fresh("ckpt-skip");
    serve::spool_split(dataset_dir(), &spool, 2).expect("spool-split");
    std::fs::write(spool.join("conn.2024-09-01-00.log"), "not a tls log\n").unwrap();
    std::fs::write(spool.join("README.txt"), "ignore me\n").unwrap();
    std::fs::write(
        spool.join("ssl.2024-09-01-09.log.gz"),
        b"\x1f\x8b/not-really",
    )
    .unwrap();
    let report = drain(&spool, &checkpoint, 2);
    assert_eq!(
        report,
        batch_tables(1),
        "skips must not perturb the analysis"
    );
    for dir in [&spool, &checkpoint] {
        let _ = std::fs::remove_dir_all(dir);
    }
}

fn http_get(addr: &str, path: &str) -> (String, String) {
    http_get_with(addr, path, &[])
}

fn http_get_with(addr: &str, path: &str, headers: &[(&str, &str)]) -> (String, String) {
    let mut conn = TcpStream::connect(addr.trim()).expect("connect");
    let mut req = format!("GET {path} HTTP/1.1\r\nHost: serve\r\n");
    for (name, value) in headers {
        req.push_str(&format!("{name}: {value}\r\n"));
    }
    req.push_str("\r\n");
    conn.write_all(req.as_bytes()).expect("send");
    let mut text = String::new();
    conn.read_to_string(&mut text).expect("read");
    let status = text.lines().next().unwrap_or("").to_string();
    let body = text
        .split_once("\r\n\r\n")
        .map(|(_, b)| b.to_string())
        .unwrap_or_default();
    (status, body)
}

/// The CI shape check in Rust: every non-comment non-blank Prometheus
/// line is `name[{labels}] value` with a metric-charset name and a
/// numeric value.
fn assert_prometheus_shape(body: &str) {
    let mut samples = 0;
    for line in body.lines() {
        if line.is_empty() || line.starts_with('#') {
            continue;
        }
        let (series, value) = line.rsplit_once(' ').expect("line has a value");
        let name = series.split('{').next().unwrap_or("");
        assert!(
            !name.is_empty()
                && name
                    .chars()
                    .next()
                    .is_some_and(|c| c.is_ascii_lowercase() || c == '_' || c == ':')
                && name
                    .chars()
                    .all(|c| c.is_ascii_lowercase() || c.is_ascii_digit() || "_:.".contains(c)),
            "bad metric name in line {line:?}"
        );
        assert!(
            value.parse::<f64>().is_ok(),
            "bad sample value in line {line:?}"
        );
        samples += 1;
    }
    assert!(samples > 10, "suspiciously few Prometheus samples");
}

/// Pull the pretty-printed deterministic section out of a
/// `certchain-metrics/v1` document.
fn deterministic_section(metrics_body: &str) -> String {
    let doc = certchain_obs::json::parse(metrics_body).expect("metrics parses as JSON");
    assert_eq!(
        doc.get("schema").and_then(|v| v.as_str()),
        Some("certchain-metrics/v1"),
        "schema tag"
    );
    assert!(doc.get("timing").is_some(), "timing section present");
    doc.get("deterministic")
        .expect("deterministic section")
        .to_pretty()
}

#[test]
fn http_endpoints_expose_report_and_thread_invariant_metrics() {
    let mut sections = Vec::new();
    for threads in [1usize, 2] {
        let spool = fresh(&format!("spool-http-{threads}"));
        let checkpoint = fresh(&format!("ckpt-http-{threads}"));
        serve::spool_split(dataset_dir(), &spool, 2).expect("spool-split");
        let addr_file = fresh(&format!("addr-{threads}")).with_extension("txt");
        let opts = serve::ServeOptions {
            threads,
            listen: Some("127.0.0.1:0".to_string()),
            drain_once: false,
            interval_ms: 100,
            listen_addr_file: Some(addr_file.clone()),
            // Large enough that idle-cycle spans between our polls never
            // evict the first (folding) cycle we assert on below.
            trace_capacity: 8192,
            ..serve::ServeOptions::default()
        };
        let spool_c = spool.clone();
        let ckpt_c = checkpoint.clone();
        // Watch mode blocks forever; park it on a thread the harness
        // will tear down with the process.
        std::thread::spawn(move || {
            let _ = serve::serve(dataset_dir(), &spool_c, &ckpt_c, &opts);
        });
        let mut tries = 0;
        let addr = loop {
            if let Ok(text) = std::fs::read_to_string(&addr_file) {
                if text.contains(':') {
                    break text;
                }
            }
            tries += 1;
            assert!(tries < 1500, "serve never published its address");
            std::thread::sleep(std::time::Duration::from_millis(20));
        };
        // Wait until the first publish covered the whole spool.
        let mut tries = 0;
        loop {
            let (status, body) = http_get(&addr, "/status");
            assert_eq!(status, "HTTP/1.1 200 OK");
            let doc = certchain_obs::json::parse(&body).expect("status JSON");
            assert_eq!(
                doc.get("schema").and_then(|v| v.as_str()),
                Some("certchain-serve/v1")
            );
            let folded = doc
                .get("folded_files")
                .and_then(|v| match v {
                    certchain_obs::json::JsonValue::Arr(a) => Some(a.len()),
                    _ => None,
                })
                .unwrap_or(0);
            if folded >= 4 {
                break;
            }
            tries += 1;
            assert!(tries < 600, "serve never folded the full spool");
            std::thread::sleep(std::time::Duration::from_millis(50));
        }
        let (status, report) = http_get(&addr, "/report");
        assert_eq!(status, "HTTP/1.1 200 OK");
        assert_eq!(report, batch_tables(1), "served report vs batch tables");
        let (status, report_json) = http_get(&addr, "/report.json");
        assert_eq!(status, "HTTP/1.1 200 OK");
        assert!(certchain_obs::json::parse(&report_json).is_ok());

        // Content negotiation: query param and Accept header both reach
        // the JSON body; an unknown format gets 406 plus a hint.
        let (status, by_query) = http_get(&addr, "/report?format=json");
        assert_eq!(status, "HTTP/1.1 200 OK");
        assert_eq!(by_query, report_json, "?format=json vs /report.json");
        let (status, by_accept) =
            http_get_with(&addr, "/report", &[("Accept", "application/json")]);
        assert_eq!(status, "HTTP/1.1 200 OK");
        assert_eq!(by_accept, report_json, "Accept negotiation vs /report.json");
        let (status, hint) = http_get(&addr, "/report?format=yaml");
        assert_eq!(status, "HTTP/1.1 406 Not Acceptable");
        assert!(hint.contains("format=json"), "406 hint names the formats");

        let (status, metrics) = http_get(&addr, "/metrics");
        assert_eq!(status, "HTTP/1.1 200 OK");
        sections.push(deterministic_section(&metrics));

        // Prometheus exposition, by query param and by Accept header.
        let (status, prom) = http_get(&addr, "/metrics?format=prometheus");
        assert_eq!(status, "HTTP/1.1 200 OK");
        assert_prometheus_shape(&prom);
        assert!(
            prom.contains("http_requests{"),
            "per-request accounting missing from Prometheus output"
        );
        let (status, prom2) = http_get_with(&addr, "/metrics", &[("Accept", "text/plain")]);
        assert_eq!(status, "HTTP/1.1 200 OK");
        assert_prometheus_shape(&prom2);
        let (status, _) = http_get(&addr, "/metrics?format=xml");
        assert_eq!(status, "HTTP/1.1 406 Not Acceptable");

        // The trace journal holds at least one complete fold cycle:
        // serve.cycle span with scan/fold/checkpoint/publish children.
        let (status, trace) = http_get(&addr, "/trace.json");
        assert_eq!(status, "HTTP/1.1 200 OK");
        assert_complete_fold_cycle(&trace);

        // Cycles are completing: the watchdog reports healthy.
        let (status, health) = http_get(&addr, "/healthz");
        assert_eq!(status, "HTTP/1.1 200 OK");
        let doc = certchain_obs::json::parse(&health).expect("healthz JSON");
        assert_eq!(
            doc.get("schema").and_then(|v| v.as_str()),
            Some("certchain-healthz/v1")
        );
        assert_eq!(doc.get("status").and_then(|v| v.as_str()), Some("ok"));

        let (status, _) = http_get(&addr, "/nope");
        assert_eq!(status, "HTTP/1.1 404 Not Found");
        let _ = std::fs::remove_file(&addr_file);
        // The serve thread keeps running; its spool/checkpoint dirs are
        // cleaned with the temp dir by the OS. Leave them.
    }
    assert_eq!(
        sections[0], sections[1],
        "deterministic metrics section must be thread-count invariant"
    );
}

/// Assert a `/trace.json` document contains one *complete* fold cycle:
/// a `serve.cycle` span that both started and ended, with `serve.scan`,
/// `serve.fold`, `checkpoint.commit`, and `serve.publish` children.
fn assert_complete_fold_cycle(trace_body: &str) {
    use certchain_obs::json::JsonValue;
    let doc = certchain_obs::json::parse(trace_body).expect("trace parses as JSON");
    assert_eq!(
        doc.get("schema").and_then(|v| v.as_str()),
        Some("certchain-trace/v1"),
        "trace schema tag"
    );
    let events = doc
        .get("events")
        .and_then(JsonValue::as_arr)
        .expect("events array");
    let field = |ev: &JsonValue, key: &str| ev.get(key).and_then(JsonValue::as_u64);
    let name_of = |ev: &JsonValue| ev.get("name").and_then(JsonValue::as_str).map(String::from);
    let kind_of = |ev: &JsonValue| ev.get("kind").and_then(JsonValue::as_str).map(String::from);

    // A folding cycle's span_end carries files_folded > 0.
    let cycle_id = events
        .iter()
        .find(|ev| {
            kind_of(ev).as_deref() == Some("span_end")
                && name_of(ev).as_deref() == Some("serve.cycle")
                && ev
                    .get("attrs")
                    .and_then(|a| a.get("files_folded"))
                    .and_then(JsonValue::as_str)
                    .and_then(|v| v.parse::<u64>().ok())
                    .is_some_and(|n| n > 0)
        })
        .and_then(|ev| field(ev, "span"))
        .expect("a completed serve.cycle that folded files");
    assert!(
        events
            .iter()
            .any(|ev| kind_of(ev).as_deref() == Some("span_start")
                && field(ev, "span") == Some(cycle_id)),
        "cycle {cycle_id} has no span_start — journal truncated the tree"
    );
    for child in [
        "serve.scan",
        "serve.fold",
        "checkpoint.commit",
        "serve.publish",
    ] {
        assert!(
            events
                .iter()
                .any(|ev| name_of(ev).as_deref() == Some(child)
                    && field(ev, "parent") == Some(cycle_id)),
            "cycle {cycle_id} lacks a {child} child span"
        );
    }
}

/// The stall watchdog end to end: `/healthz` answers 200 while cycles
/// complete, flips to 503 when a fold blocks (a spool FIFO with no
/// writer), and recovers to 200 once the fold finishes.
#[cfg(unix)]
#[test]
fn healthz_flips_to_503_on_stall_and_recovers() {
    let spool = fresh("spool-stall");
    let checkpoint = fresh("ckpt-stall");
    serve::spool_split(dataset_dir(), &spool, 2).expect("spool-split");
    // Grab a real rotated-log preamble so the FIFO's eventual content
    // parses cleanly (header only, zero records).
    let header: String = std::fs::read_to_string(spool.join("ssl.2024-09-01-00.log"))
        .expect("read split part")
        .lines()
        .filter(|l| l.starts_with('#'))
        .map(|l| format!("{l}\n"))
        .collect();

    let addr_file = fresh("addr-stall").with_extension("txt");
    let opts = serve::ServeOptions {
        threads: 1,
        listen: Some("127.0.0.1:0".to_string()),
        drain_once: false,
        interval_ms: 50,
        listen_addr_file: Some(addr_file.clone()),
        watchdog_cycles: 3, // stall window: 150 ms
        ..serve::ServeOptions::default()
    };
    let spool_c = spool.clone();
    let ckpt_c = checkpoint.clone();
    std::thread::spawn(move || {
        let _ = serve::serve(dataset_dir(), &spool_c, &ckpt_c, &opts);
    });
    let mut tries = 0;
    let addr = loop {
        if let Ok(text) = std::fs::read_to_string(&addr_file) {
            if text.contains(':') {
                break text;
            }
        }
        tries += 1;
        assert!(tries < 1500, "serve never published its address");
        std::thread::sleep(std::time::Duration::from_millis(20));
    };

    let poll_status = |want: &str, why: &str| {
        let mut tries = 0;
        loop {
            let (status, _) = http_get(&addr, "/healthz");
            if status == want {
                break;
            }
            tries += 1;
            assert!(
                tries < 400,
                "{why}: /healthz stuck at {status}, want {want}"
            );
            std::thread::sleep(std::time::Duration::from_millis(50));
        }
    };
    poll_status("HTTP/1.1 200 OK", "initial cycles");

    // A recognizable spool entry that is a FIFO with no writer: the
    // fold's open() blocks, no cycle completes, the watchdog fires.
    let fifo = spool.join("ssl.2024-09-01-09.log");
    let made = std::process::Command::new("mkfifo")
        .arg(&fifo)
        .status()
        .map(|s| s.success())
        .unwrap_or(false);
    if !made {
        eprintln!("skipping stall test: mkfifo unavailable");
        return;
    }
    poll_status("HTTP/1.1 503 Service Unavailable", "stalled fold");

    // Feed the FIFO its header and close: the blocked open() returns,
    // the fold sees zero records, the cycle completes, health recovers.
    std::io::Write::write_all(
        &mut std::fs::OpenOptions::new()
            .write(true)
            .open(&fifo)
            .expect("open fifo for writing"),
        header.as_bytes(),
    )
    .expect("write fifo");
    poll_status("HTTP/1.1 200 OK", "recovery after stall");

    let _ = std::fs::remove_file(&addr_file);
    for dir in [&spool, &checkpoint] {
        let _ = std::fs::remove_dir_all(dir);
    }
}

#[test]
fn compact_recovers_from_interrupted_leftovers() {
    // A private dataset copy: this test rewrites the store.
    let dir = fresh("compact-ds");
    let profile = CampusProfile {
        seed: 78,
        chain_scale: 0.0005,
        conn_scale: 0.00005,
        public_chains: 60,
        public_conns_per_chain: 2,
    };
    generate::generate(&dir, profile).expect("generate");
    convert::convert(&dir).expect("convert");
    let store = dataset::colstore_dir(&dir);

    // Leftover temp dir from a compaction killed mid-write: cleaned up
    // with a notice, then the compaction proceeds.
    let tmp = store.with_file_name("colstore.tmp-compact");
    std::fs::create_dir_all(&tmp).unwrap();
    std::fs::write(tmp.join("partial.bin"), b"junk").unwrap();
    let out = compact::compact(&dir).expect("compact after leftover tmp");
    assert!(
        out.contains("notice: removed leftover"),
        "missing notice: {out}"
    );
    assert!(
        out.contains("compacted"),
        "compaction summary missing: {out}"
    );
    assert!(!tmp.exists());

    // Crash inside the swap window: the store was moved aside but the
    // new one never installed. compact restores it and carries on.
    let old = store.with_file_name("colstore.pre-compact");
    std::fs::rename(&store, &old).unwrap();
    let out = compact::compact(&dir).expect("compact after interrupted swap");
    assert!(out.contains("notice: restored"), "missing notice: {out}");
    assert!(store.exists() && !old.exists());

    // Swap completed but the superseded store lingered: dropped.
    std::fs::create_dir_all(&old).unwrap();
    std::fs::write(old.join("stale.bin"), b"junk").unwrap();
    let out = compact::compact(&dir).expect("compact after stale pre-compact");
    assert!(
        out.contains("notice: removed superseded"),
        "missing notice: {out}"
    );
    assert!(!old.exists());

    // The recovered store still analyzes identically to the TSV logs.
    let columnar = analyze::analyze_opts(
        &dir,
        &analyze::AnalyzeOptions {
            threads: 2,
            format: Some(dataset::DatasetFormat::Columnar),
            ..analyze::AnalyzeOptions::default()
        },
    )
    .expect("columnar analyze");
    assert!(columnar.contains("Chain census"));
    let _ = std::fs::remove_dir_all(&dir);
}
