//! Root-program stores.

use certchain_x509::{Certificate, DistinguishedName, Fingerprint};
use std::collections::HashMap;
use std::sync::Arc;

/// The root programs the paper's classification consults.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum RootProgram {
    /// Mozilla NSS — what Zeek itself validates against.
    Mozilla,
    /// Apple's trusted root list.
    Apple,
    /// Microsoft's Trusted Root Program.
    Microsoft,
    /// Google (participates in CCADB; modelled for CCADB chaining rules).
    Google,
    /// Oracle (participates in CCADB).
    Oracle,
}

impl RootProgram {
    /// The programs whose root stores browsers ship (used directly for
    /// classification).
    pub fn major_web_pki() -> [RootProgram; 3] {
        [
            RootProgram::Mozilla,
            RootProgram::Apple,
            RootProgram::Microsoft,
        ]
    }

    /// All CCADB-participating programs.
    pub fn ccadb_participants() -> [RootProgram; 5] {
        [
            RootProgram::Mozilla,
            RootProgram::Apple,
            RootProgram::Microsoft,
            RootProgram::Google,
            RootProgram::Oracle,
        ]
    }
}

impl std::fmt::Display for RootProgram {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let name = match self {
            RootProgram::Mozilla => "Mozilla",
            RootProgram::Apple => "Apple",
            RootProgram::Microsoft => "Microsoft",
            RootProgram::Google => "Google",
            RootProgram::Oracle => "Oracle",
        };
        write!(f, "{name}")
    }
}

/// One program's root store: a set of trusted root certificates, indexed
/// by fingerprint and by subject DN.
#[derive(Debug, Default, Clone)]
pub struct RootStore {
    by_fingerprint: HashMap<Fingerprint, Arc<Certificate>>,
    by_subject: HashMap<DistinguishedName, Vec<Arc<Certificate>>>,
}

impl RootStore {
    /// Empty store.
    pub fn new() -> RootStore {
        RootStore::default()
    }

    /// Add a root certificate. Idempotent by fingerprint.
    pub fn add(&mut self, cert: Arc<Certificate>) {
        if self
            .by_fingerprint
            .insert(cert.fingerprint(), Arc::clone(&cert))
            .is_none()
        {
            self.by_subject
                .entry(cert.subject.clone())
                .or_default()
                .push(cert);
        }
    }

    /// Whether this exact certificate is a trusted root.
    pub fn contains(&self, fingerprint: &Fingerprint) -> bool {
        self.by_fingerprint.contains_key(fingerprint)
    }

    /// Roots whose subject matches `dn` (multiple roots can share a DN
    /// across key rollovers).
    pub fn roots_for_subject(&self, dn: &DistinguishedName) -> &[Arc<Certificate>] {
        self.by_subject.get(dn).map(Vec::as_slice).unwrap_or(&[])
    }

    /// Whether any trusted root carries this subject DN.
    pub fn has_subject(&self, dn: &DistinguishedName) -> bool {
        self.by_subject.contains_key(dn)
    }

    /// Number of roots.
    pub fn len(&self) -> usize {
        self.by_fingerprint.len()
    }

    /// Whether the store is empty.
    pub fn is_empty(&self) -> bool {
        self.by_fingerprint.is_empty()
    }

    /// Iterate over all roots.
    pub fn iter(&self) -> impl Iterator<Item = &Arc<Certificate>> {
        self.by_fingerprint.values()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use certchain_asn1::Asn1Time;
    use certchain_cryptosim::KeyPair;
    use certchain_x509::{CertificateBuilder, Validity};

    fn root(name: &str, seed: u64) -> Arc<Certificate> {
        let kp = KeyPair::derive(seed, name);
        let dn = DistinguishedName::cn_o(name, "Root Org");
        CertificateBuilder::new()
            .issuer(dn.clone())
            .subject(dn)
            .validity(Validity::days_from(
                Asn1Time::from_ymd_hms(2015, 1, 1, 0, 0, 0).unwrap(),
                3650 * 2,
            ))
            .ca(None)
            .sign(&kp)
            .into_arc()
    }

    #[test]
    fn add_and_lookup() {
        let mut store = RootStore::new();
        let r = root("Test Root A", 1);
        store.add(Arc::clone(&r));
        assert!(store.contains(&r.fingerprint()));
        assert!(store.has_subject(&r.subject));
        assert_eq!(store.roots_for_subject(&r.subject).len(), 1);
        assert_eq!(store.len(), 1);
    }

    #[test]
    fn add_is_idempotent() {
        let mut store = RootStore::new();
        let r = root("Test Root A", 1);
        store.add(Arc::clone(&r));
        store.add(Arc::clone(&r));
        assert_eq!(store.len(), 1);
        assert_eq!(store.roots_for_subject(&r.subject).len(), 1);
    }

    #[test]
    fn same_dn_different_keys_coexist() {
        // Key rollover: same subject DN, two root certs.
        let mut store = RootStore::new();
        let a = root("Rollover Root", 1);
        let b = root("Rollover Root", 2);
        assert_ne!(a.fingerprint(), b.fingerprint());
        store.add(Arc::clone(&a));
        store.add(Arc::clone(&b));
        assert_eq!(store.len(), 2);
        assert_eq!(store.roots_for_subject(&a.subject).len(), 2);
    }

    #[test]
    fn missing_lookups() {
        let store = RootStore::new();
        let r = root("X", 9);
        assert!(!store.contains(&r.fingerprint()));
        assert!(!store.has_subject(&r.subject));
        assert!(store.roots_for_subject(&r.subject).is_empty());
        assert!(store.is_empty());
    }

    #[test]
    fn program_sets() {
        assert_eq!(RootProgram::major_web_pki().len(), 3);
        assert_eq!(RootProgram::ccadb_participants().len(), 5);
        assert_eq!(RootProgram::Mozilla.to_string(), "Mozilla");
    }
}
