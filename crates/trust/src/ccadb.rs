//! A model of the Common CA Database (CCADB).
//!
//! CCADB lists root *and intermediate* certificate data contributed by
//! participating root programs. Per the paper (§3.2.1), an intermediate is
//! included only when it (a) chains to a trusted root of a participating
//! program and (b) is either technically constrained or subject to public
//! audits. Both rules are enforced at insertion time here.

use crate::store::{RootProgram, RootStore};
use certchain_x509::{Certificate, DistinguishedName, Fingerprint};
use std::collections::{BTreeMap, HashMap};
use std::sync::Arc;

/// Why an intermediate was refused.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum CcadbRejection {
    /// No participating program has a root whose subject matches the
    /// intermediate's issuer.
    NoParticipatingRoot,
    /// A root with the right DN exists, but the signature does not verify
    /// under any of its keys.
    SignatureInvalid,
    /// Neither technically constrained nor audited.
    NotConstrainedOrAudited,
    /// Not a CA certificate (basicConstraints CA bit absent or false).
    NotACa,
}

/// One CCADB intermediate record.
#[derive(Debug, Clone)]
pub struct CcadbEntry {
    /// The intermediate certificate.
    pub cert: Arc<Certificate>,
    /// Which participating program's root anchors it.
    pub anchored_by: RootProgram,
    /// Whether the entry is technically constrained.
    pub technically_constrained: bool,
    /// Whether the entry is covered by public audits.
    pub audited: bool,
}

/// The CCADB repository.
#[derive(Debug, Default)]
pub struct Ccadb {
    entries: HashMap<Fingerprint, CcadbEntry>,
    by_subject: HashMap<DistinguishedName, Vec<Fingerprint>>,
}

impl Ccadb {
    /// Empty repository.
    pub fn new() -> Ccadb {
        Ccadb::default()
    }

    /// Try to add an intermediate, enforcing the inclusion rules against
    /// the participating programs' stores.
    pub fn add_intermediate(
        &mut self,
        cert: Arc<Certificate>,
        stores: &BTreeMap<RootProgram, RootStore>,
        technically_constrained: bool,
        audited: bool,
    ) -> Result<(), CcadbRejection> {
        if !technically_constrained && !audited {
            return Err(CcadbRejection::NotConstrainedOrAudited);
        }
        if !cert.basic_constraints().map(|bc| bc.ca).unwrap_or(false) {
            return Err(CcadbRejection::NotACa);
        }
        let mut found_dn = false;
        let mut anchored_by = None;
        for program in RootProgram::ccadb_participants() {
            let Some(store) = stores.get(&program) else {
                continue;
            };
            let roots = store.roots_for_subject(&cert.issuer);
            if !roots.is_empty() {
                found_dn = true;
            }
            if roots
                .iter()
                .any(|root| cert.verify_signed_by(&root.public_key))
            {
                anchored_by = Some(program);
                break;
            }
        }
        // Chaining is transitive: an intermediate issued by an
        // already-listed intermediate inherits its anchor program.
        if anchored_by.is_none() {
            if let Some(parents) = self.by_subject.get(&cert.issuer) {
                found_dn = true;
                anchored_by = parents.iter().find_map(|fp| {
                    let entry = &self.entries[fp];
                    cert.verify_signed_by(&entry.cert.public_key)
                        .then_some(entry.anchored_by)
                });
            }
        }
        let anchored_by = match anchored_by {
            Some(p) => p,
            None if found_dn => return Err(CcadbRejection::SignatureInvalid),
            None => return Err(CcadbRejection::NoParticipatingRoot),
        };
        let entry = CcadbEntry {
            cert: Arc::clone(&cert),
            anchored_by,
            technically_constrained,
            audited,
        };
        if self.entries.insert(cert.fingerprint(), entry).is_none() {
            self.by_subject
                .entry(cert.subject.clone())
                .or_default()
                .push(cert.fingerprint());
        }
        Ok(())
    }

    /// Whether this exact certificate is listed.
    pub fn contains(&self, fingerprint: &Fingerprint) -> bool {
        self.entries.contains_key(fingerprint)
    }

    /// Whether any listed intermediate carries this subject DN.
    pub fn has_subject(&self, dn: &DistinguishedName) -> bool {
        self.by_subject.contains_key(dn)
    }

    /// Look up an entry.
    pub fn get(&self, fingerprint: &Fingerprint) -> Option<&CcadbEntry> {
        self.entries.get(fingerprint)
    }

    /// Iterate over all listed entries.
    pub fn iter(&self) -> impl Iterator<Item = &CcadbEntry> {
        self.entries.values()
    }

    /// Number of listed intermediates.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Whether the repository is empty.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use certchain_asn1::Asn1Time;
    use certchain_cryptosim::KeyPair;
    use certchain_x509::{CertificateBuilder, Validity};

    struct Fixture {
        stores: BTreeMap<RootProgram, RootStore>,
        root_kp: KeyPair,
        root_dn: DistinguishedName,
    }

    fn fixture() -> Fixture {
        let root_kp = KeyPair::derive(1, "ccadb:root");
        let root_dn = DistinguishedName::cn_o("CCADB Test Root", "Root Org");
        let root = CertificateBuilder::new()
            .issuer(root_dn.clone())
            .subject(root_dn.clone())
            .validity(long())
            .ca(None)
            .sign(&root_kp)
            .into_arc();
        let mut store = RootStore::new();
        store.add(root);
        let mut stores = BTreeMap::new();
        stores.insert(RootProgram::Mozilla, store);
        Fixture {
            stores,
            root_kp,
            root_dn,
        }
    }

    fn long() -> Validity {
        Validity::days_from(Asn1Time::from_ymd_hms(2015, 1, 1, 0, 0, 0).unwrap(), 7300)
    }

    fn intermediate(f: &Fixture, name: &str, signer: &KeyPair) -> Arc<Certificate> {
        let kp = KeyPair::derive(7, name);
        CertificateBuilder::new()
            .issuer(f.root_dn.clone())
            .subject(DistinguishedName::cn_o(name, "Intermediate Org"))
            .validity(long())
            .public_key(kp.public().clone())
            .ca(Some(0))
            .sign(signer)
            .into_arc()
    }

    #[test]
    fn accepts_audited_chained_intermediate() {
        let f = fixture();
        let mut ccadb = Ccadb::new();
        let ica = intermediate(&f, "Good ICA", &f.root_kp);
        ccadb
            .add_intermediate(Arc::clone(&ica), &f.stores, false, true)
            .unwrap();
        assert!(ccadb.contains(&ica.fingerprint()));
        assert!(ccadb.has_subject(&ica.subject));
        assert_eq!(
            ccadb.get(&ica.fingerprint()).unwrap().anchored_by,
            RootProgram::Mozilla
        );
        assert_eq!(ccadb.len(), 1);
    }

    #[test]
    fn rejects_unconstrained_unaudited() {
        let f = fixture();
        let mut ccadb = Ccadb::new();
        let ica = intermediate(&f, "Bad ICA", &f.root_kp);
        assert_eq!(
            ccadb.add_intermediate(ica, &f.stores, false, false),
            Err(CcadbRejection::NotConstrainedOrAudited)
        );
    }

    #[test]
    fn rejects_orphan_intermediate() {
        let f = fixture();
        let mut ccadb = Ccadb::new();
        let rogue_kp = KeyPair::derive(66, "rogue");
        let kp = KeyPair::derive(7, "Orphan ICA");
        let ica = CertificateBuilder::new()
            .issuer(DistinguishedName::cn("Nonexistent Root"))
            .subject(DistinguishedName::cn("Orphan ICA"))
            .validity(long())
            .public_key(kp.public().clone())
            .ca(None)
            .sign(&rogue_kp)
            .into_arc();
        assert_eq!(
            ccadb.add_intermediate(ica, &f.stores, true, true),
            Err(CcadbRejection::NoParticipatingRoot)
        );
    }

    #[test]
    fn rejects_forged_signature() {
        let f = fixture();
        let mut ccadb = Ccadb::new();
        // Right issuer DN, wrong signing key.
        let forger = KeyPair::derive(99, "forger");
        let ica = intermediate(&f, "Forged ICA", &forger);
        assert_eq!(
            ccadb.add_intermediate(ica, &f.stores, true, true),
            Err(CcadbRejection::SignatureInvalid)
        );
    }

    #[test]
    fn rejects_non_ca() {
        let f = fixture();
        let mut ccadb = Ccadb::new();
        let kp = KeyPair::derive(8, "leafish");
        let not_ca = CertificateBuilder::new()
            .issuer(f.root_dn.clone())
            .subject(DistinguishedName::cn("Not A CA"))
            .validity(long())
            .public_key(kp.public().clone())
            .leaf_for("x.org")
            .sign(&f.root_kp)
            .into_arc();
        assert_eq!(
            ccadb.add_intermediate(not_ca, &f.stores, true, true),
            Err(CcadbRejection::NotACa)
        );
    }

    #[test]
    fn technically_constrained_without_audit_is_enough() {
        let f = fixture();
        let mut ccadb = Ccadb::new();
        let ica = intermediate(&f, "Constrained ICA", &f.root_kp);
        ccadb.add_intermediate(ica, &f.stores, true, false).unwrap();
        assert_eq!(ccadb.len(), 1);
    }
}
