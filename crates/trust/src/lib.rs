#![forbid(unsafe_code)]
#![warn(missing_docs)]

//! Trust stores and issuer classification.
//!
//! Models the public databases the paper classifies against (§3.2.1):
//! the Mozilla NSS, Apple and Microsoft root programs plus the CCADB
//! intermediate repository. A certificate is *issued by a public-DB issuer*
//! when its issuer — as an intermediate or root certificate — is listed in
//! at least one of those databases; otherwise it is issued by a
//! *non-public-DB issuer* (including self-signed certificates absent from
//! all databases).

pub mod ccadb;
pub mod classify;
pub mod store;

pub use ccadb::{Ccadb, CcadbEntry, CcadbRejection};
pub use classify::{IssuerClass, TrustDb};
pub use store::{RootProgram, RootStore};
