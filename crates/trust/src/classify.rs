//! The paper's §3.2.1 certificate classification.

use crate::ccadb::Ccadb;
use crate::store::{RootProgram, RootStore};
use certchain_x509::{Certificate, DistinguishedName, Fingerprint};
use std::collections::BTreeMap;
use std::sync::Arc;

/// Classification of who issued a certificate.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum IssuerClass {
    /// The issuer (as an intermediate or root certificate) is listed in at
    /// least one major Web PKI root store or CCADB.
    PublicDb,
    /// The issuer appears in none of the public databases. Includes
    /// self-signed certificates absent from all databases.
    NonPublicDb,
}

/// Aggregated trust databases: the major root stores plus CCADB.
#[derive(Debug, Default)]
pub struct TrustDb {
    stores: BTreeMap<RootProgram, RootStore>,
    ccadb: Ccadb,
}

impl TrustDb {
    /// Empty database set.
    pub fn new() -> TrustDb {
        TrustDb::default()
    }

    /// Mutable access to one program's store (created on demand).
    pub fn store_mut(&mut self, program: RootProgram) -> &mut RootStore {
        self.stores.entry(program).or_default()
    }

    /// One program's store, if populated.
    pub fn store(&self, program: RootProgram) -> Option<&RootStore> {
        self.stores.get(&program)
    }

    /// All populated stores.
    pub fn stores(&self) -> &BTreeMap<RootProgram, RootStore> {
        &self.stores
    }

    /// The CCADB repository.
    pub fn ccadb(&self) -> &Ccadb {
        &self.ccadb
    }

    /// Add a root to every major Web PKI store at once (the common case for
    /// broadly trusted roots).
    pub fn add_root_everywhere(&mut self, root: Arc<Certificate>) {
        for program in RootProgram::major_web_pki() {
            self.store_mut(program).add(Arc::clone(&root));
        }
    }

    /// Register an audited intermediate in CCADB (panics if the inclusion
    /// rules reject it — generation code must only feed valid entries; the
    /// fallible path is [`Ccadb::add_intermediate`]).
    pub fn add_ccadb_intermediate(&mut self, cert: Arc<Certificate>) {
        self.ccadb
            .add_intermediate(cert, &self.stores, false, true)
            .expect("generated CCADB intermediate must satisfy inclusion rules");
    }

    /// Fallible CCADB insertion for callers exercising the rules.
    pub fn try_add_ccadb_intermediate(
        &mut self,
        cert: Arc<Certificate>,
        technically_constrained: bool,
        audited: bool,
    ) -> Result<(), crate::ccadb::CcadbRejection> {
        self.ccadb
            .add_intermediate(cert, &self.stores, technically_constrained, audited)
    }

    /// Whether a subject DN is listed anywhere (store root or CCADB
    /// intermediate) — the "issuer is in a public database" test.
    pub fn is_listed_subject(&self, dn: &DistinguishedName) -> bool {
        self.stores.values().any(|s| s.has_subject(dn)) || self.ccadb.has_subject(dn)
    }

    /// Whether this exact certificate is listed anywhere.
    pub fn is_listed_certificate(&self, fingerprint: &Fingerprint) -> bool {
        self.stores.values().any(|s| s.contains(fingerprint)) || self.ccadb.contains(fingerprint)
    }

    /// Trusted roots matching a subject DN across all stores (deduplicated
    /// by fingerprint).
    pub fn roots_for_subject(&self, dn: &DistinguishedName) -> Vec<Arc<Certificate>> {
        let mut seen = std::collections::HashSet::new();
        let mut out = Vec::new();
        for store in self.stores.values() {
            for root in store.roots_for_subject(dn) {
                if seen.insert(root.fingerprint()) {
                    out.push(Arc::clone(root));
                }
            }
        }
        out
    }

    /// Classify a certificate per §3.2.1: public-DB when the *issuer* is
    /// listed in any store or CCADB.
    ///
    /// A trusted root itself (listed by its own fingerprint) is public-DB
    /// even though it is self-signed.
    pub fn classify(&self, cert: &Certificate) -> IssuerClass {
        if self.is_listed_certificate(&cert.fingerprint()) {
            return IssuerClass::PublicDb;
        }
        if self.is_listed_subject(&cert.issuer) {
            IssuerClass::PublicDb
        } else {
            IssuerClass::NonPublicDb
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use certchain_asn1::Asn1Time;
    use certchain_cryptosim::KeyPair;
    use certchain_x509::{CertificateBuilder, Validity};

    fn long() -> Validity {
        Validity::days_from(Asn1Time::from_ymd_hms(2015, 1, 1, 0, 0, 0).unwrap(), 7300)
    }

    struct World {
        db: TrustDb,
        root_kp: KeyPair,
        root_dn: DistinguishedName,
        ica_kp: KeyPair,
        ica_dn: DistinguishedName,
    }

    fn world() -> World {
        let root_kp = KeyPair::derive(1, "world:root");
        let root_dn = DistinguishedName::cn_o("Public Root R1", "Public CA LLC");
        let root = CertificateBuilder::new()
            .issuer(root_dn.clone())
            .subject(root_dn.clone())
            .validity(long())
            .ca(None)
            .sign(&root_kp)
            .into_arc();
        let mut db = TrustDb::new();
        db.add_root_everywhere(Arc::clone(&root));

        let ica_kp = KeyPair::derive(1, "world:ica");
        let ica_dn = DistinguishedName::cn_o("Public ICA I1", "Public CA LLC");
        let ica = CertificateBuilder::new()
            .issuer(root_dn.clone())
            .subject(ica_dn.clone())
            .validity(long())
            .public_key(ica_kp.public().clone())
            .ca(Some(0))
            .sign(&root_kp)
            .into_arc();
        db.add_ccadb_intermediate(ica);

        World {
            db,
            root_kp,
            root_dn,
            ica_kp,
            ica_dn,
        }
    }

    #[test]
    fn leaf_from_ccadb_intermediate_is_public() {
        let w = world();
        let leaf = CertificateBuilder::new()
            .issuer(w.ica_dn.clone())
            .subject(DistinguishedName::cn("site.example.org"))
            .validity(long())
            .public_key(KeyPair::derive(2, "leaf").public().clone())
            .leaf_for("site.example.org")
            .sign(&w.ica_kp);
        assert_eq!(w.db.classify(&leaf), IssuerClass::PublicDb);
    }

    #[test]
    fn leaf_from_root_directly_is_public() {
        let w = world();
        let leaf = CertificateBuilder::new()
            .issuer(w.root_dn.clone())
            .subject(DistinguishedName::cn("direct.example.org"))
            .validity(long())
            .public_key(KeyPair::derive(3, "leaf2").public().clone())
            .leaf_for("direct.example.org")
            .sign(&w.root_kp);
        assert_eq!(w.db.classify(&leaf), IssuerClass::PublicDb);
    }

    #[test]
    fn private_issuer_is_non_public() {
        let w = world();
        let priv_kp = KeyPair::derive(4, "corp-ca");
        let leaf = CertificateBuilder::new()
            .issuer(DistinguishedName::cn_o("Corp Internal CA", "Corp"))
            .subject(DistinguishedName::cn("intranet.corp"))
            .validity(long())
            .public_key(KeyPair::derive(5, "leaf3").public().clone())
            .sign(&priv_kp);
        assert_eq!(w.db.classify(&leaf), IssuerClass::NonPublicDb);
    }

    #[test]
    fn self_signed_unlisted_is_non_public() {
        let w = world();
        let kp = KeyPair::derive(6, "self");
        let dn = DistinguishedName::cn("standalone.device");
        let cert = CertificateBuilder::new()
            .issuer(dn.clone())
            .subject(dn)
            .validity(long())
            .sign(&kp);
        assert!(cert.is_self_signed());
        assert_eq!(w.db.classify(&cert), IssuerClass::NonPublicDb);
    }

    #[test]
    fn trusted_root_itself_is_public() {
        let w = world();
        let root =
            w.db.store(RootProgram::Mozilla)
                .unwrap()
                .roots_for_subject(&w.root_dn)[0]
                .clone();
        assert!(root.is_self_signed());
        assert_eq!(w.db.classify(&root), IssuerClass::PublicDb);
    }

    /// An impersonating certificate claiming a public issuer DN still
    /// classifies as public-DB — classification is by DN listing, exactly
    /// as the paper's log-based method (which cannot verify keys) behaves.
    #[test]
    fn dn_impersonation_classifies_public() {
        let w = world();
        let rogue = KeyPair::derive(66, "rogue");
        let fake = CertificateBuilder::new()
            .issuer(w.root_dn.clone())
            .subject(DistinguishedName::cn("fake.example.org"))
            .validity(long())
            .public_key(KeyPair::derive(7, "x").public().clone())
            .sign(&rogue);
        assert_eq!(w.db.classify(&fake), IssuerClass::PublicDb);
    }

    #[test]
    fn roots_for_subject_deduplicates_across_stores() {
        let w = world();
        // The root was added to all 3 major stores; dedup yields one.
        assert_eq!(w.db.roots_for_subject(&w.root_dn).len(), 1);
    }

    #[test]
    fn ccadb_subject_listing() {
        let w = world();
        assert!(w.db.is_listed_subject(&w.ica_dn));
        assert!(!w.db.is_listed_subject(&DistinguishedName::cn("nobody")));
    }
}
