//! Simulated keypairs.
//!
//! A keypair is derived deterministically from a seed and a label (usually
//! the CA or server name), so an entire PKI ecosystem regenerates
//! byte-identically from one `u64` seed. The public key is 32 bytes; the
//! "secret" is only used to bind signing authority to the keypair object —
//! see [`crate::sig`] for how verification works.

use crate::hmac::derive;
use crate::sha256::{hex, Sha256};

/// A simulated public key (32 bytes).
#[derive(Debug, Clone, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct PublicKey {
    bytes: [u8; 32],
}

impl PublicKey {
    /// Wrap raw key bytes (e.g. parsed back out of a certificate).
    pub fn from_bytes(bytes: [u8; 32]) -> PublicKey {
        PublicKey { bytes }
    }

    /// Raw key bytes.
    pub fn as_bytes(&self) -> &[u8; 32] {
        &self.bytes
    }

    /// RFC 5280-style key identifier: SHA-256 of the key, truncated to
    /// 20 bytes (mirrors the common method (1) of §4.2.1.2 which uses SHA-1).
    pub fn key_id(&self) -> [u8; 20] {
        let d = Sha256::digest(&self.bytes);
        let mut id = [0u8; 20];
        id.copy_from_slice(&d[..20]);
        id
    }

    /// Hex rendering of the key id.
    pub fn key_id_hex(&self) -> String {
        hex(&self.key_id())
    }
}

/// A simulated keypair. The secret half never leaves this struct.
#[derive(Debug, Clone)]
pub struct KeyPair {
    secret: [u8; 32],
    public: PublicKey,
}

impl KeyPair {
    /// Derive a keypair deterministically from `(seed, label)`.
    pub fn derive(seed: u64, label: &str) -> KeyPair {
        let material = derive(&seed.to_be_bytes(), &format!("keypair:{label}"), 32);
        let mut secret = [0u8; 32];
        secret.copy_from_slice(&material);
        KeyPair::from_secret(secret)
    }

    /// Build from explicit secret bytes.
    pub fn from_secret(secret: [u8; 32]) -> KeyPair {
        // public = H("pub" || secret): anyone holding only the public key
        // cannot recover the secret (in the simulated threat model).
        let mut pub_bytes = [0u8; 32];
        pub_bytes.copy_from_slice(&Sha256::digest2(b"pub", &secret));
        KeyPair {
            secret,
            public: PublicKey::from_bytes(pub_bytes),
        }
    }

    /// The public half.
    pub fn public(&self) -> &PublicKey {
        &self.public
    }

    /// Internal: secret bytes, only visible to the sibling `sig` module.
    pub(crate) fn secret(&self) -> &[u8; 32] {
        &self.secret
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn derivation_is_deterministic() {
        let a = KeyPair::derive(1, "ca:Campus Root");
        let b = KeyPair::derive(1, "ca:Campus Root");
        assert_eq!(a.public(), b.public());
    }

    #[test]
    fn different_labels_different_keys() {
        let a = KeyPair::derive(1, "ca:A");
        let b = KeyPair::derive(1, "ca:B");
        let c = KeyPair::derive(2, "ca:A");
        assert_ne!(a.public(), b.public());
        assert_ne!(a.public(), c.public());
    }

    #[test]
    fn key_id_is_stable_and_20_bytes() {
        let kp = KeyPair::derive(9, "leaf");
        let id1 = kp.public().key_id();
        let id2 = kp.public().key_id();
        assert_eq!(id1, id2);
        assert_eq!(kp.public().key_id_hex().len(), 40);
    }

    #[test]
    fn public_key_round_trips_through_bytes() {
        let kp = KeyPair::derive(3, "x");
        let bytes = *kp.public().as_bytes();
        assert_eq!(PublicKey::from_bytes(bytes), *kp.public());
    }

    #[test]
    fn public_differs_from_secret() {
        let kp = KeyPair::from_secret([7u8; 32]);
        assert_ne!(kp.public().as_bytes(), &[7u8; 32]);
    }
}
