//! SplitMix64 — a tiny deterministic PRNG used for id/serial generation
//! inside the crypto layer (the workload crate uses `rand` for richer
//! distributions; this stays dependency-free for the low-level crates).

/// SplitMix64 stream (Steele, Lea & Flood 2014). Passes BigCrush when used
/// as a 64-bit generator; here it only needs to be deterministic and well
/// mixed.
#[derive(Debug, Clone)]
pub struct SplitMix64 {
    state: u64,
}

impl SplitMix64 {
    /// Seeded stream.
    pub fn new(seed: u64) -> SplitMix64 {
        SplitMix64 { state: seed }
    }

    /// Next 64-bit value.
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9e37_79b9_7f4a_7c15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        z ^ (z >> 31)
    }

    /// Uniform value in `0..bound` (rejection-free; fine for simulation).
    pub fn below(&mut self, bound: u64) -> u64 {
        debug_assert!(bound > 0);
        // 128-bit multiply method (Lemire) — unbiased enough for simulation.
        ((self.next_u64() as u128 * bound as u128) >> 64) as u64
    }

    /// Fill `buf` with pseudorandom bytes.
    pub fn fill_bytes(&mut self, buf: &mut [u8]) {
        for chunk in buf.chunks_mut(8) {
            let v = self.next_u64().to_le_bytes();
            chunk.copy_from_slice(&v[..chunk.len()]);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn reference_sequence() {
        // First outputs for seed 0 (cross-checked against the reference
        // C implementation of splitmix64).
        let mut r = SplitMix64::new(0);
        assert_eq!(r.next_u64(), 0xe220a8397b1dcdaf);
        assert_eq!(r.next_u64(), 0x6e789e6aa1b965f4);
        assert_eq!(r.next_u64(), 0x06c45d188009454f);
    }

    #[test]
    fn deterministic() {
        let mut a = SplitMix64::new(42);
        let mut b = SplitMix64::new(42);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn below_respects_bound() {
        let mut r = SplitMix64::new(7);
        for _ in 0..10_000 {
            assert!(r.below(13) < 13);
        }
    }

    #[test]
    fn below_covers_range() {
        let mut r = SplitMix64::new(11);
        let mut seen = [false; 8];
        for _ in 0..1_000 {
            seen[r.below(8) as usize] = true;
        }
        assert!(seen.iter().all(|&s| s));
    }

    #[test]
    fn fill_bytes_handles_odd_lengths() {
        let mut r = SplitMix64::new(3);
        let mut buf = [0u8; 13];
        r.fill_bytes(&mut buf);
        // Not all zero (overwhelmingly likely).
        assert!(buf.iter().any(|&b| b != 0));
    }
}
