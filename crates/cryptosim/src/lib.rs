#![forbid(unsafe_code)]
#![warn(missing_docs)]

//! Simulated cryptography for the certificate-chain laboratory.
//!
//! Real measurement infrastructure verifies RSA/ECDSA signatures; this
//! workspace replaces them with a *deterministic simulated* scheme
//! ([`sig`]) built on a from-scratch SHA-256. The scheme has the one
//! property the paper's experiments need — a signature verifies if and only
//! if it was produced over exactly these TBS bytes by the holder of the
//! claimed public key — while being cheap and dependency-free. It is **not**
//! cryptographically secure and must never be used outside simulation.
//!
//! Contents:
//! - [`sha256`]: FIPS 180-4 SHA-256, validated against NIST CAVP vectors.
//! - [`hmac`]: HMAC-SHA256 (RFC 2104), used for deterministic derivation.
//! - [`keys`]: simulated keypairs with stable key identifiers.
//! - [`sig`]: the `SimSig` sign/verify operations.
//! - [`rng`]: a splitmix64-based deterministic stream for id generation.

pub mod hmac;
pub mod keys;
pub mod rng;
pub mod sha256;
pub mod sig;

pub use keys::{KeyPair, PublicKey};
pub use rng::SplitMix64;
pub use sha256::Sha256;
pub use sig::{sign, verify, Signature};
