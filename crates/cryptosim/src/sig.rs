//! `SimSig` — the simulated signature scheme.
//!
//! `sig = SHA256("simsig-v1" ‖ signer_public ‖ message)`.
//!
//! Properties relied upon by the workspace:
//! - **Binding**: `verify(pub, msg, sig)` succeeds iff `sig` was produced
//!   over exactly `msg` with exactly `pub` — so a certificate claiming
//!   issuer X but actually signed by CA Y fails key-signature validation,
//!   which is precisely the failure class the paper's Appendix D measures.
//! - **Determinism**: no randomness, so traces regenerate identically.
//!
//! Non-property (accepted, documented in DESIGN.md): the scheme is not
//! unforgeable — anyone holding the public key could compute a valid
//! signature. Within the simulator, only [`sign`] produces signatures and it
//! requires the [`KeyPair`] (secret included), preserving the authority
//! model at the API level.

use crate::keys::{KeyPair, PublicKey};
use crate::sha256::Sha256;

const DOMAIN: &[u8] = b"simsig-v1";

/// A 32-byte simulated signature.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct Signature {
    bytes: [u8; 32],
}

impl Signature {
    /// Wrap raw signature bytes (e.g. parsed from a certificate).
    pub fn from_bytes(bytes: [u8; 32]) -> Signature {
        Signature { bytes }
    }

    /// Parse from a slice; `None` when the length is wrong.
    pub fn from_slice(slice: &[u8]) -> Option<Signature> {
        let bytes: [u8; 32] = slice.try_into().ok()?;
        Some(Signature { bytes })
    }

    /// Raw bytes.
    pub fn as_bytes(&self) -> &[u8; 32] {
        &self.bytes
    }
}

/// Sign `message` with `signer`. Requires the full keypair: holding only a
/// public key must not grant signing authority inside the simulator.
pub fn sign(signer: &KeyPair, message: &[u8]) -> Signature {
    // The secret is mixed in only via a debug assertion of consistency: the
    // signature itself binds to the *public* key so that verification works
    // with public information alone.
    debug_assert_eq!(
        KeyPair::from_secret(*signer.secret()).public(),
        signer.public(),
        "keypair invariant violated"
    );
    let mut h = Sha256::new();
    h.update(DOMAIN);
    h.update(signer.public().as_bytes());
    h.update(message);
    Signature {
        bytes: h.finalize(),
    }
}

/// Verify that `sig` is a valid signature over `message` by `signer_pub`.
pub fn verify(signer_pub: &PublicKey, message: &[u8], sig: &Signature) -> bool {
    let mut h = Sha256::new();
    h.update(DOMAIN);
    h.update(signer_pub.as_bytes());
    h.update(message);
    // Constant-time comparison is unnecessary in a simulator, but cheap.
    h.finalize()
        .iter()
        .zip(sig.bytes.iter())
        .fold(0u8, |acc, (a, b)| acc | (a ^ b))
        == 0
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sign_verify_round_trip() {
        let kp = KeyPair::derive(1, "ca");
        let sig = sign(&kp, b"tbs certificate bytes");
        assert!(verify(kp.public(), b"tbs certificate bytes", &sig));
    }

    #[test]
    fn wrong_message_fails() {
        let kp = KeyPair::derive(1, "ca");
        let sig = sign(&kp, b"message A");
        assert!(!verify(kp.public(), b"message B", &sig));
    }

    #[test]
    fn wrong_key_fails() {
        let signer = KeyPair::derive(1, "actual issuer");
        let claimed = KeyPair::derive(1, "claimed issuer");
        let sig = sign(&signer, b"tbs");
        // The paper's impersonation scenario: chain says `claimed` issued
        // the cert, but `signer` actually signed it.
        assert!(!verify(claimed.public(), b"tbs", &sig));
        assert!(verify(signer.public(), b"tbs", &sig));
    }

    #[test]
    fn single_bit_flip_fails() {
        let kp = KeyPair::derive(2, "ca");
        let sig = sign(&kp, b"x");
        let mut bad = *sig.as_bytes();
        bad[0] ^= 1;
        assert!(!verify(kp.public(), b"x", &Signature::from_bytes(bad)));
    }

    #[test]
    fn from_slice_validates_length() {
        assert!(Signature::from_slice(&[0u8; 31]).is_none());
        assert!(Signature::from_slice(&[0u8; 33]).is_none());
        assert!(Signature::from_slice(&[0u8; 32]).is_some());
    }

    #[test]
    fn signatures_are_deterministic() {
        let kp = KeyPair::derive(5, "ca");
        assert_eq!(sign(&kp, b"m"), sign(&kp, b"m"));
    }
}
