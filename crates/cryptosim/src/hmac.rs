//! HMAC-SHA256 (RFC 2104), used for deterministic key derivation in the
//! simulated PKI (derive a CA's keypair from the ecosystem seed + CA name).

use crate::sha256::Sha256;

const BLOCK: usize = 64;

/// Compute HMAC-SHA256 of `message` under `key`.
pub fn hmac_sha256(key: &[u8], message: &[u8]) -> [u8; 32] {
    let mut k = [0u8; BLOCK];
    if key.len() > BLOCK {
        k[..32].copy_from_slice(&Sha256::digest(key));
    } else {
        k[..key.len()].copy_from_slice(key);
    }
    let mut ipad = [0x36u8; BLOCK];
    let mut opad = [0x5cu8; BLOCK];
    for i in 0..BLOCK {
        ipad[i] ^= k[i];
        opad[i] ^= k[i];
    }
    let inner = Sha256::digest2(&ipad, message);
    Sha256::digest2(&opad, &inner)
}

/// Deterministically expand `(seed, label)` into `n` output bytes,
/// HKDF-expand style (counter-mode HMAC).
pub fn derive(seed: &[u8], label: &str, n: usize) -> Vec<u8> {
    let mut out = Vec::with_capacity(n);
    let mut counter: u32 = 1;
    let mut prev: Vec<u8> = Vec::new();
    while out.len() < n {
        let mut msg = prev.clone();
        msg.extend_from_slice(label.as_bytes());
        msg.extend_from_slice(&counter.to_be_bytes());
        let block = hmac_sha256(seed, &msg);
        prev = block.to_vec();
        let take = (n - out.len()).min(32);
        out.extend_from_slice(&block[..take]);
        counter += 1;
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::sha256::hex;

    /// RFC 4231 test case 1.
    #[test]
    fn rfc4231_case1() {
        let key = [0x0bu8; 20];
        let mac = hmac_sha256(&key, b"Hi There");
        assert_eq!(
            hex(&mac),
            "b0344c61d8db38535ca8afceaf0bf12b881dc200c9833da726e9376c2e32cff7"
        );
    }

    /// RFC 4231 test case 2 ("Jefe").
    #[test]
    fn rfc4231_case2() {
        let mac = hmac_sha256(b"Jefe", b"what do ya want for nothing?");
        assert_eq!(
            hex(&mac),
            "5bdcc146bf60754e6a042426089575c75a003f089d2739839dec58b964ec3843"
        );
    }

    /// RFC 4231 test case 3 (0xaa key, 0xdd data).
    #[test]
    fn rfc4231_case3() {
        let key = [0xaau8; 20];
        let data = [0xddu8; 50];
        let mac = hmac_sha256(&key, &data);
        assert_eq!(
            hex(&mac),
            "773ea91e36800e46854db8ebd09181a72959098b3ef8c122d9635514ced565fe"
        );
    }

    /// RFC 4231 test case 6 (key longer than block size).
    #[test]
    fn rfc4231_case6_long_key() {
        let key = [0xaau8; 131];
        let mac = hmac_sha256(
            &key,
            b"Test Using Larger Than Block-Size Key - Hash Key First",
        );
        assert_eq!(
            hex(&mac),
            "60e431591ee0b67f0d8a26aacbf5b77f8e0bc6213728c5140546040f0ee37f54"
        );
    }

    #[test]
    fn derive_is_deterministic_and_length_exact() {
        let a = derive(b"seed", "ca:Acme Root", 80);
        let b = derive(b"seed", "ca:Acme Root", 80);
        assert_eq!(a, b);
        assert_eq!(a.len(), 80);
        let c = derive(b"seed", "ca:Other Root", 80);
        assert_ne!(a, c);
        let d = derive(b"other", "ca:Acme Root", 80);
        assert_ne!(a, d);
    }

    #[test]
    fn derive_prefix_property() {
        // Extending the output length keeps the prefix stable.
        let short = derive(b"s", "label", 16);
        let long = derive(b"s", "label", 64);
        assert_eq!(&long[..16], short.as_slice());
    }
}
