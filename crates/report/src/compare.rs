//! Paper-vs-measured comparison rows — the format EXPERIMENTS.md records.

use crate::table::Table;

/// One compared quantity.
#[derive(Debug, Clone)]
pub struct ComparisonRow {
    /// What is being compared (e.g. "Table 2: hybrid chains").
    pub name: String,
    /// The paper's value.
    pub paper: f64,
    /// Our measured (weighted) value.
    pub measured: f64,
    /// Acceptable relative deviation for the verdict column.
    pub tolerance: f64,
}

impl ComparisonRow {
    /// Relative deviation (0 when both are 0).
    pub fn deviation(&self) -> f64 {
        if self.paper == 0.0 {
            if self.measured == 0.0 {
                0.0
            } else {
                f64::INFINITY
            }
        } else {
            (self.measured - self.paper).abs() / self.paper.abs()
        }
    }

    /// Whether the measurement is within tolerance.
    pub fn ok(&self) -> bool {
        self.deviation() <= self.tolerance
    }
}

/// A collection of comparison rows with a rendered verdict column.
#[derive(Debug, Clone, Default)]
pub struct ComparisonTable {
    rows: Vec<ComparisonRow>,
}

impl ComparisonTable {
    /// Empty table.
    pub fn new() -> ComparisonTable {
        ComparisonTable::default()
    }

    /// Add a row.
    pub fn add(&mut self, name: &str, paper: f64, measured: f64, tolerance: f64) -> &mut Self {
        self.rows.push(ComparisonRow {
            name: name.to_string(),
            paper,
            measured,
            tolerance,
        });
        self
    }

    /// All rows.
    pub fn rows(&self) -> &[ComparisonRow] {
        &self.rows
    }

    /// Whether every row is within tolerance.
    pub fn all_ok(&self) -> bool {
        self.rows.iter().all(|r| r.ok())
    }

    /// Render as an ASCII table.
    pub fn render(&self, title: &str) -> String {
        let mut t = Table::new(title, &["quantity", "paper", "measured", "dev", "ok"]);
        for r in &self.rows {
            t.row(&[
                r.name.clone(),
                format!("{:.4}", r.paper),
                format!("{:.4}", r.measured),
                format!("{:.2}%", r.deviation() * 100.0),
                if r.ok() { "✓".into() } else { "✗".into() },
            ]);
        }
        t.render()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deviation_and_verdict() {
        let row = ComparisonRow {
            name: "x".into(),
            paper: 100.0,
            measured: 103.0,
            tolerance: 0.05,
        };
        assert!((row.deviation() - 0.03).abs() < 1e-9);
        assert!(row.ok());
        let bad = ComparisonRow {
            name: "y".into(),
            paper: 100.0,
            measured: 120.0,
            tolerance: 0.05,
        };
        assert!(!bad.ok());
    }

    #[test]
    fn zero_paper_value() {
        let exact = ComparisonRow {
            name: "z".into(),
            paper: 0.0,
            measured: 0.0,
            tolerance: 0.0,
        };
        assert!(exact.ok());
        let off = ComparisonRow {
            name: "z".into(),
            paper: 0.0,
            measured: 1.0,
            tolerance: 0.5,
        };
        assert!(!off.ok());
    }

    #[test]
    fn table_renders_and_judges() {
        let mut t = ComparisonTable::new();
        t.add("hybrid chains", 321.0, 321.0, 0.0);
        t.add("established", 0.9756, 0.9754, 0.01);
        assert!(t.all_ok());
        let s = t.render("Table 3 comparison");
        assert!(s.contains("hybrid chains"));
        assert!(s.contains("✓"));
    }
}
