//! Text renderings of the paper's figures: CDFs (Figure 1) and
//! histograms (Figure 6).

/// Render a CDF as text: one line per x-value with a bar of `#`.
pub fn ascii_cdf(title: &str, points: &[(usize, f64)], width: usize) -> String {
    let mut out = format!("-- {title} (CDF) --\n");
    for &(x, y) in points {
        let bar = "#".repeat((y * width as f64).round() as usize);
        out.push_str(&format!("{x:>6} | {bar:<width$} {:.4}\n", y, width = width));
    }
    out
}

/// Render a histogram: `buckets` are `(label, count)`.
pub fn ascii_histogram(title: &str, buckets: &[(String, f64)], width: usize) -> String {
    let max = buckets
        .iter()
        .map(|(_, c)| *c)
        .fold(0.0_f64, f64::max)
        .max(f64::MIN_POSITIVE);
    let mut out = format!("-- {title} (histogram) --\n");
    for (label, count) in buckets {
        let bar = "#".repeat(((count / max) * width as f64).round() as usize);
        out.push_str(&format!(
            "{label:>10} | {bar:<width$} {count:.1}\n",
            width = width
        ));
    }
    out
}

/// Build histogram buckets over `[0, 1]` values with `n` equal bins.
pub fn unit_buckets(values: &[(f64, f64)], n: usize) -> Vec<(String, f64)> {
    let mut counts = vec![0.0f64; n];
    for &(v, weight) in values {
        let idx = ((v * n as f64) as usize).min(n - 1);
        counts[idx] += weight;
    }
    counts
        .into_iter()
        .enumerate()
        .map(|(i, c)| {
            (
                format!(
                    "{:.1}-{:.1}",
                    i as f64 / n as f64,
                    (i + 1) as f64 / n as f64
                ),
                c,
            )
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cdf_renders_monotone_bars() {
        let points = vec![(1, 0.5), (2, 0.8), (3, 1.0)];
        let s = ascii_cdf("lengths", &points, 20);
        assert!(s.contains("(CDF)"));
        let bars: Vec<usize> = s.lines().skip(1).map(|l| l.matches('#').count()).collect();
        assert!(bars.windows(2).all(|w| w[0] <= w[1]));
    }

    #[test]
    fn histogram_scales_to_max() {
        let buckets = vec![("a".to_string(), 10.0), ("b".to_string(), 5.0)];
        let s = ascii_histogram("h", &buckets, 10);
        let bars: Vec<usize> = s.lines().skip(1).map(|l| l.matches('#').count()).collect();
        assert_eq!(bars[0], 10);
        assert_eq!(bars[1], 5);
    }

    #[test]
    fn unit_buckets_cover_edges() {
        let values = vec![(0.0, 1.0), (0.49, 1.0), (0.5, 1.0), (1.0, 1.0)];
        let buckets = unit_buckets(&values, 2);
        assert_eq!(buckets.len(), 2);
        assert!((buckets[0].1 - 2.0).abs() < 1e-9);
        assert!(
            (buckets[1].1 - 2.0).abs() < 1e-9,
            "1.0 lands in the last bin"
        );
    }
}
