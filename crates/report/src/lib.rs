#![forbid(unsafe_code)]
#![warn(missing_docs)]

//! Rendering utilities for the experiment harness: ASCII tables in the
//! paper's layout, text CDFs/histograms for the figures, and the
//! paper-vs-measured comparison rows EXPERIMENTS.md records.

pub mod compare;
pub mod plot;
pub mod table;

pub use compare::{ComparisonRow, ComparisonTable};
pub use plot::{ascii_cdf, ascii_histogram};
pub use table::Table;
