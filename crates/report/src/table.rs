//! Minimal ASCII table renderer.

/// A simple column-aligned table.
#[derive(Debug, Clone)]
pub struct Table {
    title: String,
    headers: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl Table {
    /// New table with a title and column headers.
    pub fn new(title: &str, headers: &[&str]) -> Table {
        Table {
            title: title.to_string(),
            headers: headers.iter().map(|h| h.to_string()).collect(),
            rows: Vec::new(),
        }
    }

    /// Append a row (cells are stringified by the caller).
    pub fn row(&mut self, cells: &[String]) -> &mut Self {
        assert_eq!(
            cells.len(),
            self.headers.len(),
            "row width must match headers"
        );
        self.rows.push(cells.to_vec());
        self
    }

    /// Convenience for &str cells.
    pub fn row_str(&mut self, cells: &[&str]) -> &mut Self {
        let owned: Vec<String> = cells.iter().map(|c| c.to_string()).collect();
        self.row(&owned)
    }

    /// Number of data rows.
    pub fn len(&self) -> usize {
        self.rows.len()
    }

    /// Whether the table has no rows.
    pub fn is_empty(&self) -> bool {
        self.rows.is_empty()
    }

    /// Render to a string.
    pub fn render(&self) -> String {
        let mut widths: Vec<usize> = self.headers.iter().map(|h| h.len()).collect();
        for row in &self.rows {
            for (i, cell) in row.iter().enumerate() {
                widths[i] = widths[i].max(cell.len());
            }
        }
        let mut out = String::new();
        out.push_str(&format!("== {} ==\n", self.title));
        let render_row = |cells: &[String], widths: &[usize]| -> String {
            let mut line = String::from("|");
            for (cell, w) in cells.iter().zip(widths) {
                line.push_str(&format!(" {cell:>w$} |"));
            }
            line.push('\n');
            line
        };
        let sep = {
            let mut line = String::from("+");
            for w in &widths {
                line.push_str(&"-".repeat(w + 2));
                line.push('+');
            }
            line.push('\n');
            line
        };
        out.push_str(&sep);
        out.push_str(&render_row(&self.headers, &widths));
        out.push_str(&sep);
        for row in &self.rows {
            out.push_str(&render_row(row, &widths));
        }
        out.push_str(&sep);
        out
    }
}

/// Format a float with thousands separators and `digits` decimals.
pub fn num(value: f64, digits: usize) -> String {
    let formatted = format!("{value:.digits$}");
    let (int_part, frac) = match formatted.split_once('.') {
        Some((i, f)) => (i.to_string(), Some(f.to_string())),
        None => (formatted, None),
    };
    let negative = int_part.starts_with('-');
    let digits_only: Vec<char> = int_part.trim_start_matches('-').chars().collect();
    let mut grouped = String::new();
    for (i, c) in digits_only.iter().enumerate() {
        if i > 0 && (digits_only.len() - i) % 3 == 0 {
            grouped.push(',');
        }
        grouped.push(*c);
    }
    let mut out = String::new();
    if negative {
        out.push('-');
    }
    out.push_str(&grouped);
    if let Some(f) = frac {
        out.push('.');
        out.push_str(&f);
    }
    out
}

/// Percentage cell.
pub fn pct(value: f64) -> String {
    format!("{:.2}%", value * 100.0)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn renders_aligned() {
        let mut t = Table::new("Table X", &["Category", "#"]);
        t.row_str(&["Security & Network", "31"]);
        t.row_str(&["Other", "3"]);
        let s = t.render();
        assert!(s.contains("== Table X =="));
        assert!(s.contains("| Security & Network |"));
        // Column alignment: all lines same width. (Named distinctly from
        // `render`'s `widths` vector — srclint's binding tracking is
        // file-scoped.)
        let line_widths: std::collections::HashSet<usize> =
            s.lines().skip(1).map(|l| l.len()).collect();
        assert_eq!(line_widths.len(), 1, "all table lines equally wide");
        assert_eq!(t.len(), 2);
    }

    #[test]
    #[should_panic(expected = "row width")]
    fn row_width_checked() {
        let mut t = Table::new("t", &["a", "b"]);
        t.row_str(&["only one"]);
    }

    #[test]
    fn number_formatting() {
        assert_eq!(num(1234567.0, 0), "1,234,567");
        assert_eq!(num(999.5, 1), "999.5");
        assert_eq!(num(-1234.25, 2), "-1,234.25");
        assert_eq!(num(0.0, 0), "0");
        assert_eq!(pct(0.9756), "97.56%");
    }
}
