//! Property tests for the validation policies: random PKIs, random chain
//! shufflings and corruptions — invariants the three policies must hold.

use certchain_asn1::Asn1Time;
use certchain_cryptosim::KeyPair;
use certchain_netsim::{validate_chain, ValidationPolicy};
use certchain_trust::TrustDb;
use certchain_x509::{Certificate, CertificateBuilder, DistinguishedName, Serial, Validity};
use proptest::prelude::*;
use std::sync::Arc;

struct World {
    trust: TrustDb,
    chain: Vec<Arc<Certificate>>,
    domain: String,
    at: Asn1Time,
}

/// Build a random-depth PKI (root + 0..=2 intermediates + leaf) and a
/// correctly-ordered delivered chain.
fn world(seed: u64, depth: usize, include_root: bool) -> World {
    let at = Asn1Time::from_ymd_hms(2021, 3, 1, 0, 0, 0).unwrap();
    let validity = Validity::days_from(Asn1Time::from_ymd_hms(2020, 1, 1, 0, 0, 0).unwrap(), 3650);
    let root_kp = KeyPair::derive(seed, "prop:root");
    let root_dn = DistinguishedName::cn(&format!("Prop Root {seed}"));
    let root = CertificateBuilder::new()
        .serial(Serial::from_u64(1))
        .issuer(root_dn.clone())
        .subject(root_dn.clone())
        .validity(validity)
        .ca(None)
        .sign(&root_kp)
        .into_arc();
    let mut trust = TrustDb::new();
    trust.add_root_everywhere(Arc::clone(&root));

    let mut issuer_kp = root_kp;
    let mut issuer_dn = root_dn;
    let mut intermediates = Vec::new();
    for d in 0..depth {
        let kp = KeyPair::derive(seed, &format!("prop:ica{d}"));
        let dn = DistinguishedName::cn(&format!("Prop ICA {seed}/{d}"));
        let cert = CertificateBuilder::new()
            .serial(Serial::from_u64(2 + d as u64))
            .issuer(issuer_dn)
            .subject(dn.clone())
            .validity(validity)
            .public_key(kp.public().clone())
            .ca(None)
            .sign(&issuer_kp)
            .into_arc();
        intermediates.push(cert);
        issuer_kp = kp;
        issuer_dn = dn;
    }
    let domain = format!("prop{seed}.example.org");
    let leaf_kp = KeyPair::derive(seed, "prop:leaf");
    let leaf = CertificateBuilder::new()
        .serial(Serial::from_u64(100))
        .issuer(issuer_dn)
        .subject(DistinguishedName::cn(&domain))
        .validity(validity)
        .public_key(leaf_kp.public().clone())
        .leaf_for(&domain)
        .sign(&issuer_kp)
        .into_arc();

    let mut chain = vec![leaf];
    chain.extend(intermediates.into_iter().rev());
    if include_root {
        chain.push(root);
    }
    World {
        trust,
        chain,
        domain,
        at,
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Strict acceptance implies browser acceptance: the browser policy is
    /// a strict superset of the presented-chain walk.
    #[test]
    fn strict_accept_implies_browser_accept(
        seed in 0u64..500,
        depth in 0usize..3,
        include_root: bool,
        permute in any::<proptest::sample::Index>(),
        drop_one in proptest::option::of(any::<proptest::sample::Index>()),
    ) {
        let w = world(seed, depth, include_root);
        // Random mutation: rotate the chain and possibly drop one cert.
        let mut chain = w.chain.clone();
        if chain.len() > 1 {
            let k = permute.index(chain.len());
            chain.rotate_left(k);
        }
        if let Some(d) = drop_one {
            if chain.len() > 1 {
                let idx = d.index(chain.len());
                chain.remove(idx);
            }
        }
        let strict = validate_chain(
            ValidationPolicy::StrictPresented, &chain, &w.trust, w.at, Some(&w.domain));
        let browser = validate_chain(
            ValidationPolicy::Browser, &chain, &w.trust, w.at, Some(&w.domain));
        if strict.is_ok() {
            prop_assert!(browser.is_ok(),
                "strict accepted but browser rejected: {browser:?}");
        }
    }

    /// Permissive accepts anything non-empty; every policy rejects empty.
    #[test]
    fn permissive_and_empty(seed in 0u64..200, depth in 0usize..3) {
        let w = world(seed, depth, true);
        prop_assert!(validate_chain(
            ValidationPolicy::Permissive, &w.chain, &w.trust, w.at, None).is_ok());
        for policy in [ValidationPolicy::Browser, ValidationPolicy::StrictPresented,
                       ValidationPolicy::Permissive] {
            prop_assert!(validate_chain(policy, &[], &w.trust, w.at, None).is_err());
        }
    }

    /// A correctly-ordered chain to a trusted root validates under every
    /// policy, with and without the root included.
    #[test]
    fn well_formed_chains_validate(seed in 0u64..200, depth in 0usize..3, include_root: bool) {
        let w = world(seed, depth, include_root);
        for policy in [ValidationPolicy::Browser, ValidationPolicy::StrictPresented] {
            prop_assert!(
                validate_chain(policy, &w.chain, &w.trust, w.at, Some(&w.domain)).is_ok(),
                "{policy:?} rejected a well-formed chain (depth {depth}, root {include_root})"
            );
        }
    }

    /// Appending junk never breaks the browser policy, always breaks the
    /// strict policy (for anchored multi-cert chains).
    #[test]
    fn junk_divergence(seed in 0u64..200, depth in 1usize..3) {
        let w = world(seed, depth, false);
        let junk_kp = KeyPair::derive(seed ^ 0xdead, "prop:junk");
        let junk_dn = DistinguishedName::cn(&format!("Junk {seed}"));
        let junk = CertificateBuilder::new()
            .issuer(junk_dn.clone())
            .subject(junk_dn)
            .validity(Validity::days_from(Asn1Time::from_unix(0), 36_500))
            .sign(&junk_kp)
            .into_arc();
        let mut chain = w.chain.clone();
        chain.push(junk);
        prop_assert!(validate_chain(
            ValidationPolicy::Browser, &chain, &w.trust, w.at, Some(&w.domain)).is_ok());
        prop_assert!(validate_chain(
            ValidationPolicy::StrictPresented, &chain, &w.trust, w.at, Some(&w.domain)).is_err());
    }

    /// Without any trust anchors, only the permissive policy accepts.
    #[test]
    fn empty_trust_rejects(seed in 0u64..200, depth in 0usize..3) {
        let w = world(seed, depth, true);
        let empty = TrustDb::new();
        prop_assert!(validate_chain(
            ValidationPolicy::Browser, &w.chain, &empty, w.at, Some(&w.domain)).is_err());
        prop_assert!(validate_chain(
            ValidationPolicy::StrictPresented, &w.chain, &empty, w.at, Some(&w.domain)).is_err());
        prop_assert!(validate_chain(
            ValidationPolicy::Permissive, &w.chain, &empty, w.at, Some(&w.domain)).is_ok());
    }
}
