//! Robustness properties for the Zeek log readers: arbitrary corruption of
//! a valid log must produce either a parse or a structured error — never a
//! panic — and valid logs must round-trip exactly.

use certchain_asn1::Asn1Time;
use certchain_netsim::zeek::reader::{read_ssl_log, read_x509_log};
use certchain_netsim::zeek::tsv::{write_ssl_log, write_x509_log};
use certchain_netsim::{SslRecord, TlsVersion, X509Record};
use certchain_x509::Fingerprint;
use proptest::prelude::*;
use std::net::Ipv4Addr;

fn arb_ssl_record() -> impl Strategy<Value = SslRecord> {
    (
        0u64..2_000_000_000,
        "[A-Za-z0-9]{1,12}",
        any::<[u8; 4]>(),
        any::<u16>(),
        any::<[u8; 4]>(),
        any::<u16>(),
        any::<bool>(),
        proptest::option::of("[a-z0-9.-]{1,32}"),
        any::<bool>(),
        proptest::collection::vec(any::<[u8; 32]>(), 0..4),
    )
        .prop_map(
            |(ts, uid, orig, orig_p, resp, resp_p, v13, sni, established, fps)| SslRecord {
                ts: Asn1Time::from_unix(ts),
                uid: format!("C{uid}"),
                orig_h: Ipv4Addr::from(orig),
                orig_p,
                resp_h: Ipv4Addr::from(resp),
                resp_p,
                version: if v13 {
                    TlsVersion::Tls13
                } else {
                    TlsVersion::Tls12
                },
                server_name: sni,
                established,
                cert_chain_fps: fps.into_iter().map(Fingerprint).collect(),
            },
        )
}

fn arb_x509_record() -> impl Strategy<Value = X509Record> {
    (
        0u64..2_000_000_000,
        any::<[u8; 32]>(),
        1u64..4,
        "[0-9A-F]{2,16}",
        "CN=[a-zA-Z0-9 .\\-\u{e0}-\u{ff}\u{4e00}-\u{4e20}]{1,24}",
        "CN=[a-zA-Z0-9 .\\-\u{e0}-\u{ff}\u{4e00}-\u{4e20}]{1,24}",
        proptest::option::of(any::<bool>()),
        proptest::option::of(0u64..8),
        proptest::collection::vec("[a-z0-9.-]{1,24}", 0..3),
    )
        .prop_map(
            |(ts, fp, version, serial, subject, issuer, bc, path_len, san)| X509Record {
                ts: Asn1Time::from_unix(ts),
                fingerprint: Fingerprint(fp),
                cert_version: version,
                serial,
                subject,
                issuer,
                not_before: Asn1Time::from_unix(ts),
                not_after: Asn1Time::from_unix(ts + 86_400),
                basic_constraints_ca: bc,
                // pathLen only makes sense alongside basicConstraints.
                path_len: bc.and(path_len),
                san_dns: san,
            },
        )
}

proptest! {
    #[test]
    fn ssl_round_trips(records in proptest::collection::vec(arb_ssl_record(), 0..20)) {
        let mut buf = Vec::new();
        write_ssl_log(&mut buf, &records, Asn1Time::from_unix(0)).unwrap();
        let parsed = read_ssl_log(std::str::from_utf8(&buf).unwrap()).unwrap();
        prop_assert_eq!(parsed, records);
    }

    #[test]
    fn x509_round_trips(records in proptest::collection::vec(arb_x509_record(), 0..20)) {
        let mut buf = Vec::new();
        write_x509_log(&mut buf, &records, Asn1Time::from_unix(0)).unwrap();
        let parsed = read_x509_log(std::str::from_utf8(&buf).unwrap()).unwrap();
        prop_assert_eq!(parsed, records);
    }

    /// Mutating one byte of a valid log never panics the reader: it either
    /// still parses (the mutation hit a value that stays valid) or returns
    /// a structured error with a line number.
    #[test]
    fn corrupted_ssl_log_never_panics(
        records in proptest::collection::vec(arb_ssl_record(), 1..8),
        at in any::<proptest::sample::Index>(),
        new_byte in 0x20u8..0x7f,
    ) {
        let mut buf = Vec::new();
        write_ssl_log(&mut buf, &records, Asn1Time::from_unix(0)).unwrap();
        let idx = at.index(buf.len());
        buf[idx] = new_byte;
        if let Ok(text) = std::str::from_utf8(&buf) {
            match read_ssl_log(text) {
                Ok(_) => {}
                Err(e) => prop_assert!(!e.message.is_empty()),
            }
        }
    }

    /// Truncating a valid log at any point never panics the reader.
    #[test]
    fn truncated_x509_log_never_panics(
        records in proptest::collection::vec(arb_x509_record(), 1..8),
        cut in any::<proptest::sample::Index>(),
    ) {
        let mut buf = Vec::new();
        write_x509_log(&mut buf, &records, Asn1Time::from_unix(0)).unwrap();
        let idx = cut.index(buf.len());
        if let Ok(text) = std::str::from_utf8(&buf[..idx]) {
            let _ = read_x509_log(text);
        }
    }
}
