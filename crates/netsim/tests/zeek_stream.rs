//! Malformed-input parity between the streaming and batch Zeek readers:
//! for every corruption, both paths must report the *same* error (line
//! number and message), so callers can switch to bounded-memory streaming
//! without changing their error handling.

use certchain_asn1::Asn1Time;
use certchain_netsim::handshake::TlsVersion;
use certchain_netsim::zeek::reader::{read_ssl_log, read_ssl_log_with, read_x509_log};
use certchain_netsim::zeek::stream::ReadError;
use certchain_netsim::zeek::tsv::write_ssl_log;
use certchain_netsim::{SslLogStream, SslRecord, X509LogStream};
use certchain_x509::Fingerprint;
use std::net::Ipv4Addr;

fn t() -> Asn1Time {
    Asn1Time::from_ymd_hms(2020, 9, 1, 0, 0, 0).unwrap()
}

fn sample_log(records: usize) -> String {
    let records: Vec<SslRecord> = (0..records)
        .map(|i| SslRecord {
            ts: t().plus_secs(i as u64),
            uid: format!("C{i:04}"),
            orig_h: Ipv4Addr::new(128, 143, 1, 2),
            orig_p: 50_000 + i as u16,
            resp_h: Ipv4Addr::new(203, 0, 113, 5),
            resp_p: 443,
            version: TlsVersion::Tls12,
            server_name: Some("example.org".into()),
            established: true,
            cert_chain_fps: vec![Fingerprint([3; 32])],
        })
        .collect();
    let mut buf = Vec::new();
    write_ssl_log(&mut buf, &records, t()).unwrap();
    String::from_utf8(buf).unwrap()
}

/// Stream-parse `text` and return the outcome in batch-reader shape:
/// records up to the first error, or the first error.
fn stream_ssl(text: &str) -> Result<Vec<SslRecord>, ReadError> {
    SslLogStream::new(text.as_bytes()).collect()
}

/// Assert stream, sequential batch, and parallel batch agree exactly.
fn assert_parity(text: &str) -> ReadError {
    let stream = stream_ssl(text);
    let batch = read_ssl_log(text);
    assert_eq!(stream, batch, "stream vs batch disagree on:\n{text}");
    for threads in [2, 8] {
        assert_eq!(
            read_ssl_log_with(text, threads),
            batch,
            "parallel batch ({threads} threads) disagrees on:\n{text}"
        );
    }
    batch.expect_err("caller passes malformed input")
}

#[test]
fn truncated_final_line_same_error() {
    let text = sample_log(3);
    // Drop the #close footer and cut the last data row mid-field: the
    // file ends without a newline, as after a crashed logger.
    let no_close = text.rsplit_once("#close").unwrap().0;
    let truncated = &no_close[..no_close.len() - 25];
    assert!(!truncated.ends_with('\n'));
    let err = assert_parity(truncated);
    // 7 header lines, then data rows at lines 8–10; the cut row is last.
    assert_eq!(err.line, 10, "{err}");
}

#[test]
fn missing_fields_header_same_error() {
    let text = sample_log(2);
    // Strip the #fields header line entirely.
    let broken: String = text
        .lines()
        .filter(|l| !l.starts_with("#fields"))
        .map(|l| format!("{l}\n"))
        .collect();
    let err = assert_parity(&broken);
    assert_eq!(err.line, 0);
    assert!(err.message.contains("missing #fields"), "{err}");
}

#[test]
fn field_count_mismatch_mid_file_same_error() {
    let text = sample_log(4);
    // Chop trailing fields off the second data row only; later rows stay
    // valid, so fail-fast behavior (and the reported line) matters.
    let broken: String = text
        .lines()
        .map(|l| {
            if l.contains("C0001") {
                let cut: Vec<&str> = l.split('\t').take(4).collect();
                format!("{}\n", cut.join("\t"))
            } else {
                format!("{l}\n")
            }
        })
        .collect();
    let err = assert_parity(&broken);
    assert_eq!(err.line, 9, "second data row after 7 header lines: {err}");
}

#[test]
fn empty_file_same_error() {
    let err = assert_parity("");
    assert_eq!(err.line, 0);
    assert!(err.message.contains("missing #fields"), "{err}");
}

#[test]
fn x509_stream_matches_batch_on_garbage() {
    let garbage = "#fields\tts\tfingerprint\nnot-a-real-row\n";
    let stream: Result<Vec<_>, _> = X509LogStream::new(garbage.as_bytes()).collect();
    let batch = read_x509_log(garbage);
    assert_eq!(stream.unwrap_err(), batch.unwrap_err());
}

#[test]
fn well_formed_log_round_trips_through_both() {
    let text = sample_log(16);
    let stream = stream_ssl(&text).unwrap();
    let batch = read_ssl_log(&text).unwrap();
    assert_eq!(stream, batch);
    assert_eq!(stream.len(), 16);
}
