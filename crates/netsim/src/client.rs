//! Clients and their validation behaviour.

use crate::validate::ValidationPolicy;
use std::net::Ipv4Addr;

/// How a client validates and whether it sends SNI.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ClientPolicy {
    /// Validation strategy.
    pub validation: ValidationPolicy,
    /// Whether the client sends SNI when it knows the server's domain.
    pub sends_sni: bool,
}

impl ClientPolicy {
    /// A desktop browser: builds paths, sends SNI.
    pub fn browser() -> ClientPolicy {
        ClientPolicy {
            validation: ValidationPolicy::Browser,
            sends_sni: true,
        }
    }

    /// A strict library client validating the presented chain, with SNI.
    pub fn strict() -> ClientPolicy {
        ClientPolicy {
            validation: ValidationPolicy::StrictPresented,
            sends_sni: true,
        }
    }

    /// A pinning / non-validating client that sends SNI.
    pub fn permissive() -> ClientPolicy {
        ClientPolicy {
            validation: ValidationPolicy::Permissive,
            sends_sni: true,
        }
    }

    /// A non-validating client that also omits SNI (IoT devices, raw-IP
    /// clients — the bulk of single-certificate non-public-DB traffic,
    /// 86.70% of which the paper observed without SNI).
    pub fn permissive_no_sni() -> ClientPolicy {
        ClientPolicy {
            validation: ValidationPolicy::Permissive,
            sends_sni: false,
        }
    }
}

/// A client host behind the campus NAT.
#[derive(Debug, Clone)]
pub struct Client {
    /// The NAT'd public address the monitor sees. Multiple clients can
    /// share one address.
    pub ip: Ipv4Addr,
    /// Behaviour profile.
    pub policy: ClientPolicy,
}

impl Client {
    /// Construct a client.
    pub fn new(ip: Ipv4Addr, policy: ClientPolicy) -> Client {
        Client { ip, policy }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn profiles() {
        assert_eq!(
            ClientPolicy::browser().validation,
            ValidationPolicy::Browser
        );
        assert!(ClientPolicy::browser().sends_sni);
        assert_eq!(
            ClientPolicy::strict().validation,
            ValidationPolicy::StrictPresented
        );
        assert!(!ClientPolicy::permissive_no_sni().sends_sni);
        assert_eq!(
            ClientPolicy::permissive_no_sni().validation,
            ValidationPolicy::Permissive
        );
    }

    #[test]
    fn clients_share_nat_ips() {
        let ip = Ipv4Addr::new(128, 143, 1, 10);
        let a = Client::new(ip, ClientPolicy::browser());
        let b = Client::new(ip, ClientPolicy::strict());
        assert_eq!(a.ip, b.ip);
        assert_ne!(a.policy, b.policy);
    }
}
