//! The campus NAT: many internal clients, fewer public addresses.
//!
//! The paper notes (§3.2.2) that "a single client IP may represent multiple
//! clients, as our network traffic is subject to NAT". The generator
//! allocates internal clients onto a bounded pool of public addresses.

use std::net::Ipv4Addr;

/// A deterministic NAT address pool.
#[derive(Debug, Clone)]
pub struct NatPool {
    base: u32,
    size: u32,
}

impl NatPool {
    /// A pool of `size` addresses starting at `base`.
    pub fn new(base: Ipv4Addr, size: u32) -> NatPool {
        assert!(size > 0, "NAT pool must have at least one address");
        NatPool {
            base: u32::from(base),
            size,
        }
    }

    /// The campus pool used by the default calibration: a /16-ish block.
    pub fn campus(size: u32) -> NatPool {
        NatPool::new(Ipv4Addr::new(128, 143, 0, 0), size)
    }

    /// Public address for internal client `client_id`. Stable: the same
    /// client always maps to the same address; multiple clients share one.
    pub fn public_ip(&self, client_id: u64) -> Ipv4Addr {
        // Splitmix-style mix so adjacent ids spread across the pool while
        // staying deterministic.
        let mut z = client_id.wrapping_add(0x9e37_79b9_7f4a_7c15);
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        let slot = (z ^ (z >> 31)) % self.size as u64;
        Ipv4Addr::from(self.base + slot as u32)
    }

    /// Number of public addresses.
    pub fn size(&self) -> u32 {
        self.size
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::HashSet;

    #[test]
    fn mapping_is_stable() {
        let pool = NatPool::campus(1000);
        assert_eq!(pool.public_ip(42), pool.public_ip(42));
    }

    #[test]
    fn many_clients_fit_in_pool() {
        let pool = NatPool::campus(100);
        let ips: HashSet<_> = (0u64..10_000).map(|id| pool.public_ip(id)).collect();
        assert!(ips.len() <= 100);
        // With 10k clients over 100 slots the pool should be saturated.
        assert_eq!(ips.len(), 100);
    }

    #[test]
    fn addresses_come_from_the_block() {
        let pool = NatPool::new(Ipv4Addr::new(10, 0, 0, 0), 256);
        for id in 0..500 {
            let ip = pool.public_ip(id);
            let octets = ip.octets();
            assert_eq!((octets[0], octets[1], octets[2]), (10, 0, 0));
        }
    }

    #[test]
    #[should_panic(expected = "at least one address")]
    fn zero_pool_panics() {
        NatPool::campus(0);
    }
}
