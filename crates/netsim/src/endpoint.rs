//! Server endpoints: what a server *presents*, verbatim.

use certchain_x509::Certificate;
use std::net::Ipv4Addr;
use std::sync::Arc;

/// A TLS server endpoint.
///
/// The chain is stored in *delivery order* — the exact sequence the server
/// sends in its Certificate message — and is never normalized. Every
/// misconfiguration the paper catalogs (unnecessary certificates, leading
/// stray leaves, appended staging roots, truncated chains) lives in this
/// ordering.
#[derive(Debug, Clone)]
pub struct ServerEndpoint {
    /// Stable identifier within the simulation.
    pub id: u64,
    /// Server IP.
    pub ip: Ipv4Addr,
    /// Listening port (443 for plain HTTPS; the paper's Appendix C shows a
    /// long tail: 8013 for Fortinet interception, 8888, 33854, …).
    pub port: u16,
    /// The domain this endpoint nominally serves, when it has one. Servers
    /// reached without SNI (86.70% of single-cert non-public-DB traffic)
    /// may still have a domain; clients simply do not send it.
    pub domain: Option<String>,
    /// Certificate chain in delivery order.
    pub chain: Vec<Arc<Certificate>>,
}

impl ServerEndpoint {
    /// Construct an endpoint.
    pub fn new(
        id: u64,
        ip: Ipv4Addr,
        port: u16,
        domain: Option<String>,
        chain: Vec<Arc<Certificate>>,
    ) -> ServerEndpoint {
        ServerEndpoint {
            id,
            ip,
            port,
            domain,
            chain,
        }
    }

    /// Length of the delivered chain.
    pub fn chain_len(&self) -> usize {
        self.chain.len()
    }

    /// The first-presented certificate (what clients treat as the leaf).
    pub fn first_cert(&self) -> Option<&Arc<Certificate>> {
        self.chain.first()
    }

    /// Replace the delivered chain (used by the ecosystem-evolution
    /// operators for the 2024 revisit).
    pub fn set_chain(&mut self, chain: Vec<Arc<Certificate>>) {
        self.chain = chain;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use certchain_asn1::Asn1Time;
    use certchain_cryptosim::KeyPair;
    use certchain_x509::{CertificateBuilder, DistinguishedName, Validity};

    fn cert(name: &str) -> Arc<Certificate> {
        let kp = KeyPair::derive(1, name);
        let dn = DistinguishedName::cn(name);
        CertificateBuilder::new()
            .issuer(dn.clone())
            .subject(dn)
            .validity(Validity::days_from(
                Asn1Time::from_ymd_hms(2020, 9, 1, 0, 0, 0).unwrap(),
                90,
            ))
            .sign(&kp)
            .into_arc()
    }

    #[test]
    fn delivery_order_is_preserved() {
        let chain = vec![cert("b"), cert("a"), cert("c")];
        let ep = ServerEndpoint::new(
            1,
            Ipv4Addr::new(203, 0, 113, 7),
            443,
            Some("x.org".into()),
            chain.clone(),
        );
        assert_eq!(ep.chain_len(), 3);
        let names: Vec<_> = ep
            .chain
            .iter()
            .map(|c| c.subject.common_name().unwrap().to_string())
            .collect();
        assert_eq!(names, vec!["b", "a", "c"]);
        assert_eq!(ep.first_cert().unwrap().subject.common_name(), Some("b"));
    }

    #[test]
    fn set_chain_replaces() {
        let mut ep = ServerEndpoint::new(
            1,
            Ipv4Addr::new(203, 0, 113, 7),
            8013,
            None,
            vec![cert("old")],
        );
        ep.set_chain(vec![cert("new1"), cert("new2")]);
        assert_eq!(ep.chain_len(), 2);
    }
}
