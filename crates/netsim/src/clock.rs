//! The simulated clock.
//!
//! Nothing in the workspace reads wall-clock time; every timestamp flows
//! from a `SimClock` advanced by the trace generator. This keeps runs
//! byte-reproducible.

use certchain_asn1::Asn1Time;

/// A monotonically advancing simulated clock.
#[derive(Debug, Clone)]
pub struct SimClock {
    now: Asn1Time,
}

impl SimClock {
    /// Start at the given time.
    pub fn starting_at(start: Asn1Time) -> SimClock {
        SimClock { now: start }
    }

    /// Start at the paper's collection-window start (2020-09-01T00:00:00Z).
    pub fn campus_window_start() -> SimClock {
        SimClock::starting_at(Asn1Time::from_ymd_hms(2020, 9, 1, 0, 0, 0).expect("valid date"))
    }

    /// End of the paper's collection window (2021-08-31T23:59:59Z).
    pub fn campus_window_end() -> Asn1Time {
        Asn1Time::from_ymd_hms(2021, 8, 31, 23, 59, 59).expect("valid date")
    }

    /// The retrospective scan date (November 2024).
    pub fn revisit_time() -> Asn1Time {
        Asn1Time::from_ymd_hms(2024, 11, 15, 0, 0, 0).expect("valid date")
    }

    /// Current simulated time.
    pub fn now(&self) -> Asn1Time {
        self.now
    }

    /// Advance by `secs` seconds and return the new time.
    pub fn advance_secs(&mut self, secs: u64) -> Asn1Time {
        self.now = self.now.plus_secs(secs);
        self.now
    }

    /// Advance by whole days.
    pub fn advance_days(&mut self, days: u64) -> Asn1Time {
        self.now = self.now.plus_days(days);
        self.now
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn campus_window_constants() {
        let clock = SimClock::campus_window_start();
        assert_eq!(clock.now().to_string(), "2020-09-01T00:00:00Z");
        assert_eq!(
            SimClock::campus_window_end().to_string(),
            "2021-08-31T23:59:59Z"
        );
        assert!(SimClock::revisit_time() > SimClock::campus_window_end());
    }

    #[test]
    fn advance_is_monotonic() {
        let mut clock = SimClock::campus_window_start();
        let t0 = clock.now();
        let t1 = clock.advance_secs(30);
        let t2 = clock.advance_days(1);
        assert!(t0 < t1 && t1 < t2);
        assert_eq!(t2.unix_secs() - t0.unix_secs(), 30 + 86_400);
    }
}
