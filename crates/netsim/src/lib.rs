#![forbid(unsafe_code)]
#![warn(missing_docs)]

//! Campus-network TLS simulation with Zeek-style logging.
//!
//! This crate is the measurement substrate: servers that deliver certificate
//! chains exactly as configured (including every misconfiguration), clients
//! with differing validation policies, a handshake simulation whose outcome
//! populates the `established` field, a NAT model for client addressing,
//! and writers/readers for the two Zeek log streams the paper consumes
//! (`ssl.log` and `x509.log`).
//!
//! Faithfulness notes:
//! - `x509.log` records carry *no public keys or signatures*, matching the
//!   paper's collection constraints (§4.2 "the X509 logs did not capture
//!   public keys and signatures").
//! - TLS 1.3 connections hide the certificate chain from the passive
//!   monitor; their SSL records carry no fingerprints (§6.3).
//! - A single NAT'd client IP can represent many internal clients (§3.2.2).

pub mod client;
pub mod clock;
pub mod endpoint;
pub mod handshake;
pub mod nat;
pub mod validate;
pub mod zeek;

pub use client::{Client, ClientPolicy};
pub use clock::SimClock;
pub use endpoint::ServerEndpoint;
pub use handshake::{simulate_connection, ConnectionOutcome, TlsVersion};
pub use validate::{validate_chain, ValidationError, ValidationPolicy};
pub use zeek::record::{SslRecord, X509Record};
pub use zeek::rotated::{order_spool, parse_rotated_name, LogKind, RotatedLog};
pub use zeek::stream::{ReadError, SslLogStream, StreamStats, X509LogStream};
