//! Chain validation policies.
//!
//! The paper's §5/§6.1 finding is that the *same* delivered chain validates
//! differently depending on the client's strategy:
//!
//! - **Browser** (Chrome-like): searches the presented certificates for a
//!   suitable end-entity certificate and builds a path using both the
//!   presented set and the maintained trust databases. Unnecessary
//!   certificates are simply ignored; order does not matter.
//! - **StrictPresented** (OpenSSL-with-presented-chain-like): treats the
//!   first certificate as the entity certificate and walks the presented
//!   order; every adjacent pair must link by issuer–subject and signature,
//!   and the walk must end at a trust anchor. Unnecessary certificates —
//!   before or after the real path — break validation.
//! - **Permissive**: accepts any non-empty chain (clients that pin, skip
//!   verification, or have the private root installed locally; without
//!   these, non-public-DB-only connections could never establish, yet the
//!   paper observes hundreds of millions that do).

use certchain_asn1::Asn1Time;
use certchain_trust::TrustDb;
use certchain_x509::Certificate;
use std::fmt;
use std::sync::Arc;

/// Which validation strategy a client applies.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum ValidationPolicy {
    /// Chrome-like path building against maintained stores.
    Browser,
    /// OpenSSL-like strict walk of the presented chain.
    StrictPresented,
    /// No validation (pinning / local trust / disabled verification).
    Permissive,
}

/// Why validation failed.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ValidationError {
    /// The server presented no certificates.
    EmptyChain,
    /// No path from any acceptable leaf to a trust anchor could be built.
    NoPathToTrustAnchor,
    /// Adjacent presented certificates do not link (strict policy);
    /// `index` is the position of the child whose issuer mismatched.
    IssuerSubjectMismatch {
        /// Position of the child whose issuer mismatched.
        index: usize,
    },
    /// A signature along the walked path failed; `index` is the child.
    SignatureInvalid {
        /// Position of the child whose signature failed.
        index: usize,
    },
    /// A certificate on the path is outside its validity window.
    OutsideValidity {
        /// Position of the certificate outside its window.
        index: usize,
    },
    /// The SNI does not match the entity certificate's names.
    NameMismatch,
    /// The walk completed but terminated at an untrusted (e.g. private
    /// self-signed) anchor.
    UntrustedAnchor,
}

impl fmt::Display for ValidationError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ValidationError::EmptyChain => write!(f, "empty certificate chain"),
            ValidationError::NoPathToTrustAnchor => {
                write!(f, "unable to build a path to a trust anchor")
            }
            ValidationError::IssuerSubjectMismatch { index } => {
                write!(f, "issuer/subject mismatch above certificate {index}")
            }
            ValidationError::SignatureInvalid { index } => {
                write!(f, "signature of certificate {index} does not verify")
            }
            ValidationError::OutsideValidity { index } => {
                write!(f, "certificate {index} outside its validity window")
            }
            ValidationError::NameMismatch => write!(f, "server name mismatch"),
            ValidationError::UntrustedAnchor => write!(f, "chain anchors at an untrusted root"),
        }
    }
}

impl std::error::Error for ValidationError {}

/// Validate `chain` under `policy`.
///
/// `sni` is the name the client asked for (when it sent one); `at` is the
/// handshake time.
pub fn validate_chain(
    policy: ValidationPolicy,
    chain: &[Arc<Certificate>],
    trust: &TrustDb,
    at: Asn1Time,
    sni: Option<&str>,
) -> Result<(), ValidationError> {
    if chain.is_empty() {
        return Err(ValidationError::EmptyChain);
    }
    match policy {
        ValidationPolicy::Permissive => Ok(()),
        ValidationPolicy::Browser => validate_browser(chain, trust, at, sni),
        ValidationPolicy::StrictPresented => validate_strict(chain, trust, at, sni),
    }
}

/// Does `name` match `pattern` (supporting a single leading wildcard label)?
pub fn dns_name_matches(pattern: &str, name: &str) -> bool {
    if let Some(suffix) = pattern.strip_prefix("*.") {
        match name.split_once('.') {
            Some((first_label, rest)) => !first_label.is_empty() && rest == suffix,
            None => false,
        }
    } else {
        pattern.eq_ignore_ascii_case(name)
    }
}

fn cert_matches_name(cert: &Certificate, name: &str) -> bool {
    let sans = cert.dns_names();
    if !sans.is_empty() {
        return sans.iter().any(|p| dns_name_matches(p, name));
    }
    // Fall back to CN when no SAN is present (legacy behaviour still common
    // among non-public-DB issuers).
    cert.subject
        .common_name()
        .map(|cn| dns_name_matches(cn, name))
        .unwrap_or(false)
}

/// Chrome-like validation: find any acceptable entity certificate and
/// path-build through (presented ∪ trust-db) to a trusted root.
fn validate_browser(
    chain: &[Arc<Certificate>],
    trust: &TrustDb,
    at: Asn1Time,
    sni: Option<&str>,
) -> Result<(), ValidationError> {
    // Candidate entity certificates: when SNI is present, those matching the
    // name; otherwise every presented certificate (headless clients without
    // SNI accept whichever entity certificate the path building succeeds on).
    let mut candidates: Vec<&Arc<Certificate>> = match sni {
        Some(name) => chain
            .iter()
            .filter(|c| cert_matches_name(c, name))
            .collect(),
        None => chain.iter().collect(),
    };
    if candidates.is_empty() {
        return Err(ValidationError::NameMismatch);
    }
    // Prefer the first-presented candidate, as browsers do.
    candidates.dedup_by_key(|c| c.fingerprint());

    let mut last_error = ValidationError::NoPathToTrustAnchor;
    for leaf in candidates {
        match build_path(leaf, chain, trust, at) {
            Ok(()) => return Ok(()),
            Err(e) => last_error = e,
        }
    }
    Err(last_error)
}

/// Depth-first path building from `leaf` to a trusted root.
fn build_path(
    leaf: &Arc<Certificate>,
    presented: &[Arc<Certificate>],
    trust: &TrustDb,
    at: Asn1Time,
) -> Result<(), ValidationError> {
    if !leaf.validity.contains(at) {
        return Err(ValidationError::OutsideValidity { index: 0 });
    }
    // Iterative DFS with a visited set over fingerprints to survive the
    // cross-signing loops the paper observes in hybrid chains.
    let mut visited = std::collections::HashSet::new();
    let mut stack = vec![Arc::clone(leaf)];
    const MAX_DEPTH: usize = 16;
    let mut depth_guard = 0usize;
    while let Some(current) = stack.pop() {
        depth_guard += 1;
        if depth_guard > MAX_DEPTH * presented.len().max(4) {
            break;
        }
        if !visited.insert(current.fingerprint()) {
            continue;
        }
        // Anchored directly: the current certificate IS a trusted root.
        if trust.is_listed_certificate(&current.fingerprint()) {
            return Ok(());
        }
        // Anchored by signature: a trusted root issued the current cert.
        for root in trust.roots_for_subject(&current.issuer) {
            if root.validity.contains(at) && current.verify_signed_by(&root.public_key) {
                return Ok(());
            }
        }
        // Continue through presented intermediates.
        for candidate in presented {
            if candidate.subject == current.issuer
                && candidate.validity.contains(at)
                && current.verify_signed_by(&candidate.public_key)
            {
                stack.push(Arc::clone(candidate));
            }
        }
    }
    Err(ValidationError::NoPathToTrustAnchor)
}

/// OpenSSL-like strict walk of the presented order.
fn validate_strict(
    chain: &[Arc<Certificate>],
    trust: &TrustDb,
    at: Asn1Time,
    sni: Option<&str>,
) -> Result<(), ValidationError> {
    let leaf = &chain[0];
    if let Some(name) = sni {
        if !cert_matches_name(leaf, name) {
            return Err(ValidationError::NameMismatch);
        }
    }
    for (i, cert) in chain.iter().enumerate() {
        if !cert.validity.contains(at) {
            return Err(ValidationError::OutsideValidity { index: i });
        }
        // Can we anchor right here?
        if trust.is_listed_certificate(&cert.fingerprint()) {
            return finish_strict(chain, i, trust);
        }
        if trust
            .roots_for_subject(&cert.issuer)
            .iter()
            .any(|root| root.validity.contains(at) && cert.verify_signed_by(&root.public_key))
        {
            return finish_strict(chain, i, trust);
        }
        // Otherwise the next presented certificate must be the issuer.
        match chain.get(i + 1) {
            Some(next) => {
                if next.subject != cert.issuer {
                    return Err(ValidationError::IssuerSubjectMismatch { index: i });
                }
                if !cert.verify_signed_by(&next.public_key) {
                    return Err(ValidationError::SignatureInvalid { index: i });
                }
            }
            None => {
                // Ran out of certificates without reaching an anchor.
                return Err(if cert.is_self_signed() {
                    ValidationError::UntrustedAnchor
                } else {
                    ValidationError::NoPathToTrustAnchor
                });
            }
        }
    }
    unreachable!("loop returns before exhausting the chain");
}

/// The strict walk anchored at position `anchored_at`. Trailing
/// certificates after the anchor are *unnecessary*; the strict policy
/// rejects them — this is exactly the Chrome/OpenSSL divergence of §5.
/// The one legitimate trailing certificate is the trust-anchor root itself
/// (servers may include the root even though RFC 5246 lets them omit it).
fn finish_strict(
    chain: &[Arc<Certificate>],
    anchored_at: usize,
    trust: &TrustDb,
) -> Result<(), ValidationError> {
    match &chain[anchored_at + 1..] {
        [] => Ok(()),
        [root]
            if trust.is_listed_certificate(&root.fingerprint())
                && root.subject == chain[anchored_at].issuer =>
        {
            Ok(())
        }
        _ => Err(ValidationError::IssuerSubjectMismatch { index: anchored_at }),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use certchain_cryptosim::KeyPair;
    use certchain_x509::{CertificateBuilder, DistinguishedName, Serial, Validity};

    fn at() -> Asn1Time {
        Asn1Time::from_ymd_hms(2021, 1, 15, 12, 0, 0).unwrap()
    }

    fn window() -> Validity {
        Validity::days_from(Asn1Time::from_ymd_hms(2020, 1, 1, 0, 0, 0).unwrap(), 3650)
    }

    /// A public root + intermediate + leaf fixture.
    struct Pki {
        trust: TrustDb,
        root: Arc<Certificate>,
        ica: Arc<Certificate>,
        leaf: Arc<Certificate>,
    }

    fn pki() -> Pki {
        let root_kp = KeyPair::derive(1, "v:root");
        let root_dn = DistinguishedName::cn_o("Public Root", "PKI Inc");
        let root = CertificateBuilder::new()
            .issuer(root_dn.clone())
            .subject(root_dn.clone())
            .validity(window())
            .ca(None)
            .sign(&root_kp)
            .into_arc();

        let ica_kp = KeyPair::derive(1, "v:ica");
        let ica_dn = DistinguishedName::cn_o("Public ICA", "PKI Inc");
        let ica = CertificateBuilder::new()
            .serial(Serial::from_u64(2))
            .issuer(root_dn.clone())
            .subject(ica_dn.clone())
            .validity(window())
            .public_key(ica_kp.public().clone())
            .ca(Some(0))
            .sign(&root_kp)
            .into_arc();

        let leaf_kp = KeyPair::derive(1, "v:leaf");
        let leaf = CertificateBuilder::new()
            .serial(Serial::from_u64(3))
            .issuer(ica_dn)
            .subject(DistinguishedName::cn("www.example.org"))
            .validity(Validity::days_from(
                Asn1Time::from_ymd_hms(2020, 12, 1, 0, 0, 0).unwrap(),
                90,
            ))
            .public_key(leaf_kp.public().clone())
            .leaf_for("www.example.org")
            .sign(&ica_kp)
            .into_arc();

        let mut trust = TrustDb::new();
        trust.add_root_everywhere(Arc::clone(&root));
        Pki {
            trust,
            root,
            ica,
            leaf,
        }
    }

    #[test]
    fn well_formed_chain_passes_both_policies() {
        let p = pki();
        let chain = vec![Arc::clone(&p.leaf), Arc::clone(&p.ica)];
        for policy in [ValidationPolicy::Browser, ValidationPolicy::StrictPresented] {
            validate_chain(policy, &chain, &p.trust, at(), Some("www.example.org"))
                .unwrap_or_else(|e| panic!("{policy:?}: {e}"));
        }
    }

    #[test]
    fn chain_with_root_included_passes_both() {
        let p = pki();
        let chain = vec![Arc::clone(&p.leaf), Arc::clone(&p.ica), Arc::clone(&p.root)];
        for policy in [ValidationPolicy::Browser, ValidationPolicy::StrictPresented] {
            validate_chain(policy, &chain, &p.trust, at(), Some("www.example.org")).unwrap();
        }
    }

    /// The paper's headline divergence: complete path + appended
    /// unnecessary certificate → Chrome OK, strict fails.
    #[test]
    fn unnecessary_cert_divergence() {
        let p = pki();
        let junk_kp = KeyPair::derive(9, "v:junk");
        let junk_dn = DistinguishedName::cn_o("tester", "HP");
        let junk = CertificateBuilder::new()
            .issuer(junk_dn.clone())
            .subject(junk_dn)
            .validity(window())
            .sign(&junk_kp)
            .into_arc();
        let chain = vec![Arc::clone(&p.leaf), Arc::clone(&p.ica), junk];
        validate_chain(
            ValidationPolicy::Browser,
            &chain,
            &p.trust,
            at(),
            Some("www.example.org"),
        )
        .unwrap();
        let err = validate_chain(
            ValidationPolicy::StrictPresented,
            &chain,
            &p.trust,
            at(),
            Some("www.example.org"),
        )
        .unwrap_err();
        assert_eq!(err, ValidationError::IssuerSubjectMismatch { index: 1 });
    }

    /// Stray leaf *before* the complete matched path (§4.2): strict fails
    /// at index 0; browser recovers by finding the right entity cert.
    #[test]
    fn leading_stray_leaf_divergence() {
        let p = pki();
        let stray_kp = KeyPair::derive(10, "v:stray");
        let stray_dn = DistinguishedName::cn("stale.example.org");
        let stray = CertificateBuilder::new()
            .issuer(stray_dn.clone())
            .subject(stray_dn)
            .validity(window())
            .sign(&stray_kp)
            .into_arc();
        let chain = vec![stray, Arc::clone(&p.leaf), Arc::clone(&p.ica)];
        // SNI targets the real leaf.
        validate_chain(
            ValidationPolicy::Browser,
            &chain,
            &p.trust,
            at(),
            Some("www.example.org"),
        )
        .unwrap();
        assert!(validate_chain(
            ValidationPolicy::StrictPresented,
            &chain,
            &p.trust,
            at(),
            Some("www.example.org"),
        )
        .is_err());
    }

    #[test]
    fn out_of_order_chain_browser_only() {
        let p = pki();
        let chain = vec![Arc::clone(&p.ica), Arc::clone(&p.leaf)];
        validate_chain(
            ValidationPolicy::Browser,
            &chain,
            &p.trust,
            at(),
            Some("www.example.org"),
        )
        .unwrap();
        assert!(validate_chain(
            ValidationPolicy::StrictPresented,
            &chain,
            &p.trust,
            at(),
            Some("www.example.org"),
        )
        .is_err());
    }

    #[test]
    fn missing_intermediate_fails_both() {
        let p = pki();
        let chain = vec![Arc::clone(&p.leaf)];
        for policy in [ValidationPolicy::Browser, ValidationPolicy::StrictPresented] {
            assert!(
                validate_chain(policy, &chain, &p.trust, at(), Some("www.example.org")).is_err(),
                "{policy:?} should fail without the intermediate"
            );
        }
    }

    #[test]
    fn private_self_signed_fails_except_permissive() {
        let p = pki();
        let kp = KeyPair::derive(11, "v:self");
        let dn = DistinguishedName::cn("device.local");
        let cert = CertificateBuilder::new()
            .issuer(dn.clone())
            .subject(dn)
            .validity(window())
            .sign(&kp)
            .into_arc();
        let chain = vec![cert];
        assert!(validate_chain(ValidationPolicy::Browser, &chain, &p.trust, at(), None).is_err());
        assert_eq!(
            validate_chain(
                ValidationPolicy::StrictPresented,
                &chain,
                &p.trust,
                at(),
                None
            ),
            Err(ValidationError::UntrustedAnchor)
        );
        validate_chain(ValidationPolicy::Permissive, &chain, &p.trust, at(), None).unwrap();
    }

    #[test]
    fn expired_leaf_fails() {
        let p = pki();
        let late = Asn1Time::from_ymd_hms(2021, 6, 1, 0, 0, 0).unwrap(); // leaf expired (90d from 2020-12-01)
        let chain = vec![Arc::clone(&p.leaf), Arc::clone(&p.ica)];
        for policy in [ValidationPolicy::Browser, ValidationPolicy::StrictPresented] {
            assert_eq!(
                validate_chain(policy, &chain, &p.trust, late, Some("www.example.org")),
                Err(ValidationError::OutsideValidity { index: 0 }),
                "{policy:?}"
            );
        }
    }

    #[test]
    fn sni_mismatch_fails() {
        let p = pki();
        let chain = vec![Arc::clone(&p.leaf), Arc::clone(&p.ica)];
        for policy in [ValidationPolicy::Browser, ValidationPolicy::StrictPresented] {
            assert_eq!(
                validate_chain(policy, &chain, &p.trust, at(), Some("other.org")),
                Err(ValidationError::NameMismatch),
                "{policy:?}"
            );
        }
    }

    #[test]
    fn empty_chain_fails_all() {
        let p = pki();
        for policy in [
            ValidationPolicy::Browser,
            ValidationPolicy::StrictPresented,
            ValidationPolicy::Permissive,
        ] {
            assert_eq!(
                validate_chain(policy, &[], &p.trust, at(), None),
                Err(ValidationError::EmptyChain)
            );
        }
    }

    #[test]
    fn wildcard_matching() {
        assert!(dns_name_matches("*.example.org", "www.example.org"));
        assert!(!dns_name_matches("*.example.org", "example.org"));
        assert!(!dns_name_matches("*.example.org", "a.b.example.org"));
        assert!(dns_name_matches("example.org", "EXAMPLE.ORG"));
        assert!(!dns_name_matches("*.example.org", ".example.org"));
    }

    #[test]
    fn forged_signature_fails_strict_with_position() {
        let p = pki();
        // A leaf claiming the ICA as issuer but signed by a rogue key.
        let rogue = KeyPair::derive(66, "v:rogue");
        let forged = CertificateBuilder::new()
            .issuer(p.ica.subject.clone())
            .subject(DistinguishedName::cn("www.example.org"))
            .validity(window())
            .public_key(KeyPair::derive(67, "v:f").public().clone())
            .leaf_for("www.example.org")
            .sign(&rogue)
            .into_arc();
        let chain = vec![forged, Arc::clone(&p.ica)];
        assert_eq!(
            validate_chain(
                ValidationPolicy::StrictPresented,
                &chain,
                &p.trust,
                at(),
                Some("www.example.org")
            ),
            Err(ValidationError::SignatureInvalid { index: 0 })
        );
        assert!(validate_chain(
            ValidationPolicy::Browser,
            &chain,
            &p.trust,
            at(),
            Some("www.example.org")
        )
        .is_err());
    }

    /// Cross-signed intermediates must not send path building into a loop.
    #[test]
    fn cross_signing_loop_terminates() {
        let a_kp = KeyPair::derive(20, "v:a");
        let b_kp = KeyPair::derive(21, "v:b");
        let a_dn = DistinguishedName::cn("CA A");
        let b_dn = DistinguishedName::cn("CA B");
        // A signed by B, B signed by A — a cycle with no trust anchor.
        let a = CertificateBuilder::new()
            .issuer(b_dn.clone())
            .subject(a_dn.clone())
            .validity(window())
            .public_key(a_kp.public().clone())
            .ca(None)
            .sign(&b_kp)
            .into_arc();
        let b = CertificateBuilder::new()
            .issuer(a_dn.clone())
            .subject(b_dn)
            .validity(window())
            .public_key(b_kp.public().clone())
            .ca(None)
            .sign(&a_kp)
            .into_arc();
        let leaf_kp = KeyPair::derive(22, "v:cycleleaf");
        let leaf = CertificateBuilder::new()
            .issuer(a_dn)
            .subject(DistinguishedName::cn("cycle.org"))
            .validity(window())
            .public_key(leaf_kp.public().clone())
            .sign(&a_kp)
            .into_arc();
        let trust = TrustDb::new();
        let chain = vec![leaf, a, b];
        assert_eq!(
            validate_chain(ValidationPolicy::Browser, &chain, &trust, at(), None),
            Err(ValidationError::NoPathToTrustAnchor)
        );
    }
}
