//! TLS handshake simulation.
//!
//! One call = one TLS connection crossing the border gateway. The outcome
//! bundles the `ssl.log` record and the `x509.log` records the Zeek-like
//! monitor would emit for it.

use crate::client::Client;
use crate::endpoint::ServerEndpoint;
use crate::validate::{validate_chain, ValidationError};
use crate::zeek::record::{SslRecord, X509Record};
use certchain_asn1::Asn1Time;
use certchain_trust::TrustDb;

/// TLS protocol version of a connection.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum TlsVersion {
    /// TLS 1.2 and below: the certificate chain crosses the wire in clear.
    Tls12,
    /// TLS 1.3: certificates are encrypted; the passive monitor sees none.
    Tls13,
}

impl TlsVersion {
    /// Zeek's string rendering.
    pub fn as_str(&self) -> &'static str {
        match self {
            TlsVersion::Tls12 => "TLSv12",
            TlsVersion::Tls13 => "TLSv13",
        }
    }
}

/// The result of one simulated connection.
#[derive(Debug, Clone)]
pub struct ConnectionOutcome {
    /// The ssl.log record.
    pub ssl: SslRecord,
    /// x509.log records for each delivered certificate (empty for TLS 1.3).
    pub x509: Vec<X509Record>,
    /// Validation verdict (None when the client accepted without
    /// validating, i.e. the permissive policy).
    pub validation_error: Option<ValidationError>,
}

/// Simulate one connection from `client` to `server` at `at`.
///
/// `uid` must be unique per connection (the trace generator numbers them).
pub fn simulate_connection(
    uid: u64,
    at: Asn1Time,
    client: &Client,
    server: &ServerEndpoint,
    trust: &TrustDb,
    version: TlsVersion,
) -> ConnectionOutcome {
    let sni = if client.policy.sends_sni {
        server.domain.clone()
    } else {
        None
    };
    let verdict = validate_chain(
        client.policy.validation,
        &server.chain,
        trust,
        at,
        sni.as_deref(),
    );
    let mut outcome = record_connection(uid, at, client, server, verdict.is_ok(), version);
    outcome.validation_error = verdict.err();
    outcome
}

/// Build the log records for a connection whose validation outcome is
/// already known. Trace generators use this with a per-(server, policy)
/// outcome cache so signature verification runs once, not once per
/// connection.
pub fn record_connection(
    uid: u64,
    at: Asn1Time,
    client: &Client,
    server: &ServerEndpoint,
    established: bool,
    version: TlsVersion,
) -> ConnectionOutcome {
    let sni = if client.policy.sends_sni {
        server.domain.clone()
    } else {
        None
    };

    // What the passive monitor captures depends on the TLS version.
    let (fingerprints, x509) = match version {
        TlsVersion::Tls13 => (Vec::new(), Vec::new()),
        TlsVersion::Tls12 => {
            let fps = server
                .chain
                .iter()
                .map(|c| c.fingerprint())
                .collect::<Vec<_>>();
            let records = server
                .chain
                .iter()
                .map(|c| X509Record::from_certificate(at, c))
                .collect();
            (fps, records)
        }
    };

    let ssl = SslRecord {
        ts: at,
        uid: format!("C{uid:016x}"),
        orig_h: client.ip,
        orig_p: 32768 + (uid % 28_000) as u16,
        resp_h: server.ip,
        resp_p: server.port,
        version,
        server_name: sni,
        established,
        cert_chain_fps: fingerprints,
    };

    ConnectionOutcome {
        ssl,
        x509,
        validation_error: None,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::client::ClientPolicy;
    use certchain_cryptosim::KeyPair;
    use certchain_x509::{CertificateBuilder, DistinguishedName, Validity};
    use std::net::Ipv4Addr;

    fn at() -> Asn1Time {
        Asn1Time::from_ymd_hms(2020, 10, 1, 8, 0, 0).unwrap()
    }

    fn self_signed_server() -> ServerEndpoint {
        let kp = KeyPair::derive(1, "hs:self");
        let dn = DistinguishedName::cn("printer.campus.edu");
        let cert = CertificateBuilder::new()
            .issuer(dn.clone())
            .subject(dn)
            .validity(Validity::days_from(
                Asn1Time::from_ymd_hms(2020, 1, 1, 0, 0, 0).unwrap(),
                3650,
            ))
            .sign(&kp)
            .into_arc();
        ServerEndpoint::new(
            7,
            Ipv4Addr::new(203, 0, 113, 8),
            8888,
            Some("printer.campus.edu".into()),
            vec![cert],
        )
    }

    #[test]
    fn permissive_client_establishes_to_self_signed() {
        let server = self_signed_server();
        let client = Client::new(
            Ipv4Addr::new(128, 143, 5, 5),
            ClientPolicy::permissive_no_sni(),
        );
        let trust = TrustDb::new();
        let out = simulate_connection(1, at(), &client, &server, &trust, TlsVersion::Tls12);
        assert!(out.ssl.established);
        assert!(out.ssl.server_name.is_none(), "no-SNI client");
        assert_eq!(out.ssl.cert_chain_fps.len(), 1);
        assert_eq!(out.x509.len(), 1);
        assert!(out.validation_error.is_none());
    }

    #[test]
    fn browser_client_fails_to_self_signed() {
        let server = self_signed_server();
        let client = Client::new(Ipv4Addr::new(128, 143, 5, 6), ClientPolicy::browser());
        let trust = TrustDb::new();
        let out = simulate_connection(2, at(), &client, &server, &trust, TlsVersion::Tls12);
        assert!(!out.ssl.established);
        assert_eq!(out.ssl.server_name.as_deref(), Some("printer.campus.edu"));
        assert!(out.validation_error.is_some());
        // Failed handshakes still reveal the chain to the passive monitor
        // (Zeek records certificates from the server's Certificate message
        // regardless of the final outcome).
        assert_eq!(out.x509.len(), 1);
    }

    #[test]
    fn tls13_hides_certificates() {
        let server = self_signed_server();
        let client = Client::new(Ipv4Addr::new(128, 143, 5, 7), ClientPolicy::permissive());
        let trust = TrustDb::new();
        let out = simulate_connection(3, at(), &client, &server, &trust, TlsVersion::Tls13);
        assert!(out.ssl.cert_chain_fps.is_empty());
        assert!(out.x509.is_empty());
        assert_eq!(out.ssl.version, TlsVersion::Tls13);
    }

    #[test]
    fn uids_are_distinct_and_ports_in_range() {
        let server = self_signed_server();
        let client = Client::new(Ipv4Addr::new(128, 143, 5, 8), ClientPolicy::permissive());
        let trust = TrustDb::new();
        let a = simulate_connection(10, at(), &client, &server, &trust, TlsVersion::Tls12);
        let b = simulate_connection(11, at(), &client, &server, &trust, TlsVersion::Tls12);
        assert_ne!(a.ssl.uid, b.ssl.uid);
        assert!(a.ssl.orig_p >= 32768);
        assert_eq!(a.ssl.resp_p, 8888);
    }
}
