//! Zeek TSV log writing.
//!
//! Reproduces the on-disk shape of Zeek logs: `#separator`, `#fields`,
//! `#types` headers, tab-separated rows, `-` for unset fields, `(empty)`
//! for empty vectors, `T`/`F` booleans and epoch-seconds timestamps.

use crate::handshake::TlsVersion;
use crate::zeek::record::{SslRecord, X509Record};
use certchain_asn1::Asn1Time;
use std::io::{self, Write};

/// Field list for ssl.log (subset of Zeek's, sufficient for the paper).
pub const SSL_FIELDS: &[&str] = &[
    "ts",
    "uid",
    "id.orig_h",
    "id.orig_p",
    "id.resp_h",
    "id.resp_p",
    "version",
    "server_name",
    "established",
    "cert_chain_fps",
];

/// Field list for x509.log.
pub const X509_FIELDS: &[&str] = &[
    "ts",
    "fingerprint",
    "certificate.version",
    "certificate.serial",
    "certificate.subject",
    "certificate.issuer",
    "certificate.not_valid_before",
    "certificate.not_valid_after",
    "basic_constraints.ca",
    "basic_constraints.path_len",
    "san.dns",
];

fn write_header(
    out: &mut impl Write,
    path: &str,
    fields: &[&str],
    open: Asn1Time,
) -> io::Result<()> {
    writeln!(out, "#separator \\x09")?;
    writeln!(out, "#set_separator\t,")?;
    writeln!(out, "#empty_field\t(empty)")?;
    writeln!(out, "#unset_field\t-")?;
    writeln!(out, "#path\t{path}")?;
    writeln!(out, "#open\t{open}")?;
    writeln!(out, "#fields\t{}", fields.join("\t"))?;
    Ok(())
}

fn ts_str(t: Asn1Time) -> String {
    format!("{}.000000", t.unix_secs())
}

fn bool_str(b: bool) -> &'static str {
    if b {
        "T"
    } else {
        "F"
    }
}

fn opt_str(v: Option<&str>) -> &str {
    v.unwrap_or("-")
}

fn vec_str(items: &[String]) -> String {
    if items.is_empty() {
        "(empty)".to_string()
    } else {
        items
            .iter()
            .map(|i| zeek_escape_vec_entry(i))
            .collect::<Vec<_>>()
            .join(",")
    }
}

/// Escape a string field the way Zeek's ASCII writer does: separators and
/// other ambiguous bytes become `\xNN` hex escapes, and a field that would
/// collide with the unset (`-`) or empty (`(empty)`) tokens gets its first
/// byte escaped.
pub fn zeek_escape(field: &str) -> std::borrow::Cow<'_, str> {
    escape_impl(field, false)
}

/// Escape one entry of a vector field: like [`zeek_escape`] but the set
/// separator (`,`) must also be escaped.
pub fn zeek_escape_vec_entry(field: &str) -> std::borrow::Cow<'_, str> {
    escape_impl(field, true)
}

/// Byte-level escaping: escapes are pure ASCII and non-ASCII UTF-8 bytes
/// pass through untouched, so multi-byte characters survive intact.
/// Returns a borrow when nothing needed escaping (the overwhelmingly
/// common case on the log-writing hot path).
fn escape_impl(field: &str, in_vector: bool) -> std::borrow::Cow<'_, str> {
    let needs_token_escape = field == "-" || field == "(empty)";
    let needs_escape = |i: usize, b: u8| {
        matches!(b, b'\t' | b'\n' | b'\r' | b'\\')
            || (in_vector && b == b',')
            || (i == 0 && needs_token_escape)
    };
    if !field.bytes().enumerate().any(|(i, b)| needs_escape(i, b)) {
        return std::borrow::Cow::Borrowed(field);
    }
    let mut out: Vec<u8> = Vec::with_capacity(field.len() + 8);
    for (i, b) in field.bytes().enumerate() {
        if needs_escape(i, b) {
            out.extend_from_slice(format!("\\x{b:02x}").as_bytes());
        } else {
            out.push(b);
        }
    }
    std::borrow::Cow::Owned(
        String::from_utf8(out)
            .expect("escaping only inserts ASCII and copies the original UTF-8 bytes"),
    )
}

/// Undo [`zeek_escape`]. Operates on bytes so multi-byte UTF-8 characters
/// pass through unchanged; an escape sequence decoding to a byte that does
/// not form valid UTF-8 is replaced (lossy), matching how a consumer would
/// treat a hostile log.
pub fn zeek_unescape(field: &str) -> String {
    let bytes = field.as_bytes();
    let mut out: Vec<u8> = Vec::with_capacity(bytes.len());
    let mut i = 0;
    while i < bytes.len() {
        if bytes[i] == b'\\'
            && i + 3 < bytes.len()
            && bytes[i + 1] == b'x'
            && bytes[i + 2].is_ascii_hexdigit()
            && bytes[i + 3].is_ascii_hexdigit()
        {
            let hi = (bytes[i + 2] as char).to_digit(16).expect("checked hex");
            let lo = (bytes[i + 3] as char).to_digit(16).expect("checked hex");
            out.push((hi * 16 + lo) as u8);
            i += 4;
        } else {
            out.push(bytes[i]);
            i += 1;
        }
    }
    String::from_utf8_lossy(&out).into_owned()
}

/// Incremental ssl.log writer: header on construction, one record at a
/// time, `#close` on [`SslLogWriter::finish`]. This is the sink side of
/// the streaming ingestion core — `certchain generate` writes records to
/// disk as they are emitted instead of materializing the full trace.
pub struct SslLogWriter<W: Write> {
    out: W,
    open: Asn1Time,
}

impl<W: Write> SslLogWriter<W> {
    /// Write the Zeek header and return the writer.
    pub fn new(mut out: W, open: Asn1Time) -> io::Result<SslLogWriter<W>> {
        write_header(&mut out, "ssl", SSL_FIELDS, open)?;
        Ok(SslLogWriter { out, open })
    }

    /// Append one data row.
    pub fn record(&mut self, r: &SslRecord) -> io::Result<()> {
        let fps: Vec<String> = r.cert_chain_fps.iter().map(|f| f.to_hex()).collect();
        let sni: Option<std::borrow::Cow<'_, str>> = r.server_name.as_deref().map(zeek_escape);
        writeln!(
            self.out,
            "{}\t{}\t{}\t{}\t{}\t{}\t{}\t{}\t{}\t{}",
            ts_str(r.ts),
            zeek_escape(&r.uid),
            r.orig_h,
            r.orig_p,
            r.resp_h,
            r.resp_p,
            r.version.as_str(),
            opt_str(sni.as_deref()),
            bool_str(r.established),
            vec_str(&fps),
        )
    }

    /// Write the `#close` footer and hand the inner writer back.
    pub fn finish(mut self) -> io::Result<W> {
        writeln!(self.out, "#close\t{}", self.open)?;
        Ok(self.out)
    }
}

/// Incremental x509.log writer; see [`SslLogWriter`].
pub struct X509LogWriter<W: Write> {
    out: W,
    open: Asn1Time,
}

impl<W: Write> X509LogWriter<W> {
    /// Write the Zeek header and return the writer.
    pub fn new(mut out: W, open: Asn1Time) -> io::Result<X509LogWriter<W>> {
        write_header(&mut out, "x509", X509_FIELDS, open)?;
        Ok(X509LogWriter { out, open })
    }

    /// Append one data row.
    pub fn record(&mut self, r: &X509Record) -> io::Result<()> {
        writeln!(
            self.out,
            "{}\t{}\t{}\t{}\t{}\t{}\t{}\t{}\t{}\t{}\t{}",
            ts_str(r.ts),
            r.fingerprint.to_hex(),
            r.cert_version,
            zeek_escape(&r.serial),
            zeek_escape(&r.subject),
            zeek_escape(&r.issuer),
            ts_str(r.not_before),
            ts_str(r.not_after),
            r.basic_constraints_ca.map(bool_str).unwrap_or("-"),
            r.path_len
                .map(|n| n.to_string())
                .unwrap_or_else(|| "-".to_string()),
            vec_str(&r.san_dns),
        )
    }

    /// Write the `#close` footer and hand the inner writer back.
    pub fn finish(mut self) -> io::Result<W> {
        writeln!(self.out, "#close\t{}", self.open)?;
        Ok(self.out)
    }
}

/// Write a complete ssl.log (batch adapter over [`SslLogWriter`]).
pub fn write_ssl_log(
    out: &mut impl Write,
    records: &[SslRecord],
    open: Asn1Time,
) -> io::Result<()> {
    let mut w = SslLogWriter::new(out, open)?;
    for r in records {
        w.record(r)?;
    }
    w.finish()?;
    Ok(())
}

/// Write a complete x509.log (batch adapter over [`X509LogWriter`]).
pub fn write_x509_log(
    out: &mut impl Write,
    records: &[X509Record],
    open: Asn1Time,
) -> io::Result<()> {
    let mut w = X509LogWriter::new(out, open)?;
    for r in records {
        w.record(r)?;
    }
    w.finish()?;
    Ok(())
}

/// Parse helpers shared with the reader.
pub(crate) mod parse {
    use certchain_asn1::Asn1Time;

    /// Parse Zeek's epoch-seconds timestamp.
    pub fn ts(s: &str) -> Option<Asn1Time> {
        let secs: f64 = s.parse().ok()?;
        if secs < 0.0 {
            return None;
        }
        Some(Asn1Time::from_unix(secs as u64))
    }

    /// Parse T/F.
    pub fn boolean(s: &str) -> Option<bool> {
        match s {
            "T" => Some(true),
            "F" => Some(false),
            _ => None,
        }
    }

    /// Parse an optional field ("-" = unset), undoing Zeek escapes.
    pub fn optional(s: &str) -> Option<String> {
        if s == "-" {
            None
        } else {
            Some(super::zeek_unescape(s))
        }
    }

    /// Parse a vector field ("(empty)" = empty), undoing Zeek escapes.
    pub fn vector(s: &str) -> Vec<String> {
        if s == "(empty)" || s == "-" {
            Vec::new()
        } else {
            s.split(',').map(super::zeek_unescape).collect()
        }
    }
}

/// Version string back to the enum.
pub fn parse_version(s: &str) -> Option<TlsVersion> {
    match s {
        "TLSv12" => Some(TlsVersion::Tls12),
        "TLSv13" => Some(TlsVersion::Tls13),
        _ => None,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use certchain_x509::Fingerprint;
    use std::net::Ipv4Addr;

    fn t() -> Asn1Time {
        Asn1Time::from_ymd_hms(2020, 9, 1, 0, 0, 0).unwrap()
    }

    fn ssl_record(established: bool) -> SslRecord {
        SslRecord {
            ts: t(),
            uid: "C0000000000000001".into(),
            orig_h: Ipv4Addr::new(128, 143, 1, 2),
            orig_p: 49152,
            resp_h: Ipv4Addr::new(203, 0, 113, 5),
            resp_p: 443,
            version: TlsVersion::Tls12,
            server_name: Some("example.org".into()),
            established,
            cert_chain_fps: vec![Fingerprint([0xab; 32])],
        }
    }

    #[test]
    fn ssl_log_format() {
        let mut buf = Vec::new();
        write_ssl_log(&mut buf, &[ssl_record(true)], t()).unwrap();
        let text = String::from_utf8(buf).unwrap();
        assert!(text.starts_with("#separator \\x09\n"));
        assert!(text.contains("#path\tssl\n"));
        assert!(text.contains("#fields\tts\tuid"));
        let row = text
            .lines()
            .find(|l| !l.starts_with('#'))
            .expect("one data row");
        let cols: Vec<&str> = row.split('\t').collect();
        assert_eq!(cols.len(), SSL_FIELDS.len());
        assert_eq!(cols[0], "1598918400.000000");
        assert_eq!(cols[6], "TLSv12");
        assert_eq!(cols[8], "T");
        assert_eq!(cols[9], Fingerprint([0xab; 32]).to_hex());
        assert!(text.trim_end().ends_with(&format!("#close\t{}", t())));
    }

    #[test]
    fn unset_and_empty_tokens() {
        let mut rec = ssl_record(false);
        rec.server_name = None;
        rec.cert_chain_fps.clear();
        let mut buf = Vec::new();
        write_ssl_log(&mut buf, &[rec], t()).unwrap();
        let text = String::from_utf8(buf).unwrap();
        let row = text.lines().find(|l| !l.starts_with('#')).unwrap();
        let cols: Vec<&str> = row.split('\t').collect();
        assert_eq!(cols[7], "-");
        assert_eq!(cols[8], "F");
        assert_eq!(cols[9], "(empty)");
    }

    #[test]
    fn x509_log_format() {
        let rec = X509Record {
            ts: t(),
            fingerprint: Fingerprint([1; 32]),
            cert_version: 3,
            serial: "0A".into(),
            subject: "CN=a, O=b".into(),
            issuer: "CN=ca".into(),
            not_before: t(),
            not_after: t().plus_days(90),
            basic_constraints_ca: None,
            path_len: None,
            san_dns: vec!["a.org".into(), "b.org".into()],
        };
        let mut buf = Vec::new();
        write_x509_log(&mut buf, &[rec], t()).unwrap();
        let text = String::from_utf8(buf).unwrap();
        let row = text.lines().find(|l| !l.starts_with('#')).unwrap();
        let cols: Vec<&str> = row.split('\t').collect();
        assert_eq!(cols.len(), X509_FIELDS.len());
        assert_eq!(cols[4], "CN=a, O=b");
        assert_eq!(cols[8], "-"); // absent basicConstraints
        assert_eq!(cols[10], "a.org,b.org");
    }

    #[test]
    fn zeek_escaping_round_trips() {
        for field in [
            "a\tb\nc",
            "-",
            "(empty)",
            "with, comma",
            "back\\slash",
            "plain",
        ] {
            let escaped = zeek_escape(field);
            assert!(!escaped.contains('\t') && !escaped.contains('\n'));
            assert_ne!(escaped, "-");
            assert_ne!(escaped, "(empty)");
            assert_eq!(zeek_unescape(&escaped), field, "field {field:?}");
            // Vector entries additionally protect the set separator.
            let vec_escaped = zeek_escape_vec_entry(field);
            assert!(!vec_escaped.contains(','));
            assert_eq!(zeek_unescape(&vec_escaped), field, "vec field {field:?}");
        }
        // Scalar fields keep commas readable (tab-separated anyway).
        assert_eq!(zeek_escape("CN=a, O=b"), "CN=a, O=b");
        // Non-ASCII UTF-8 must survive both directions untouched.
        for field in [
            "CN=Gr\u{fc}\u{df}e GmbH",
            "CN=\u{65e5}\u{672c}",
            "caf\u{e9}-\t-tab",
        ] {
            assert_eq!(zeek_unescape(&zeek_escape(field)), field, "{field:?}");
        }
        // Unescaped clean fields borrow (no allocation on the hot path).
        assert!(matches!(
            zeek_escape("plain"),
            std::borrow::Cow::Borrowed(_)
        ));
    }

    #[test]
    fn parse_helpers() {
        assert_eq!(
            parse::ts("1598918400.000000").unwrap().unix_secs(),
            1_598_918_400
        );
        assert!(parse::ts("nonsense").is_none());
        assert_eq!(parse::boolean("T"), Some(true));
        assert_eq!(parse::boolean("x"), None);
        assert_eq!(parse::optional("-"), None);
        assert_eq!(parse::optional("v").as_deref(), Some("v"));
        assert!(parse::vector("(empty)").is_empty());
        assert_eq!(parse::vector("a,b"), vec!["a", "b"]);
        assert_eq!(parse_version("TLSv12"), Some(TlsVersion::Tls12));
        assert_eq!(parse_version("SSLv3"), None);
    }
}
