//! Rotated Zeek log-file names: parsing and spool ordering.
//!
//! A border gateway running Zeek continuously rotates its logs hourly,
//! producing names like `ssl.2024-09-01-00.log.gz` — the exact shape of
//! the paper's 12-month campus corpus. `certchain serve` watches a spool
//! directory of such files and must fold them in a deterministic order
//! regardless of when they land, so both halves of that problem live
//! here as pure, unit-testable functions over *names* (no filesystem
//! access): [`parse_rotated_name`] recovers the table kind and the
//! rotation timestamp embedded in a file name, and [`order_spool`]
//! produces the canonical fold order for a batch of names.
//!
//! Unknown names are never an error — a spool directory accumulates
//! `conn.log`, editor droppings, and half-written temporaries, and the
//! paper's own loss-accounting stance (report what was skipped, keep
//! going) applies: callers get the unrecognized names back and tally
//! them.

use certchain_asn1::Asn1Time;

/// Which of the two analysis tables a rotated file feeds.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum LogKind {
    /// `x509.*` — certificate rows. Ordered before [`LogKind::Ssl`] at
    /// equal timestamps so certificates precede the connections that
    /// reference them, mirroring the batch pipeline's drain-x509-first
    /// staging.
    X509,
    /// `ssl.*` — connection rows.
    Ssl,
}

impl LogKind {
    /// The name prefix for this kind (`"ssl"` / `"x509"`).
    pub fn prefix(self) -> &'static str {
        match self {
            LogKind::Ssl => "ssl",
            LogKind::X509 => "x509",
        }
    }
}

/// A parsed rotated-log file name.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RotatedLog {
    /// Which table the file feeds.
    pub kind: LogKind,
    /// The rotation timestamp embedded in the name (start of the hour).
    pub timestamp: Asn1Time,
    /// Whether the name carries a `.gz` suffix. The workspace is
    /// hermetic (no decompressor), so callers currently skip compressed
    /// files with a loss tally rather than reading them.
    pub compressed: bool,
}

/// Parse a rotated Zeek log file name of the form
/// `<kind>.<YYYY-MM-DD-HH>.log[.gz]`, e.g. `ssl.2024-09-01-00.log.gz`.
///
/// Returns `None` — never panics — for anything else: other Zeek tables
/// (`conn.*`), malformed or out-of-range timestamps (month 13, hour 24),
/// missing `.log` suffix, or stray extensions. `None` is the caller's
/// cue to tally the name as skipped, not to abort.
pub fn parse_rotated_name(name: &str) -> Option<RotatedLog> {
    let (kind, rest) = if let Some(rest) = name.strip_prefix("ssl.") {
        (LogKind::Ssl, rest)
    } else if let Some(rest) = name.strip_prefix("x509.") {
        (LogKind::X509, rest)
    } else {
        return None;
    };
    let (rest, compressed) = match rest.strip_suffix(".gz") {
        Some(inner) => (inner, true),
        None => (rest, false),
    };
    let stamp = rest.strip_suffix(".log")?;
    let timestamp = parse_stamp(stamp)?;
    Some(RotatedLog {
        kind,
        timestamp,
        compressed,
    })
}

/// Parse the `YYYY-MM-DD-HH` rotation stamp. Range validation (months,
/// days per month including leap years, hours) is delegated to
/// [`Asn1Time::from_ymd_hms`], which already owns the calendar rules.
fn parse_stamp(stamp: &str) -> Option<Asn1Time> {
    let parts: Vec<&str> = stamp.split('-').collect();
    let [year, month, day, hour] = parts.as_slice() else {
        return None;
    };
    if year.len() != 4 || month.len() != 2 || day.len() != 2 || hour.len() != 2 {
        return None;
    }
    let num = |s: &str| -> Option<u64> {
        if s.bytes().all(|b| b.is_ascii_digit()) {
            s.parse().ok()
        } else {
            None
        }
    };
    Asn1Time::from_ymd_hms(num(year)?, num(month)?, num(day)?, num(hour)?, 0, 0).ok()
}

/// Canonical fold order over a batch of spool file names: recognized
/// files sorted by (timestamp, x509-before-ssl, name), plus the
/// unrecognized names (input order preserved) for loss accounting.
///
/// The ordering is what makes incremental serving deterministic: any
/// session that sees the same set of new files folds them identically,
/// and x509 files sort before ssl files of the same hour so certificate
/// rows are interned before the connections that reference them.
pub fn order_spool<'n, I>(names: I) -> (Vec<(RotatedLog, &'n str)>, Vec<&'n str>)
where
    I: IntoIterator<Item = &'n str>,
{
    let mut recognized: Vec<(RotatedLog, &'n str)> = Vec::new();
    let mut unrecognized: Vec<&'n str> = Vec::new();
    for name in names {
        match parse_rotated_name(name) {
            Some(parsed) => recognized.push((parsed, name)),
            None => unrecognized.push(name),
        }
    }
    recognized.sort_by(|(a, an), (b, bn)| {
        (a.timestamp.unix_secs(), a.kind, *an).cmp(&(b.timestamp.unix_secs(), b.kind, *bn))
    });
    (recognized, unrecognized)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_plain_and_compressed_names() {
        let parsed = parse_rotated_name("ssl.2024-09-01-00.log.gz").unwrap();
        assert_eq!(parsed.kind, LogKind::Ssl);
        assert!(parsed.compressed);
        assert_eq!(
            parsed.timestamp,
            Asn1Time::from_ymd_hms(2024, 9, 1, 0, 0, 0).unwrap()
        );

        let parsed = parse_rotated_name("x509.2024-12-31-23.log").unwrap();
        assert_eq!(parsed.kind, LogKind::X509);
        assert!(!parsed.compressed);
        assert_eq!(
            parsed.timestamp,
            Asn1Time::from_ymd_hms(2024, 12, 31, 23, 0, 0).unwrap()
        );
    }

    #[test]
    fn rejects_unknown_and_malformed_names() {
        for bad in [
            "conn.2024-09-01-00.log",      // other Zeek table
            "ssl.log",                     // unrotated
            "ssl.2024-09-01.log",          // missing hour
            "ssl.2024-09-01-24.log",       // hour out of range
            "ssl.2024-13-01-00.log",       // month out of range
            "ssl.2024-02-30-00.log",       // day out of range
            "ssl.2024-09-01-00.log.tmp",   // stray extension
            "ssl.2024-09-01-00.txt",       // wrong suffix
            "ssl.24-09-01-00.log",         // short year
            "ssl.2024-9-01-00.log",        // unpadded month
            "ssl.2024-09-01--0.log",       // negative-looking field
            "x509.2024-09-01-0a.log",      // non-digit
            "",                            // empty
            ".gz",                         // nothing but suffix
            "ssl.2024-09-01-00.log.gz.gz", // double suffix
        ] {
            assert_eq!(parse_rotated_name(bad), None, "{bad:?} must not parse");
        }
    }

    #[test]
    fn leap_day_parses() {
        assert!(parse_rotated_name("ssl.2024-02-29-12.log").is_some());
        assert_eq!(parse_rotated_name("ssl.2023-02-29-12.log"), None);
    }

    #[test]
    fn order_is_timestamp_then_x509_first_then_name() {
        let names = [
            "ssl.2024-09-01-01.log",
            "notes.txt",
            "x509.2024-09-01-01.log",
            "ssl.2024-09-01-00.log",
            "x509.2024-09-01-00.log",
            "conn.2024-09-01-00.log",
        ];
        let (ordered, skipped) = order_spool(names);
        let got: Vec<&str> = ordered.iter().map(|(_, n)| *n).collect();
        assert_eq!(
            got,
            [
                "x509.2024-09-01-00.log",
                "ssl.2024-09-01-00.log",
                "x509.2024-09-01-01.log",
                "ssl.2024-09-01-01.log",
            ]
        );
        assert_eq!(skipped, ["notes.txt", "conn.2024-09-01-00.log"]);
    }

    #[test]
    fn ordering_is_input_order_independent() {
        let mut names = [
            "ssl.2024-09-01-00.log",
            "ssl.2024-09-01-01.log",
            "x509.2024-09-01-00.log",
        ];
        let (a, _) = order_spool(names.iter().copied());
        names.reverse();
        let (b, _) = order_spool(names.iter().copied());
        assert_eq!(a, b);
    }
}
