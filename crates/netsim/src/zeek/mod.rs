//! Zeek-style log records and their TSV serialization.
//!
//! Zeek writes tab-separated logs with `#`-prefixed metadata headers; the
//! paper's pipeline consumes `ssl.log` and `x509.log` streamed off the
//! border gateway. This module reproduces the format closely enough that
//! the analysis code reads our synthetic logs exactly as it would read real
//! ones.

pub mod reader;
pub mod record;
pub mod rotated;
pub mod stream;
pub mod tsv;
