//! Whole-log Zeek TSV reading — collect-adapters over the streaming
//! readers in [`crate::zeek::stream`], plus a chunked parallel parse for
//! callers that already hold the full log text in memory.
//!
//! New code should prefer the streams (bounded memory); these entry points
//! exist so batch callers migrate incrementally and keep working.

use crate::zeek::record::{SslRecord, X509Record};
use crate::zeek::stream::{parse_ssl_row, parse_x509_row, FieldMap, SslLogStream, X509LogStream};

pub use crate::zeek::stream::ReadError;

use crate::zeek::stream::err;

/// Data rows of a Zeek log: (1-based line number, tab-split fields).
type DataRows<'a> = Vec<(usize, Vec<&'a str>)>;

/// Split a Zeek log into its field-index map and data rows. A data row
/// before the `#fields` header fails exactly like the streaming readers
/// (which cannot parse a row whose columns are still unknown), so batch
/// and stream reads of the same malformed log report the same error.
fn rows(text: &str) -> Result<(FieldMap, DataRows<'_>), ReadError> {
    let mut fields: Option<FieldMap> = None;
    let mut data = Vec::new();
    for (i, line) in text.lines().enumerate() {
        let lineno = i + 1;
        if let Some(rest) = line.strip_prefix("#fields\t") {
            fields = Some(
                rest.split('\t')
                    .enumerate()
                    .map(|(idx, name)| (name.to_string(), idx))
                    .collect(),
            );
        } else if line.starts_with('#') || line.is_empty() {
            continue;
        } else {
            if fields.is_none() {
                return Err(err(0, "missing #fields header"));
            }
            data.push((lineno, line.split('\t').collect()));
        }
    }
    let fields = fields.ok_or_else(|| err(0, "missing #fields header"))?;
    Ok((fields, data))
}

/// Parse every data row, chunked across `threads` worker threads.
///
/// Rows are split into contiguous chunks and results concatenated in chunk
/// order, so the output order matches the sequential parse. On failure the
/// error with the smallest line number is reported — each chunk stops at
/// its first bad row and chunks are contiguous, so that minimum is exactly
/// the error the sequential parse would have hit first.
fn parse_rows<T, F>(text: &str, threads: usize, parse_row: F) -> Result<Vec<T>, ReadError>
where
    T: Send,
    F: Fn(usize, &[&str], &FieldMap) -> Result<T, ReadError> + Sync,
{
    let (fields, data) = rows(text)?;
    let threads = if threads == 0 {
        // srclint: allow(det-thread-sensitivity) -- knob resolution only; rows are reassembled in input order regardless of count
        std::thread::available_parallelism()
            .map(|n| n.get())
            .unwrap_or(1)
    } else {
        threads
    };
    if threads <= 1 || data.len() < 2 {
        return data
            .iter()
            .map(|(line, row)| parse_row(*line, row, &fields))
            .collect();
    }
    let chunk = data.len().div_ceil(threads);
    let results: Vec<Result<Vec<T>, ReadError>> = std::thread::scope(|scope| {
        let handles: Vec<_> = data
            .chunks(chunk)
            .map(|part| {
                let (fields, parse_row) = (&fields, &parse_row);
                scope.spawn(move || {
                    part.iter()
                        .map(|(line, row)| parse_row(*line, row, fields))
                        .collect()
                })
            })
            .collect();
        handles
            .into_iter()
            .map(|h| h.join().expect("log parser thread panicked"))
            .collect()
    });
    let mut out = Vec::with_capacity(data.len());
    let mut first_err: Option<ReadError> = None;
    for res in results {
        match res {
            Ok(mut part) => out.append(&mut part),
            Err(e) if first_err.as_ref().map_or(true, |f| e.line < f.line) => first_err = Some(e),
            Err(_) => {}
        }
    }
    match first_err {
        Some(e) => Err(e),
        None => Ok(out),
    }
}

/// Parse a complete ssl.log: a thin collect-adapter over [`SslLogStream`].
pub fn read_ssl_log(text: &str) -> Result<Vec<SslRecord>, ReadError> {
    SslLogStream::new(text.as_bytes()).collect()
}

/// Parse a complete ssl.log on `threads` worker threads (`0` = available
/// parallelism, `1` = the streaming collect). Output — including any
/// reported error — is identical for every thread count.
pub fn read_ssl_log_with(text: &str, threads: usize) -> Result<Vec<SslRecord>, ReadError> {
    if threads == 1 {
        return read_ssl_log(text);
    }
    parse_rows(text, threads, parse_ssl_row)
}

/// Parse a complete x509.log: a thin collect-adapter over
/// [`X509LogStream`].
pub fn read_x509_log(text: &str) -> Result<Vec<X509Record>, ReadError> {
    X509LogStream::new(text.as_bytes()).collect()
}

/// Parse a complete x509.log on `threads` worker threads (`0` = available
/// parallelism, `1` = the streaming collect). Output — including any
/// reported error — is identical for every thread count.
pub fn read_x509_log_with(text: &str, threads: usize) -> Result<Vec<X509Record>, ReadError> {
    if threads == 1 {
        return read_x509_log(text);
    }
    parse_rows(text, threads, parse_x509_row)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::handshake::TlsVersion;
    use crate::zeek::tsv::{write_ssl_log, write_x509_log};
    use certchain_asn1::Asn1Time;
    use certchain_x509::Fingerprint;
    use std::net::Ipv4Addr;

    fn t() -> Asn1Time {
        Asn1Time::from_ymd_hms(2020, 9, 1, 0, 0, 0).unwrap()
    }

    fn ssl_samples() -> Vec<SslRecord> {
        vec![
            SslRecord {
                ts: t(),
                uid: "Cabc".into(),
                orig_h: Ipv4Addr::new(128, 143, 1, 2),
                orig_p: 50000,
                resp_h: Ipv4Addr::new(203, 0, 113, 5),
                resp_p: 443,
                version: TlsVersion::Tls12,
                server_name: Some("example.org".into()),
                established: true,
                cert_chain_fps: vec![Fingerprint([3; 32]), Fingerprint([4; 32])],
            },
            SslRecord {
                ts: t().plus_secs(30),
                uid: "Cdef".into(),
                orig_h: Ipv4Addr::new(128, 143, 1, 3),
                orig_p: 50001,
                resp_h: Ipv4Addr::new(203, 0, 113, 6),
                resp_p: 8013,
                version: TlsVersion::Tls13,
                server_name: None,
                established: false,
                cert_chain_fps: vec![],
            },
        ]
    }

    #[test]
    fn ssl_round_trip() {
        let records = ssl_samples();
        let mut buf = Vec::new();
        write_ssl_log(&mut buf, &records, t()).unwrap();
        let parsed = read_ssl_log(std::str::from_utf8(&buf).unwrap()).unwrap();
        assert_eq!(parsed, records);
    }

    #[test]
    fn x509_round_trip() {
        let records = vec![X509Record {
            ts: t(),
            fingerprint: Fingerprint([9; 32]),
            cert_version: 3,
            serial: "BEEF".into(),
            subject: "CN=a, O=b\\, Inc., C=US".into(),
            issuer: "CN=ca".into(),
            not_before: t(),
            not_after: t().plus_days(397),
            basic_constraints_ca: Some(true),
            path_len: Some(0),
            san_dns: vec!["a.org".into()],
        }];
        let mut buf = Vec::new();
        write_x509_log(&mut buf, &records, t()).unwrap();
        let parsed = read_x509_log(std::str::from_utf8(&buf).unwrap()).unwrap();
        assert_eq!(parsed, records);
    }

    #[test]
    fn missing_fields_header_is_error() {
        assert!(read_ssl_log("no header\n").is_err());
    }

    #[test]
    fn bad_row_reports_line_number() {
        let records = ssl_samples();
        let mut buf = Vec::new();
        write_ssl_log(&mut buf, &records, t()).unwrap();
        let mut text = String::from_utf8(buf).unwrap();
        // Corrupt the established column of the first data row.
        text = text.replace("\tT\t", "\tQ\t");
        let e = read_ssl_log(&text).unwrap_err();
        assert!(e.message.contains("established"), "{e}");
        assert!(
            e.line >= 8,
            "line numbers should skip headers, got {}",
            e.line
        );
    }

    #[test]
    fn parallel_parse_matches_sequential() {
        // Enough rows that an 8-way chunking actually splits the data.
        let records: Vec<SslRecord> = (0..64)
            .map(|i| {
                let mut r = ssl_samples()[0].clone();
                r.uid = format!("C{i:04}");
                r.orig_p = 40_000 + i as u16;
                r
            })
            .collect();
        let mut buf = Vec::new();
        write_ssl_log(&mut buf, &records, t()).unwrap();
        let text = std::str::from_utf8(&buf).unwrap();
        let seq = read_ssl_log_with(text, 1).unwrap();
        for threads in [2, 3, 8] {
            assert_eq!(read_ssl_log_with(text, threads).unwrap(), seq);
        }
    }

    #[test]
    fn parallel_parse_reports_the_earliest_error() {
        let records: Vec<SslRecord> = (0..32)
            .map(|i| {
                let mut r = ssl_samples()[0].clone();
                r.uid = format!("C{i:04}");
                r
            })
            .collect();
        let mut buf = Vec::new();
        write_ssl_log(&mut buf, &records, t()).unwrap();
        // Corrupt every data row's established column: every chunk fails,
        // and the reported line must still be the first bad one.
        let text = String::from_utf8(buf).unwrap().replace("\tT\t", "\tQ\t");
        let seq = read_ssl_log_with(&text, 1).unwrap_err();
        for threads in [2, 5, 8] {
            assert_eq!(read_ssl_log_with(&text, threads).unwrap_err(), seq);
        }
    }

    #[test]
    fn unordered_fields_are_handled() {
        // A log with fields in a different order (real Zeek deployments
        // customize field sets).
        let text = "#fields\tuid\tts\tid.orig_h\tid.orig_p\tid.resp_h\tid.resp_p\tversion\tserver_name\testablished\tcert_chain_fps\n\
            Cx\t1598918400.0\t1.2.3.4\t1\t5.6.7.8\t443\tTLSv12\t-\tT\t(empty)\n";
        let parsed = read_ssl_log(text).unwrap();
        assert_eq!(parsed[0].uid, "Cx");
        assert_eq!(parsed[0].ts.unix_secs(), 1_598_918_400);
    }
}
