//! Streaming Zeek TSV log readers: bounded-memory, line-at-a-time record
//! iterators over any [`BufRead`].
//!
//! This is the ingestion core the analysis pipeline consumes. A
//! [`SslLogStream`] / [`X509LogStream`] yields `Result<Record, ReadError>`
//! per data row, holding only the current line in memory — the whole-log
//! readers in [`crate::zeek::reader`] are thin collect-adapters over these
//! streams. Error semantics match the batch readers exactly: the first bad
//! row ends the stream with the same line number and message the batch
//! parse reports, and a log whose data starts before (or without) a
//! `#fields` header fails with the batch reader's `missing #fields header`
//! error.
//!
//! Real-world logs are messier than the synthetic corpus, and a
//! measurement pipeline must account for every record it drops. Each
//! stream therefore keeps [`StreamStats`] — lines read, records yielded,
//! malformed rows tallied by parse-failure reason — shared behind an
//! `Arc` so callers can read the tallies after the stream is consumed.
//! The `permissive` constructors additionally *skip* malformed data rows
//! instead of fusing (header problems stay fatal either way): that is
//! the loss-accounting mode `certchain analyze` runs in, with the counts
//! surfaced in its summary line and metrics snapshot.

use crate::zeek::record::{SslRecord, X509Record};
use crate::zeek::tsv::{parse, parse_version, zeek_unescape};
use certchain_x509::Fingerprint;
use std::collections::{BTreeMap, HashMap};
use std::fmt;
use std::io::BufRead;
use std::net::Ipv4Addr;
use std::sync::atomic::{AtomicU64, Ordering::Relaxed};
use std::sync::{Arc, Mutex};

/// A log-parsing failure with its line number.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ReadError {
    /// 1-based line number (0 for whole-file failures such as a missing
    /// `#fields` header).
    pub line: usize,
    /// What went wrong.
    pub message: String,
}

impl fmt::Display for ReadError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "line {}: {}", self.line, self.message)
    }
}

impl std::error::Error for ReadError {}

pub(crate) fn err(line: usize, message: impl Into<String>) -> ReadError {
    ReadError {
        line,
        message: message.into(),
    }
}

/// Field name → column index, from the `#fields` header.
pub(crate) type FieldMap = HashMap<String, usize>;

/// Look a named column up in a tab-split row.
pub(crate) fn col<'a>(
    row: &[&'a str],
    fields: &FieldMap,
    name: &str,
    line: usize,
) -> Result<&'a str, ReadError> {
    let idx = *fields
        .get(name)
        .ok_or_else(|| err(line, format!("missing field {name}")))?;
    row.get(idx)
        .copied()
        .ok_or_else(|| err(line, format!("row too short for field {name}")))
}

/// Parse one ssl.log data row.
pub(crate) fn parse_ssl_row(
    line: usize,
    row: &[&str],
    fields: &FieldMap,
) -> Result<SslRecord, ReadError> {
    let ts = parse::ts(col(row, fields, "ts", line)?).ok_or_else(|| err(line, "bad ts"))?;
    let uid = zeek_unescape(col(row, fields, "uid", line)?);
    let orig_h: Ipv4Addr = col(row, fields, "id.orig_h", line)?
        .parse()
        .map_err(|_| err(line, "bad id.orig_h"))?;
    let orig_p: u16 = col(row, fields, "id.orig_p", line)?
        .parse()
        .map_err(|_| err(line, "bad id.orig_p"))?;
    let resp_h: Ipv4Addr = col(row, fields, "id.resp_h", line)?
        .parse()
        .map_err(|_| err(line, "bad id.resp_h"))?;
    let resp_p: u16 = col(row, fields, "id.resp_p", line)?
        .parse()
        .map_err(|_| err(line, "bad id.resp_p"))?;
    let version = parse_version(col(row, fields, "version", line)?)
        .ok_or_else(|| err(line, "bad version"))?;
    let server_name = parse::optional(col(row, fields, "server_name", line)?);
    let established = parse::boolean(col(row, fields, "established", line)?)
        .ok_or_else(|| err(line, "bad established"))?;
    let cert_chain_fps = parse::vector(col(row, fields, "cert_chain_fps", line)?)
        .iter()
        .map(|h| Fingerprint::from_hex(h).ok_or_else(|| err(line, "bad fingerprint")))
        .collect::<Result<Vec<_>, _>>()?;
    Ok(SslRecord {
        ts,
        uid,
        orig_h,
        orig_p,
        resp_h,
        resp_p,
        version,
        server_name,
        established,
        cert_chain_fps,
    })
}

/// Parse one x509.log data row.
pub(crate) fn parse_x509_row(
    line: usize,
    row: &[&str],
    fields: &FieldMap,
) -> Result<X509Record, ReadError> {
    let ts = parse::ts(col(row, fields, "ts", line)?).ok_or_else(|| err(line, "bad ts"))?;
    let fingerprint = Fingerprint::from_hex(col(row, fields, "fingerprint", line)?)
        .ok_or_else(|| err(line, "bad fingerprint"))?;
    let cert_version: u64 = col(row, fields, "certificate.version", line)?
        .parse()
        .map_err(|_| err(line, "bad certificate.version"))?;
    let serial = zeek_unescape(col(row, fields, "certificate.serial", line)?);
    let subject = zeek_unescape(col(row, fields, "certificate.subject", line)?);
    let issuer = zeek_unescape(col(row, fields, "certificate.issuer", line)?);
    let not_before = parse::ts(col(row, fields, "certificate.not_valid_before", line)?)
        .ok_or_else(|| err(line, "bad not_valid_before"))?;
    let not_after = parse::ts(col(row, fields, "certificate.not_valid_after", line)?)
        .ok_or_else(|| err(line, "bad not_valid_after"))?;
    let basic_constraints_ca =
        match parse::optional(col(row, fields, "basic_constraints.ca", line)?) {
            None => None,
            Some(v) => {
                Some(parse::boolean(&v).ok_or_else(|| err(line, "bad basic_constraints.ca"))?)
            }
        };
    let path_len = match parse::optional(col(row, fields, "basic_constraints.path_len", line)?) {
        None => None,
        Some(v) => Some(
            v.parse()
                .map_err(|_| err(line, "bad basic_constraints.path_len"))?,
        ),
    };
    let san_dns = parse::vector(col(row, fields, "san.dns", line)?);
    Ok(X509Record {
        ts,
        fingerprint,
        cert_version,
        serial,
        subject,
        issuer,
        not_before,
        not_after,
        basic_constraints_ca,
        path_len,
        san_dns,
    })
}

/// Shared, thread-safe tallies for one log stream: the loss-accounting
/// ledger. Counts are exact (every input line lands in exactly one of
/// comment/record/malformed), so `lines = comments + records + malformed`
/// once the stream is exhausted.
#[derive(Debug, Default)]
pub struct StreamStats {
    lines: AtomicU64,
    records: AtomicU64,
    malformed: AtomicU64,
    by_reason: Mutex<BTreeMap<String, u64>>,
}

impl StreamStats {
    /// Input lines consumed, including headers and comments.
    pub fn lines(&self) -> u64 {
        self.lines.load(Relaxed)
    }

    /// Well-formed data rows yielded as records.
    pub fn records(&self) -> u64 {
        self.records.load(Relaxed)
    }

    /// Malformed data rows (skipped in permissive mode, fatal otherwise).
    pub fn malformed(&self) -> u64 {
        self.malformed.load(Relaxed)
    }

    /// Malformed-row tallies keyed by parse-failure reason (e.g.
    /// `bad ts`, `missing field server_name`), sorted by reason.
    pub fn malformed_by_reason(&self) -> BTreeMap<String, u64> {
        self.by_reason
            .lock()
            .expect("stream stats poisoned")
            .clone()
    }

    fn note_malformed(&self, reason: &str) {
        self.malformed.fetch_add(1, Relaxed);
        *self
            .by_reason
            .lock()
            .expect("stream stats poisoned")
            .entry(reason.to_string())
            .or_default() += 1;
    }
}

/// The streaming scaffolding shared by both log types: header handling,
/// line counting, comment skipping, and fused-after-error iteration. Only
/// one line is buffered at a time.
struct LogStream<R: BufRead, T> {
    reader: R,
    buf: String,
    lineno: usize,
    fields: Option<FieldMap>,
    done: bool,
    permissive: bool,
    stats: Arc<StreamStats>,
    parse_row: fn(usize, &[&str], &FieldMap) -> Result<T, ReadError>,
}

impl<R: BufRead, T> LogStream<R, T> {
    fn new(reader: R, parse_row: fn(usize, &[&str], &FieldMap) -> Result<T, ReadError>) -> Self {
        LogStream {
            reader,
            buf: String::new(),
            lineno: 0,
            fields: None,
            done: false,
            permissive: false,
            stats: Arc::new(StreamStats::default()),
            parse_row,
        }
    }

    fn permissive(
        reader: R,
        parse_row: fn(usize, &[&str], &FieldMap) -> Result<T, ReadError>,
    ) -> Self {
        let mut stream = LogStream::new(reader, parse_row);
        stream.permissive = true;
        stream
    }

    /// Yield the next record, an error (which fuses the stream), or `None`
    /// at end of input.
    fn next_record(&mut self) -> Option<Result<T, ReadError>> {
        if self.done {
            return None;
        }
        loop {
            self.buf.clear();
            match self.reader.read_line(&mut self.buf) {
                Ok(0) => {
                    self.done = true;
                    if self.fields.is_none() {
                        // Empty file, or a log with no `#fields` line at
                        // all: the batch reader reports this as a
                        // whole-file error with line 0.
                        return Some(Err(err(0, "missing #fields header")));
                    }
                    return None;
                }
                Ok(_) => {}
                Err(e) => {
                    self.done = true;
                    return Some(Err(err(self.lineno + 1, format!("io error: {e}"))));
                }
            }
            self.lineno += 1;
            self.stats.lines.fetch_add(1, Relaxed);
            // `str::lines` semantics: strip the newline and a trailing CR.
            let line = self.buf.strip_suffix('\n').unwrap_or(&self.buf);
            let line = line.strip_suffix('\r').unwrap_or(line);
            if let Some(rest) = line.strip_prefix("#fields\t") {
                self.fields = Some(
                    rest.split('\t')
                        .enumerate()
                        .map(|(idx, name)| (name.to_string(), idx))
                        .collect(),
                );
                continue;
            }
            if line.starts_with('#') || line.is_empty() {
                continue;
            }
            let Some(fields) = &self.fields else {
                self.done = true;
                return Some(Err(err(0, "missing #fields header")));
            };
            let row: Vec<&str> = line.split('\t').collect();
            match (self.parse_row)(self.lineno, &row, fields) {
                Ok(rec) => {
                    self.stats.records.fetch_add(1, Relaxed);
                    return Some(Ok(rec));
                }
                Err(e) => {
                    self.stats.note_malformed(&e.message);
                    if self.permissive {
                        // Loss-accounting mode: the row is tallied and
                        // skipped; the stream keeps going.
                        continue;
                    }
                    self.done = true;
                    return Some(Err(e));
                }
            }
        }
    }
}

/// Streaming ssl.log reader: yields one [`SslRecord`] per data row without
/// ever holding more than the current line in memory.
///
/// ```no_run
/// use certchain_netsim::zeek::stream::SslLogStream;
/// use std::io::BufReader;
/// let file = std::fs::File::open("ssl.log").unwrap();
/// for record in SslLogStream::new(BufReader::new(file)) {
///     let record = record.expect("well-formed row");
///     let _ = record.cert_chain_fps;
/// }
/// ```
pub struct SslLogStream<R: BufRead>(LogStream<R, SslRecord>);

impl<R: BufRead> SslLogStream<R> {
    /// Stream records from `reader`.
    pub fn new(reader: R) -> Self {
        SslLogStream(LogStream::new(reader, parse_ssl_row))
    }

    /// Stream records from `reader`, skipping (and tallying) malformed
    /// data rows instead of fusing. Header problems stay fatal.
    pub fn permissive(reader: R) -> Self {
        SslLogStream(LogStream::permissive(reader, parse_ssl_row))
    }

    /// The stream's loss-accounting tallies (shared; read them after the
    /// stream is consumed).
    pub fn stats(&self) -> Arc<StreamStats> {
        Arc::clone(&self.0.stats)
    }
}

impl<R: BufRead> Iterator for SslLogStream<R> {
    type Item = Result<SslRecord, ReadError>;

    fn next(&mut self) -> Option<Self::Item> {
        self.0.next_record()
    }
}

/// Streaming x509.log reader: yields one [`X509Record`] per data row.
pub struct X509LogStream<R: BufRead>(LogStream<R, X509Record>);

impl<R: BufRead> X509LogStream<R> {
    /// Stream records from `reader`.
    pub fn new(reader: R) -> Self {
        X509LogStream(LogStream::new(reader, parse_x509_row))
    }

    /// Stream records from `reader`, skipping (and tallying) malformed
    /// data rows instead of fusing. Header problems stay fatal.
    pub fn permissive(reader: R) -> Self {
        X509LogStream(LogStream::permissive(reader, parse_x509_row))
    }

    /// The stream's loss-accounting tallies (shared; read them after the
    /// stream is consumed).
    pub fn stats(&self) -> Arc<StreamStats> {
        Arc::clone(&self.0.stats)
    }
}

impl<R: BufRead> Iterator for X509LogStream<R> {
    type Item = Result<X509Record, ReadError>;

    fn next(&mut self) -> Option<Self::Item> {
        self.0.next_record()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::handshake::TlsVersion;
    use crate::zeek::tsv::{write_ssl_log, write_x509_log};
    use certchain_asn1::Asn1Time;

    fn t() -> Asn1Time {
        Asn1Time::from_ymd_hms(2020, 9, 1, 0, 0, 0).unwrap()
    }

    fn sample_ssl() -> SslRecord {
        SslRecord {
            ts: t(),
            uid: "Cabc".into(),
            orig_h: Ipv4Addr::new(128, 143, 1, 2),
            orig_p: 50000,
            resp_h: Ipv4Addr::new(203, 0, 113, 5),
            resp_p: 443,
            version: TlsVersion::Tls12,
            server_name: Some("example.org".into()),
            established: true,
            cert_chain_fps: vec![Fingerprint([3; 32])],
        }
    }

    #[test]
    fn stream_round_trips_ssl() {
        let records = vec![sample_ssl(), {
            let mut r = sample_ssl();
            r.uid = "Cdef".into();
            r.server_name = None;
            r.cert_chain_fps.clear();
            r
        }];
        let mut buf = Vec::new();
        write_ssl_log(&mut buf, &records, t()).unwrap();
        let parsed: Vec<SslRecord> = SslLogStream::new(buf.as_slice())
            .collect::<Result<_, _>>()
            .unwrap();
        assert_eq!(parsed, records);
    }

    #[test]
    fn stream_round_trips_x509() {
        let records = vec![X509Record {
            ts: t(),
            fingerprint: Fingerprint([9; 32]),
            cert_version: 3,
            serial: "BEEF".into(),
            subject: "CN=a, O=b\\, Inc., C=US".into(),
            issuer: "CN=ca".into(),
            not_before: t(),
            not_after: t().plus_days(397),
            basic_constraints_ca: Some(true),
            path_len: Some(0),
            san_dns: vec!["a.org".into()],
        }];
        let mut buf = Vec::new();
        write_x509_log(&mut buf, &records, t()).unwrap();
        let parsed: Vec<X509Record> = X509LogStream::new(buf.as_slice())
            .collect::<Result<_, _>>()
            .unwrap();
        assert_eq!(parsed, records);
    }

    #[test]
    fn stream_fuses_after_first_error() {
        let mut buf = Vec::new();
        write_ssl_log(&mut buf, &[sample_ssl(), sample_ssl()], t()).unwrap();
        // Corrupt both data rows' established column.
        let text = String::from_utf8(buf).unwrap().replace("\tT\t", "\tQ\t");
        let mut stream = SslLogStream::new(text.as_bytes());
        let first = stream.next().expect("one item");
        assert!(first.is_err());
        assert!(stream.next().is_none(), "stream is fused after an error");
    }

    #[test]
    fn permissive_stream_skips_and_tallies_malformed_rows() {
        let records = vec![sample_ssl(), sample_ssl(), sample_ssl()];
        let mut buf = Vec::new();
        write_ssl_log(&mut buf, &records, t()).unwrap();
        // Corrupt exactly the second data row's established column.
        let text = String::from_utf8(buf).unwrap();
        let mut seen = 0;
        let text: String = text
            .lines()
            .map(|l| {
                let mut l = l.to_string();
                if !l.starts_with('#') {
                    seen += 1;
                    if seen == 2 {
                        l = l.replace("\tT\t", "\tQ\t");
                    }
                }
                l + "\n"
            })
            .collect();
        let stream = SslLogStream::permissive(text.as_bytes());
        let stats = stream.stats();
        let parsed: Vec<SslRecord> = stream.collect::<Result<_, _>>().expect("no fatal errors");
        assert_eq!(parsed.len(), 2, "good rows still come through");
        assert_eq!(stats.records(), 2);
        assert_eq!(stats.malformed(), 1);
        let reasons = stats.malformed_by_reason();
        assert_eq!(reasons.get("bad established"), Some(&1));
        // Every line is accounted for: headers + 3 data rows.
        assert_eq!(
            stats.lines(),
            stats.records() + stats.malformed() + (stats.lines() - 3)
        );
    }

    #[test]
    fn permissive_stream_still_fails_on_missing_header() {
        let text = "no header here\n";
        let mut stream = SslLogStream::permissive(text.as_bytes());
        let first = stream.next().expect("one item");
        let e = first.expect_err("header problems stay fatal");
        assert_eq!(e.line, 0);
        assert!(e.message.contains("missing #fields header"));
    }

    #[test]
    fn strict_stream_tallies_the_fatal_row_too() {
        let mut buf = Vec::new();
        write_ssl_log(&mut buf, &[sample_ssl()], t()).unwrap();
        let text = String::from_utf8(buf).unwrap().replace("\tT\t", "\tQ\t");
        let stream = SslLogStream::new(text.as_bytes());
        let stats = stream.stats();
        let results: Vec<_> = stream.collect();
        assert_eq!(results.len(), 1);
        assert!(results[0].is_err());
        assert_eq!(stats.malformed(), 1);
        assert_eq!(stats.records(), 0);
    }

    #[test]
    fn permissive_x509_stream_skips_bad_fingerprints() {
        let records = vec![X509Record {
            ts: t(),
            fingerprint: Fingerprint([9; 32]),
            cert_version: 3,
            serial: "BEEF".into(),
            subject: "CN=a".into(),
            issuer: "CN=ca".into(),
            not_before: t(),
            not_after: t().plus_days(397),
            basic_constraints_ca: None,
            path_len: None,
            san_dns: vec![],
        }];
        let mut buf = Vec::new();
        write_x509_log(&mut buf, &records, t()).unwrap();
        let good = String::from_utf8(buf).unwrap();
        // Append a data row with a truncated fingerprint.
        let bad_row = good
            .lines()
            .find(|l| !l.starts_with('#'))
            .unwrap()
            .replacen(&Fingerprint([9; 32]).to_hex(), "abcd", 1);
        let text = format!("{good}{bad_row}\n");
        let stream = X509LogStream::permissive(text.as_bytes());
        let stats = stream.stats();
        let parsed: Vec<X509Record> = stream.collect::<Result<_, _>>().expect("no fatal errors");
        assert_eq!(parsed, records);
        assert_eq!(stats.malformed(), 1);
        assert_eq!(stats.malformed_by_reason().get("bad fingerprint"), Some(&1));
    }
}
