//! The two log record types the analysis consumes.

use crate::handshake::TlsVersion;
use certchain_asn1::Asn1Time;
use certchain_x509::{Certificate, Fingerprint};
use std::net::Ipv4Addr;

/// One `ssl.log` row: a TLS connection observed at the border.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SslRecord {
    /// Connection timestamp.
    pub ts: Asn1Time,
    /// Zeek connection uid.
    pub uid: String,
    /// Originator (client) address — NAT'd public address.
    pub orig_h: Ipv4Addr,
    /// Originator port.
    pub orig_p: u16,
    /// Responder (server) address.
    pub resp_h: Ipv4Addr,
    /// Responder port.
    pub resp_p: u16,
    /// Negotiated TLS version.
    pub version: TlsVersion,
    /// SNI, when the client sent one.
    pub server_name: Option<String>,
    /// Whether the handshake completed ("established" in Zeek ssl.log).
    pub established: bool,
    /// Fingerprints of the delivered chain, in delivery order. Empty for
    /// TLS 1.3 (chain not visible to the passive monitor).
    pub cert_chain_fps: Vec<Fingerprint>,
}

/// One `x509.log` row: a certificate seen in some handshake.
///
/// Deliberately carries **no public key or signature material**, mirroring
/// the fields available to the paper (§4.2). Everything the analysis does
/// with certificates must be possible from these fields alone.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct X509Record {
    /// First-seen timestamp.
    pub ts: Asn1Time,
    /// SHA-256 fingerprint (the join key with ssl.log).
    pub fingerprint: Fingerprint,
    /// X.509 version (1 or 3).
    pub cert_version: u64,
    /// Serial number, hex.
    pub serial: String,
    /// Subject DN in RFC 4514 form.
    pub subject: String,
    /// Issuer DN in RFC 4514 form.
    pub issuer: String,
    /// notBefore.
    pub not_before: Asn1Time,
    /// notAfter.
    pub not_after: Asn1Time,
    /// basicConstraints CA flag — `None` when the extension is absent,
    /// which the paper found for the majority of non-public-DB certs.
    pub basic_constraints_ca: Option<bool>,
    /// basicConstraints pathLen, when present.
    pub path_len: Option<u64>,
    /// subjectAltName dNSName entries.
    pub san_dns: Vec<String>,
}

impl X509Record {
    /// Project a certificate into the log schema.
    pub fn from_certificate(ts: Asn1Time, cert: &Certificate) -> X509Record {
        let bc = cert.basic_constraints();
        X509Record {
            ts,
            fingerprint: cert.fingerprint(),
            cert_version: cert.version + 1,
            serial: cert.serial.to_hex(),
            subject: cert.subject.to_rfc4514(),
            issuer: cert.issuer.to_rfc4514(),
            not_before: cert.validity.not_before,
            not_after: cert.validity.not_after,
            basic_constraints_ca: bc.map(|b| b.ca),
            path_len: bc.and_then(|b| b.path_len),
            san_dns: cert.dns_names().iter().map(|s| s.to_string()).collect(),
        }
    }

    /// Whether issuer and subject strings are identical — the log-level
    /// self-signed test the paper applies.
    pub fn is_self_signed(&self) -> bool {
        self.issuer == self.subject
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use certchain_cryptosim::KeyPair;
    use certchain_x509::{CertificateBuilder, DistinguishedName, Serial, Validity};

    #[test]
    fn projection_captures_fields_without_keys() {
        let kp = KeyPair::derive(1, "rec:ca");
        let leaf_key = KeyPair::derive(1, "rec:leaf");
        let start = Asn1Time::from_ymd_hms(2020, 9, 10, 0, 0, 0).unwrap();
        let cert = CertificateBuilder::new()
            .serial(Serial::from_u64(0xbeef))
            .issuer(DistinguishedName::cn_o("Rec CA", "Rec Org"))
            .subject(DistinguishedName::cn("rec.example.org"))
            .validity(Validity::days_from(start, 90))
            .public_key(leaf_key.public().clone())
            .leaf_for("rec.example.org")
            .sign(&kp);
        let rec = X509Record::from_certificate(start, &cert);
        assert_eq!(rec.fingerprint, cert.fingerprint());
        assert_eq!(rec.cert_version, 3);
        assert_eq!(rec.serial, "BEEF");
        assert_eq!(rec.subject, "CN=rec.example.org");
        assert_eq!(rec.issuer, "CN=Rec CA, O=Rec Org");
        assert_eq!(rec.basic_constraints_ca, Some(false));
        assert_eq!(rec.san_dns, vec!["rec.example.org"]);
        assert!(!rec.is_self_signed());
    }

    #[test]
    fn absent_basic_constraints_is_none() {
        let kp = KeyPair::derive(2, "rec:bare");
        let dn = DistinguishedName::cn("bare.device");
        let start = Asn1Time::from_ymd_hms(2020, 9, 10, 0, 0, 0).unwrap();
        let cert = CertificateBuilder::new()
            .issuer(dn.clone())
            .subject(dn)
            .validity(Validity::days_from(start, 30))
            .sign(&kp);
        let rec = X509Record::from_certificate(start, &cert);
        assert_eq!(rec.basic_constraints_ca, None);
        assert_eq!(rec.path_len, None);
        assert!(rec.is_self_signed());
    }
}
