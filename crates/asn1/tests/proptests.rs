//! Property-based tests for DER round-trips and decoder robustness.

use certchain_asn1::{writer::encode, Asn1Time, Decoder, Oid, Tag};
use proptest::prelude::*;

proptest! {
    #[test]
    fn integer_u64_round_trips(value: u64) {
        let der = encode(|e| e.integer_u64(value));
        let mut d = Decoder::new(&der);
        prop_assert_eq!(d.integer_u64().unwrap(), value);
        d.finish().unwrap();
    }

    #[test]
    fn octet_string_round_trips(bytes in proptest::collection::vec(any::<u8>(), 0..512)) {
        let der = encode(|e| e.octet_string(&bytes));
        let mut d = Decoder::new(&der);
        prop_assert_eq!(d.octet_string().unwrap(), bytes.as_slice());
    }

    #[test]
    fn bit_string_round_trips(bytes in proptest::collection::vec(any::<u8>(), 0..256)) {
        let der = encode(|e| e.bit_string(&bytes));
        let mut d = Decoder::new(&der);
        prop_assert_eq!(d.bit_string().unwrap(), bytes.as_slice());
    }

    #[test]
    fn utf8_string_round_trips(s in "\\PC{0,64}") {
        let der = encode(|e| e.utf8_string(&s));
        let mut d = Decoder::new(&der);
        prop_assert_eq!(d.directory_string().unwrap(), s.as_str());
    }

    #[test]
    fn oid_round_trips(
        first in 0u64..=2,
        second in 0u64..=39,
        rest in proptest::collection::vec(0u64..=u32::MAX as u64, 0..8),
    ) {
        let mut arcs = vec![first, second];
        arcs.extend(rest);
        let oid = Oid::from_arcs(&arcs).unwrap();
        prop_assert_eq!(oid.arcs(), arcs);
        let der = encode(|e| e.oid(&oid));
        let mut d = Decoder::new(&der);
        prop_assert_eq!(d.oid().unwrap(), oid);
    }

    #[test]
    fn time_round_trips(secs in 0u64..=4_102_444_799) {
        // Up to 2099-12-31; both UTCTime and GeneralizedTime forms occur.
        let t = Asn1Time::from_unix(secs);
        let der = encode(|e| e.time(t));
        let mut d = Decoder::new(&der);
        prop_assert_eq!(d.time().unwrap(), t);
    }

    #[test]
    fn nested_sequences_round_trip(values in proptest::collection::vec(any::<u64>(), 0..32)) {
        let der = encode(|e| e.sequence(|e| {
            for &v in &values {
                e.integer_u64(v);
            }
        }));
        let mut d = Decoder::new(&der);
        let decoded = d.sequence(|inner| {
            let mut out = Vec::new();
            while !inner.is_at_end() {
                out.push(inner.integer_u64()?);
            }
            Ok(out)
        }).unwrap();
        prop_assert_eq!(decoded, values);
    }

    /// The decoder must never panic on arbitrary bytes — it either decodes
    /// or returns a structured error.
    #[test]
    fn decoder_never_panics(bytes in proptest::collection::vec(any::<u8>(), 0..256)) {
        let mut d = Decoder::new(&bytes);
        while let Ok(tlv) = d.any() {
            // Walk constructed values one level deep too.
            if tlv.tag.is_constructed() {
                if let Ok(mut inner) = tlv.decoder() {
                    while inner.any().is_ok() {}
                }
            }
            if d.is_at_end() { break; }
        }
    }

    /// Truncating valid DER must produce an error, not a bogus value.
    #[test]
    fn truncation_is_detected(values in proptest::collection::vec(any::<u64>(), 1..16)) {
        let der = encode(|e| e.sequence(|e| {
            for &v in &values {
                e.integer_u64(v);
            }
        }));
        for cut in 1..der.len() {
            let truncated = &der[..cut];
            let mut d = Decoder::new(truncated);
            let result = d.sequence(|inner| {
                let mut out = Vec::new();
                while !inner.is_at_end() {
                    out.push(inner.integer_u64()?);
                }
                Ok(out)
            });
            prop_assert!(result.is_err(), "cut at {} decoded successfully", cut);
        }
    }
}

#[test]
fn tag_constants_are_distinct() {
    let tags = [
        Tag::BOOLEAN,
        Tag::INTEGER,
        Tag::BIT_STRING,
        Tag::OCTET_STRING,
        Tag::NULL,
        Tag::OBJECT_IDENTIFIER,
        Tag::UTF8_STRING,
        Tag::PRINTABLE_STRING,
        Tag::IA5_STRING,
        Tag::UTC_TIME,
        Tag::GENERALIZED_TIME,
        Tag::SEQUENCE,
        Tag::SET,
    ];
    let set: std::collections::HashSet<u8> = tags.iter().map(|t| t.byte()).collect();
    assert_eq!(set.len(), tags.len());
}
