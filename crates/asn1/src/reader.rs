//! Zero-copy DER decoder.

use crate::error::{Asn1Error, Asn1Result};
use crate::length::decode_length;
use crate::oid::Oid;
use crate::tag::Tag;
use crate::time::Asn1Time;

/// A decoded tag-length-value with a borrowed content slice.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Tlv<'a> {
    /// Decoded tag.
    pub tag: Tag,
    /// Content octets (no tag/length).
    pub content: &'a [u8],
    /// Offset of the tag octet from the start of the outermost buffer.
    pub offset: usize,
    /// Offset of the first content octet.
    pub content_offset: usize,
}

impl<'a> Tlv<'a> {
    /// Total encoded size of this TLV including tag and length octets.
    pub fn encoded_len(&self) -> usize {
        self.content_offset
            .saturating_sub(self.offset)
            .saturating_add(self.content.len())
    }

    /// Open this TLV as a constructed value and decode its body.
    pub fn decoder(&self) -> Asn1Result<Decoder<'a>> {
        if !self.tag.is_constructed() {
            return Err(Asn1Error::UnexpectedTag {
                offset: self.offset,
                expected: self.tag.byte() | 0x20,
                found: self.tag.byte(),
            });
        }
        Ok(Decoder {
            input: self.content,
            pos: 0,
            base: self.content_offset,
        })
    }
}

/// A cursor over DER-encoded bytes.
///
/// `base` tracks the absolute offset of `input[0]` so errors from nested
/// decoders still report positions relative to the original buffer.
#[derive(Debug, Clone)]
pub struct Decoder<'a> {
    input: &'a [u8],
    pos: usize,
    base: usize,
}

impl<'a> Decoder<'a> {
    /// Decode from the start of `input`.
    pub fn new(input: &'a [u8]) -> Decoder<'a> {
        Decoder {
            input,
            pos: 0,
            base: 0,
        }
    }

    /// Absolute offset of the next unread byte.
    pub fn offset(&self) -> usize {
        self.base.saturating_add(self.pos)
    }

    /// Whether the cursor has consumed all input.
    pub fn is_at_end(&self) -> bool {
        self.pos >= self.input.len()
    }

    /// Remaining unread bytes.
    pub fn remaining(&self) -> &'a [u8] {
        &self.input[self.pos..]
    }

    /// Fail unless all input was consumed.
    pub fn finish(&self) -> Asn1Result<()> {
        if self.is_at_end() {
            Ok(())
        } else {
            Err(Asn1Error::TrailingData {
                offset: self.offset(),
            })
        }
    }

    /// Peek the next tag without consuming anything.
    pub fn peek_tag(&self) -> Asn1Result<Tag> {
        let byte = *self.input.get(self.pos).ok_or(Asn1Error::UnexpectedEof {
            offset: self.offset(),
        })?;
        Tag::from_byte(byte).ok_or(Asn1Error::UnexpectedTag {
            offset: self.offset(),
            expected: 0,
            found: byte,
        })
    }

    /// Read the next TLV of any tag.
    ///
    /// All cursor arithmetic is checked: a decoded length near
    /// `usize::MAX` (attacker-controlled long-form octets) must surface
    /// as [`Asn1Error::LengthOverflow`], never wrap the slice bounds.
    pub fn any(&mut self) -> Asn1Result<Tlv<'a>> {
        let offset = self.offset();
        let tag = self.peek_tag()?;
        let len_pos = self.pos.saturating_add(1);
        let (len, len_octets) = decode_length(self.input, len_pos)?;
        let overflow = || Asn1Error::LengthOverflow {
            offset: self.base.saturating_add(len_pos),
            length: len,
        };
        let content_start = len_pos.checked_add(len_octets).ok_or_else(overflow)?;
        let content_end = content_start.checked_add(len).ok_or_else(overflow)?;
        let content = self
            .input
            .get(content_start..content_end)
            .ok_or_else(overflow)?;
        self.pos = content_end;
        Ok(Tlv {
            tag,
            content,
            offset,
            content_offset: self.base.saturating_add(content_start),
        })
    }

    /// Read the next TLV and require a specific tag.
    pub fn expect(&mut self, tag: Tag) -> Asn1Result<Tlv<'a>> {
        let offset = self.offset();
        let found = self.peek_tag()?;
        if found != tag {
            return Err(Asn1Error::UnexpectedTag {
                offset,
                expected: tag.byte(),
                found: found.byte(),
            });
        }
        self.any()
    }

    /// If the next tag matches, read it; otherwise leave the cursor alone.
    pub fn optional(&mut self, tag: Tag) -> Asn1Result<Option<Tlv<'a>>> {
        if self.is_at_end() {
            return Ok(None);
        }
        if self.peek_tag()? == tag {
            Ok(Some(self.any()?))
        } else {
            Ok(None)
        }
    }

    /// Open a SEQUENCE and decode its body with `body`, requiring the body
    /// to consume the sequence fully.
    pub fn sequence<T>(
        &mut self,
        body: impl FnOnce(&mut Decoder<'a>) -> Asn1Result<T>,
    ) -> Asn1Result<T> {
        let tlv = self.expect(Tag::SEQUENCE)?;
        let mut inner = tlv.decoder()?;
        let value = body(&mut inner)?;
        if !inner.is_at_end() {
            return Err(Asn1Error::UnconsumedContent {
                offset: inner.offset(),
            });
        }
        Ok(value)
    }

    /// BOOLEAN.
    pub fn boolean(&mut self) -> Asn1Result<bool> {
        let tlv = self.expect(Tag::BOOLEAN)?;
        match tlv.content {
            [0x00] => Ok(false),
            [0xff] => Ok(true),
            _ => Err(Asn1Error::InvalidBoolean { offset: tlv.offset }),
        }
    }

    /// INTEGER as u64 (errors when negative or too wide).
    pub fn integer_u64(&mut self) -> Asn1Result<u64> {
        let tlv = self.expect(Tag::INTEGER)?;
        integer_content_to_u64(tlv.content, tlv.offset)
    }

    /// INTEGER magnitude bytes (sign octet stripped). Errors on negatives.
    pub fn integer_bytes(&mut self) -> Asn1Result<&'a [u8]> {
        let tlv = self.expect(Tag::INTEGER)?;
        validate_integer(tlv.content, tlv.offset)?;
        if tlv.content[0] & 0x80 != 0 {
            return Err(Asn1Error::InvalidInteger { offset: tlv.offset });
        }
        if tlv.content.len() > 1 && tlv.content[0] == 0 {
            Ok(&tlv.content[1..])
        } else {
            Ok(tlv.content)
        }
    }

    /// BIT STRING; only octet-aligned strings (unused-bits = 0) are accepted,
    /// which covers everything X.509 uses.
    pub fn bit_string(&mut self) -> Asn1Result<&'a [u8]> {
        let tlv = self.expect(Tag::BIT_STRING)?;
        match tlv.content.split_first() {
            Some((0, rest)) => Ok(rest),
            _ => Err(Asn1Error::InvalidBitString { offset: tlv.offset }),
        }
    }

    /// OCTET STRING.
    pub fn octet_string(&mut self) -> Asn1Result<&'a [u8]> {
        Ok(self.expect(Tag::OCTET_STRING)?.content)
    }

    /// NULL.
    pub fn null(&mut self) -> Asn1Result<()> {
        let tlv = self.expect(Tag::NULL)?;
        if tlv.content.is_empty() {
            Ok(())
        } else {
            Err(Asn1Error::InvalidLength { offset: tlv.offset })
        }
    }

    /// OBJECT IDENTIFIER.
    pub fn oid(&mut self) -> Asn1Result<Oid> {
        let tlv = self.expect(Tag::OBJECT_IDENTIFIER)?;
        Oid::from_der_content(tlv.content, tlv.content_offset)
    }

    /// Any of the directory string types, returned as UTF-8.
    pub fn directory_string(&mut self) -> Asn1Result<&'a str> {
        let tlv = self.any()?;
        string_content(tlv)
    }

    /// UTCTime or GeneralizedTime.
    pub fn time(&mut self) -> Asn1Result<Asn1Time> {
        let tlv = self.any()?;
        match tlv.tag {
            Tag::UTC_TIME => Asn1Time::parse_utc_time(tlv.content, tlv.content_offset),
            Tag::GENERALIZED_TIME => {
                Asn1Time::parse_generalized_time(tlv.content, tlv.content_offset)
            }
            _ => Err(Asn1Error::UnexpectedTag {
                offset: tlv.offset,
                expected: Tag::UTC_TIME.byte(),
                found: tlv.tag.byte(),
            }),
        }
    }
}

fn validate_integer(content: &[u8], offset: usize) -> Asn1Result<()> {
    match content {
        [] => Err(Asn1Error::InvalidInteger { offset }),
        // Non-minimal: leading 0x00 followed by a byte without MSB set,
        // or leading 0xFF followed by a byte with MSB set.
        [0x00, second, ..] if second & 0x80 == 0 => Err(Asn1Error::InvalidInteger { offset }),
        [0xff, second, ..] if second & 0x80 != 0 => Err(Asn1Error::InvalidInteger { offset }),
        _ => Ok(()),
    }
}

fn integer_content_to_u64(content: &[u8], offset: usize) -> Asn1Result<u64> {
    validate_integer(content, offset)?;
    if content[0] & 0x80 != 0 {
        return Err(Asn1Error::InvalidInteger { offset }); // negative
    }
    let magnitude = if content.len() > 1 && content[0] == 0 {
        &content[1..]
    } else {
        content
    };
    if magnitude.len() > 8 {
        return Err(Asn1Error::InvalidInteger { offset });
    }
    let mut value = 0u64;
    for &b in magnitude {
        value = (value << 8) | b as u64;
    }
    Ok(value)
}

/// Extract the string payload of a directory-string-family TLV.
pub fn string_content<'a>(tlv: Tlv<'a>) -> Asn1Result<&'a str> {
    let s = std::str::from_utf8(tlv.content).map_err(|_| Asn1Error::InvalidString {
        offset: tlv.content_offset,
        kind: "UTF8String",
    })?;
    match tlv.tag {
        Tag::UTF8_STRING => Ok(s),
        Tag::PRINTABLE_STRING => {
            if is_printable(s) {
                Ok(s)
            } else {
                Err(Asn1Error::InvalidString {
                    offset: tlv.content_offset,
                    kind: "PrintableString",
                })
            }
        }
        Tag::IA5_STRING => {
            if s.is_ascii() {
                Ok(s)
            } else {
                Err(Asn1Error::InvalidString {
                    offset: tlv.content_offset,
                    kind: "IA5String",
                })
            }
        }
        _ => Err(Asn1Error::UnexpectedTag {
            offset: tlv.offset,
            expected: Tag::UTF8_STRING.byte(),
            found: tlv.tag.byte(),
        }),
    }
}

/// Whether `s` fits the ASN.1 PrintableString alphabet.
pub fn is_printable(s: &str) -> bool {
    s.bytes().all(|b| {
        b.is_ascii_alphanumeric()
            || matches!(
                b,
                b' ' | b'\'' | b'(' | b')' | b'+' | b',' | b'-' | b'.' | b'/' | b':' | b'=' | b'?'
            )
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::writer::encode;

    #[test]
    fn round_trip_primitives() {
        let der = encode(|e| e.boolean(true));
        assert!(Decoder::new(&der).boolean().unwrap());

        let der = encode(|e| e.integer_u64(1_598_918_400));
        assert_eq!(Decoder::new(&der).integer_u64().unwrap(), 1_598_918_400);

        let der = encode(|e| e.octet_string(b"zeek"));
        assert_eq!(Decoder::new(&der).octet_string().unwrap(), b"zeek");

        let der = encode(|e| e.null());
        Decoder::new(&der).null().unwrap();
    }

    #[test]
    fn round_trip_bit_string() {
        let der = encode(|e| e.bit_string(&[1, 2, 3]));
        assert_eq!(Decoder::new(&der).bit_string().unwrap(), &[1, 2, 3]);
    }

    #[test]
    fn round_trip_oid() {
        let oid = Oid::from_arcs(&[1, 3, 6, 1, 4, 1, 99999, 1, 1]).unwrap();
        let der = encode(|e| e.oid(&oid));
        assert_eq!(Decoder::new(&der).oid().unwrap(), oid);
    }

    #[test]
    fn round_trip_strings() {
        let der = encode(|e| e.utf8_string("Grüße"));
        let mut d = Decoder::new(&der);
        assert_eq!(d.directory_string().unwrap(), "Grüße");

        let der = encode(|e| e.printable_string("Acme Corp"));
        let mut d = Decoder::new(&der);
        assert_eq!(d.directory_string().unwrap(), "Acme Corp");

        let der = encode(|e| e.ia5_string("host.example.org"));
        let mut d = Decoder::new(&der);
        assert_eq!(d.directory_string().unwrap(), "host.example.org");
    }

    #[test]
    fn round_trip_time() {
        let t = Asn1Time::from_ymd_hms(2020, 9, 1, 0, 0, 0).unwrap();
        let der = encode(|e| e.time(t));
        assert_eq!(Decoder::new(&der).time().unwrap(), t);
    }

    #[test]
    fn sequence_requires_full_consumption() {
        let der = encode(|e| {
            e.sequence(|e| {
                e.integer_u64(1);
                e.integer_u64(2);
            })
        });
        let mut d = Decoder::new(&der);
        let err = d.sequence(|inner| inner.integer_u64()).unwrap_err();
        assert!(matches!(err, Asn1Error::UnconsumedContent { .. }));
    }

    #[test]
    fn optional_consumes_only_on_match() {
        let der = encode(|e| {
            e.explicit(3, |e| e.integer_u64(7));
            e.boolean(false);
        });
        let mut d = Decoder::new(&der);
        assert!(d.optional(Tag::context(1)).unwrap().is_none());
        let tlv = d.optional(Tag::context(3)).unwrap().unwrap();
        assert_eq!(tlv.decoder().unwrap().integer_u64().unwrap(), 7);
        assert!(!d.boolean().unwrap());
        d.finish().unwrap();
    }

    #[test]
    fn rejects_nonminimal_integer() {
        // 0x00 0x7f is non-minimal for 127.
        let bad = [0x02, 0x02, 0x00, 0x7f];
        assert!(matches!(
            Decoder::new(&bad).integer_u64(),
            Err(Asn1Error::InvalidInteger { .. })
        ));
    }

    #[test]
    fn rejects_negative_integer_as_u64() {
        let bad = [0x02, 0x01, 0x80];
        assert!(Decoder::new(&bad).integer_u64().is_err());
    }

    #[test]
    fn rejects_empty_integer() {
        let bad = [0x02, 0x00];
        assert!(Decoder::new(&bad).integer_u64().is_err());
    }

    #[test]
    fn rejects_bad_boolean() {
        let bad = [0x01, 0x01, 0x01];
        assert!(matches!(
            Decoder::new(&bad).boolean(),
            Err(Asn1Error::InvalidBoolean { .. })
        ));
    }

    #[test]
    fn rejects_overflowing_length() {
        let bad = [0x04, 0x05, 0x01];
        assert!(matches!(
            Decoder::new(&bad).octet_string(),
            Err(Asn1Error::LengthOverflow { .. })
        ));
    }

    #[test]
    fn huge_length_errors_instead_of_overflowing() {
        // Long-form length of usize::MAX: `content_start + len` would
        // wrap. Must come back as LengthOverflow, not a panic.
        let mut evil = vec![0x04, 0x88];
        evil.extend_from_slice(&[0xff; 8]);
        assert!(matches!(
            Decoder::new(&evil).any(),
            Err(Asn1Error::LengthOverflow { .. })
        ));
        // One below: still far beyond the buffer, same error.
        let mut big = vec![0x04, 0x88, 0xff];
        big.extend_from_slice(&[0xfe; 7]);
        assert!(matches!(
            Decoder::new(&big).any(),
            Err(Asn1Error::LengthOverflow { .. })
        ));
    }

    #[test]
    fn trailing_data_detected() {
        let der = encode(|e| {
            e.boolean(true);
            e.boolean(false);
        });
        let mut d = Decoder::new(&der);
        d.boolean().unwrap();
        assert!(matches!(
            d.finish(),
            Err(Asn1Error::TrailingData { offset: 3 })
        ));
    }

    #[test]
    fn nested_offsets_are_absolute() {
        // SEQUENCE { SEQUENCE { <bad boolean> } }
        let der = [0x30, 0x05, 0x30, 0x03, 0x01, 0x01, 0x02];
        let mut d = Decoder::new(&der);
        let err = d
            .sequence(|inner| inner.sequence(|inner2| inner2.boolean()))
            .unwrap_err();
        assert_eq!(err.offset(), Some(4));
    }

    #[test]
    fn integer_bytes_strips_sign_octet() {
        let der = encode(|e| e.integer_bytes(&[0x80, 0x01]));
        let mut d = Decoder::new(&der);
        assert_eq!(d.integer_bytes().unwrap(), &[0x80, 0x01]);
    }

    #[test]
    fn printable_charset() {
        assert!(is_printable("Let's Encrypt R3"));
        assert!(is_printable("O=Acme, C=US"));
        assert!(!is_printable("under_score"));
        assert!(!is_printable("at@sign"));
    }

    #[test]
    fn peek_does_not_consume() {
        let der = encode(|e| e.boolean(true));
        let mut d = Decoder::new(&der);
        assert_eq!(d.peek_tag().unwrap(), Tag::BOOLEAN);
        assert!(d.boolean().unwrap());
    }
}
