//! DER definite-length encoding and decoding.
//!
//! DER requires definite lengths in the minimal number of octets: short form
//! for lengths 0..=127, long form with the minimum number of base-256 digits
//! otherwise.

use crate::error::{Asn1Error, Asn1Result};

/// Append the DER encoding of `len` to `out`.
pub fn encode_length(out: &mut Vec<u8>, len: usize) {
    if len < 0x80 {
        out.push(len as u8);
        return;
    }
    let mut digits = [0u8; std::mem::size_of::<usize>()];
    let mut n = len;
    let mut count = 0;
    while n > 0 {
        digits[count] = (n & 0xff) as u8;
        n >>= 8;
        count += 1;
    }
    out.push(0x80 | count as u8);
    for i in (0..count).rev() {
        out.push(digits[i]);
    }
}

/// Number of octets [`encode_length`] will produce for `len`.
pub fn length_of_length(len: usize) -> usize {
    if len < 0x80 {
        1
    } else {
        let bits = usize::BITS - len.leading_zeros();
        1 + bits.div_ceil(8) as usize
    }
}

/// Decode a DER length starting at `input[pos]`.
///
/// Returns `(length, bytes_consumed)`. Rejects indefinite lengths and
/// non-minimal long-form encodings, as DER requires.
pub fn decode_length(input: &[u8], pos: usize) -> Asn1Result<(usize, usize)> {
    let first = *input
        .get(pos)
        .ok_or(Asn1Error::UnexpectedEof { offset: pos })?;
    if first < 0x80 {
        return Ok((first as usize, 1));
    }
    if first == 0x80 {
        // Indefinite length: BER-only, forbidden in DER.
        return Err(Asn1Error::InvalidLength { offset: pos });
    }
    let count = (first & 0x7f) as usize;
    if count > std::mem::size_of::<usize>() {
        return Err(Asn1Error::InvalidLength { offset: pos });
    }
    let bytes = input
        .get(pos + 1..pos + 1 + count)
        .ok_or(Asn1Error::UnexpectedEof { offset: pos })?;
    if bytes[0] == 0 {
        // Leading zero digit: non-minimal.
        return Err(Asn1Error::InvalidLength { offset: pos });
    }
    let mut len = 0usize;
    for &b in bytes {
        len = (len << 8) | b as usize;
    }
    if len < 0x80 {
        // Long form used where short form suffices: non-minimal.
        return Err(Asn1Error::InvalidLength { offset: pos });
    }
    Ok((len, 1 + count))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn enc(len: usize) -> Vec<u8> {
        let mut v = Vec::new();
        encode_length(&mut v, len);
        v
    }

    #[test]
    fn short_form() {
        assert_eq!(enc(0), [0x00]);
        assert_eq!(enc(1), [0x01]);
        assert_eq!(enc(127), [0x7f]);
    }

    #[test]
    fn long_form() {
        assert_eq!(enc(128), [0x81, 0x80]);
        assert_eq!(enc(255), [0x81, 0xff]);
        assert_eq!(enc(256), [0x82, 0x01, 0x00]);
        assert_eq!(enc(65535), [0x82, 0xff, 0xff]);
        assert_eq!(enc(65536), [0x83, 0x01, 0x00, 0x00]);
    }

    #[test]
    fn round_trip() {
        for len in [
            0usize,
            1,
            42,
            127,
            128,
            129,
            255,
            256,
            1000,
            1 << 20,
            usize::MAX >> 8,
        ] {
            let buf = enc(len);
            let (decoded, consumed) = decode_length(&buf, 0).unwrap();
            assert_eq!(decoded, len);
            assert_eq!(consumed, buf.len());
            assert_eq!(length_of_length(len), buf.len());
        }
    }

    #[test]
    fn rejects_indefinite() {
        assert_eq!(
            decode_length(&[0x80], 0),
            Err(Asn1Error::InvalidLength { offset: 0 })
        );
    }

    #[test]
    fn rejects_non_minimal() {
        // 0x7f encoded in long form.
        assert!(decode_length(&[0x81, 0x7f], 0).is_err());
        // Leading zero digit.
        assert!(decode_length(&[0x82, 0x00, 0xff], 0).is_err());
    }

    #[test]
    fn rejects_truncated() {
        assert!(decode_length(&[], 0).is_err());
        assert!(decode_length(&[0x82, 0x01], 0).is_err());
    }

    #[test]
    fn rejects_oversize_count() {
        let mut buf = vec![0x80 | 9];
        buf.extend_from_slice(&[0xff; 9]);
        assert!(decode_length(&buf, 0).is_err());
    }

    #[test]
    fn offset_is_reported() {
        let err = decode_length(&[0x00, 0x80], 1).unwrap_err();
        assert_eq!(err.offset(), Some(1));
    }
}
