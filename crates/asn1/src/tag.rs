//! ASN.1 identifier octets (single-byte tags only, which covers X.509).

/// Tag class, the top two bits of the identifier octet.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Class {
    /// Universal class (the standard ASN.1 types).
    Universal,
    /// Application class.
    Application,
    /// Context-specific class (`[n]` tags).
    ContextSpecific,
    /// Private class.
    Private,
}

impl Class {
    fn from_bits(byte: u8) -> Class {
        match byte & 0b1100_0000 {
            0b0000_0000 => Class::Universal,
            0b0100_0000 => Class::Application,
            0b1000_0000 => Class::ContextSpecific,
            _ => Class::Private,
        }
    }
}

/// A single-octet ASN.1 tag (tag numbers 0..=30).
///
/// X.509 never uses multi-byte (high-tag-number) form, so this crate rejects
/// identifier octets with tag number 31.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct Tag {
    byte: u8,
}

impl Tag {
    /// BOOLEAN.
    pub const BOOLEAN: Tag = Tag::universal(0x01, false);
    /// INTEGER.
    pub const INTEGER: Tag = Tag::universal(0x02, false);
    /// BIT STRING.
    pub const BIT_STRING: Tag = Tag::universal(0x03, false);
    /// OCTET STRING.
    pub const OCTET_STRING: Tag = Tag::universal(0x04, false);
    /// NULL.
    pub const NULL: Tag = Tag::universal(0x05, false);
    /// OBJECT IDENTIFIER.
    pub const OBJECT_IDENTIFIER: Tag = Tag::universal(0x06, false);
    /// UTF8String.
    pub const UTF8_STRING: Tag = Tag::universal(0x0c, false);
    /// PrintableString.
    pub const PRINTABLE_STRING: Tag = Tag::universal(0x13, false);
    /// IA5String (ASCII).
    pub const IA5_STRING: Tag = Tag::universal(0x16, false);
    /// UTCTime.
    pub const UTC_TIME: Tag = Tag::universal(0x17, false);
    /// GeneralizedTime.
    pub const GENERALIZED_TIME: Tag = Tag::universal(0x18, false);
    /// SEQUENCE (constructed).
    pub const SEQUENCE: Tag = Tag::universal(0x10, true);
    /// SET (constructed).
    pub const SET: Tag = Tag::universal(0x11, true);

    /// Build a universal-class tag.
    pub const fn universal(number: u8, constructed: bool) -> Tag {
        debug_assert!(number < 31);
        Tag {
            byte: number | if constructed { 0b0010_0000 } else { 0 },
        }
    }

    /// Context-specific tag `[n]`, constructed form (used for `EXPLICIT`).
    pub const fn context(number: u8) -> Tag {
        debug_assert!(number < 31);
        Tag {
            byte: 0b1010_0000 | number,
        }
    }

    /// Context-specific tag `[n]`, primitive form (used for `IMPLICIT`
    /// retagging of primitive types, e.g. SAN `dNSName [2] IA5String`).
    pub const fn context_primitive(number: u8) -> Tag {
        debug_assert!(number < 31);
        Tag {
            byte: 0b1000_0000 | number,
        }
    }

    /// Reconstruct a tag from a raw identifier octet.
    ///
    /// Returns `None` for high-tag-number form (tag number 31), which this
    /// crate does not support.
    pub fn from_byte(byte: u8) -> Option<Tag> {
        if byte & 0b0001_1111 == 31 {
            None
        } else {
            Some(Tag { byte })
        }
    }

    /// Raw identifier octet.
    pub const fn byte(self) -> u8 {
        self.byte
    }

    /// Tag number (0..=30).
    pub const fn number(self) -> u8 {
        self.byte & 0b0001_1111
    }

    /// Whether the constructed bit is set.
    pub const fn is_constructed(self) -> bool {
        self.byte & 0b0010_0000 != 0
    }

    /// Tag class.
    pub fn class(self) -> Class {
        Class::from_bits(self.byte)
    }

    /// Whether this tag is the context-specific tag `[n]` in either form.
    pub fn is_context(self, number: u8) -> bool {
        self.class() == Class::ContextSpecific && self.number() == number
    }
}

impl std::fmt::Display for Tag {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match (*self, self.class()) {
            (Tag::BOOLEAN, _) => write!(f, "BOOLEAN"),
            (Tag::INTEGER, _) => write!(f, "INTEGER"),
            (Tag::BIT_STRING, _) => write!(f, "BIT STRING"),
            (Tag::OCTET_STRING, _) => write!(f, "OCTET STRING"),
            (Tag::NULL, _) => write!(f, "NULL"),
            (Tag::OBJECT_IDENTIFIER, _) => write!(f, "OBJECT IDENTIFIER"),
            (Tag::UTF8_STRING, _) => write!(f, "UTF8String"),
            (Tag::PRINTABLE_STRING, _) => write!(f, "PrintableString"),
            (Tag::IA5_STRING, _) => write!(f, "IA5String"),
            (Tag::UTC_TIME, _) => write!(f, "UTCTime"),
            (Tag::GENERALIZED_TIME, _) => write!(f, "GeneralizedTime"),
            (Tag::SEQUENCE, _) => write!(f, "SEQUENCE"),
            (Tag::SET, _) => write!(f, "SET"),
            (_, Class::ContextSpecific) => write!(f, "[{}]", self.number()),
            _ => write!(f, "tag {:#04x}", self.byte),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn universal_tag_bytes_match_der() {
        assert_eq!(Tag::SEQUENCE.byte(), 0x30);
        assert_eq!(Tag::SET.byte(), 0x31);
        assert_eq!(Tag::INTEGER.byte(), 0x02);
        assert_eq!(Tag::OBJECT_IDENTIFIER.byte(), 0x06);
        assert_eq!(Tag::UTC_TIME.byte(), 0x17);
    }

    #[test]
    fn context_tags() {
        let t = Tag::context(3);
        assert_eq!(t.byte(), 0xa3);
        assert!(t.is_constructed());
        assert!(t.is_context(3));
        assert_eq!(t.class(), Class::ContextSpecific);

        let p = Tag::context_primitive(2);
        assert_eq!(p.byte(), 0x82);
        assert!(!p.is_constructed());
        assert!(p.is_context(2));
    }

    #[test]
    fn from_byte_rejects_high_tag_number() {
        assert!(Tag::from_byte(0x1f).is_none());
        assert!(Tag::from_byte(0xbf).is_none());
        assert_eq!(Tag::from_byte(0x30), Some(Tag::SEQUENCE));
    }

    #[test]
    fn display_names() {
        assert_eq!(Tag::SEQUENCE.to_string(), "SEQUENCE");
        assert_eq!(Tag::context(0).to_string(), "[0]");
    }

    #[test]
    fn round_trip_all_supported_bytes() {
        for b in 0..=u8::MAX {
            if b & 0x1f == 31 {
                continue;
            }
            let t = Tag::from_byte(b).unwrap();
            assert_eq!(t.byte(), b);
        }
    }
}
