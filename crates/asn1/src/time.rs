//! ASN.1 time values: a minimal proleptic-Gregorian calendar plus the
//! UTCTime / GeneralizedTime textual forms DER requires.
//!
//! The simulator never consults wall-clock time; all timestamps are explicit
//! `u64` seconds since the Unix epoch (`SimTime` in the netsim crate wraps
//! the same representation).

use crate::error::{Asn1Error, Asn1Result};
use std::fmt;

/// A UTC timestamp with second resolution.
///
/// Internally a count of seconds since 1970-01-01T00:00:00Z. Supports the
/// 1950..=9999 year range (UTCTime's window plus GeneralizedTime's range as
/// used in certificates; dates before 1970 are not needed by the simulator
/// and are rejected).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct Asn1Time {
    unix_secs: u64,
}

const DAYS_PER_MONTH: [u64; 12] = [31, 28, 31, 30, 31, 30, 31, 31, 30, 31, 30, 31];

fn is_leap(year: u64) -> bool {
    (year % 4 == 0 && year % 100 != 0) || year % 400 == 0
}

fn days_in_month(year: u64, month: u64) -> u64 {
    if month == 2 && is_leap(year) {
        29
    } else {
        DAYS_PER_MONTH[(month - 1) as usize]
    }
}

fn days_in_year(year: u64) -> u64 {
    if is_leap(year) {
        366
    } else {
        365
    }
}

impl Asn1Time {
    /// Construct from seconds since the Unix epoch.
    pub const fn from_unix(unix_secs: u64) -> Asn1Time {
        Asn1Time { unix_secs }
    }

    /// Construct from calendar components (UTC).
    pub fn from_ymd_hms(
        year: u64,
        month: u64,
        day: u64,
        hour: u64,
        min: u64,
        sec: u64,
    ) -> Asn1Result<Asn1Time> {
        if !(1970..=9999).contains(&year)
            || !(1..=12).contains(&month)
            || day == 0
            || day > days_in_month(year, month)
            || hour > 23
            || min > 59
            || sec > 59
        {
            return Err(Asn1Error::InvalidTime { offset: 0 });
        }
        let mut days: u64 = 0;
        for y in 1970..year {
            days += days_in_year(y);
        }
        for m in 1..month {
            days += days_in_month(year, m);
        }
        days += day - 1;
        Ok(Asn1Time {
            unix_secs: days * 86_400 + hour * 3_600 + min * 60 + sec,
        })
    }

    /// Seconds since the Unix epoch.
    pub const fn unix_secs(&self) -> u64 {
        self.unix_secs
    }

    /// Decompose into `(year, month, day, hour, min, sec)` in UTC.
    pub fn to_ymd_hms(&self) -> (u64, u64, u64, u64, u64, u64) {
        let mut days = self.unix_secs / 86_400;
        let rem = self.unix_secs % 86_400;
        let mut year = 1970;
        while days >= days_in_year(year) {
            days -= days_in_year(year);
            year += 1;
        }
        let mut month = 1;
        while days >= days_in_month(year, month) {
            days -= days_in_month(year, month);
            month += 1;
        }
        (
            year,
            month,
            days + 1,
            rem / 3_600,
            (rem % 3_600) / 60,
            rem % 60,
        )
    }

    /// Add a duration in whole days.
    pub fn plus_days(&self, days: u64) -> Asn1Time {
        Asn1Time {
            unix_secs: self.unix_secs + days * 86_400,
        }
    }

    /// Add a duration in seconds.
    pub fn plus_secs(&self, secs: u64) -> Asn1Time {
        Asn1Time {
            unix_secs: self.unix_secs + secs,
        }
    }

    /// Whether RFC 5280 says this date must be encoded as UTCTime
    /// (dates through 2049) rather than GeneralizedTime.
    pub fn uses_utc_time(&self) -> bool {
        self.to_ymd_hms().0 <= 2049
    }

    /// Render as DER UTCTime content (`YYMMDDHHMMSSZ`).
    pub fn to_utc_time_string(&self) -> String {
        let (y, mo, d, h, mi, s) = self.to_ymd_hms();
        format!("{:02}{mo:02}{d:02}{h:02}{mi:02}{s:02}Z", y % 100)
    }

    /// Render as DER GeneralizedTime content (`YYYYMMDDHHMMSSZ`).
    pub fn to_generalized_time_string(&self) -> String {
        let (y, mo, d, h, mi, s) = self.to_ymd_hms();
        format!("{y:04}{mo:02}{d:02}{h:02}{mi:02}{s:02}Z")
    }

    /// Parse DER UTCTime content. Two-digit years follow the RFC 5280 rule:
    /// 00..=49 → 20xx, 50..=99 → 19xx (pre-1970 is rejected by this crate).
    pub fn parse_utc_time(content: &[u8], offset: usize) -> Asn1Result<Asn1Time> {
        let s = std::str::from_utf8(content).map_err(|_| Asn1Error::InvalidTime { offset })?;
        if s.len() != 13 || !s.ends_with('Z') {
            return Err(Asn1Error::InvalidTime { offset });
        }
        let d = |r: std::ops::Range<usize>| -> Asn1Result<u64> {
            s[r].parse().map_err(|_| Asn1Error::InvalidTime { offset })
        };
        let yy = d(0..2)?;
        let year = if yy <= 49 { 2000 + yy } else { 1900 + yy };
        Asn1Time::from_ymd_hms(year, d(2..4)?, d(4..6)?, d(6..8)?, d(8..10)?, d(10..12)?)
            .map_err(|_| Asn1Error::InvalidTime { offset })
    }

    /// Parse DER GeneralizedTime content (`YYYYMMDDHHMMSSZ`).
    pub fn parse_generalized_time(content: &[u8], offset: usize) -> Asn1Result<Asn1Time> {
        let s = std::str::from_utf8(content).map_err(|_| Asn1Error::InvalidTime { offset })?;
        if s.len() != 15 || !s.ends_with('Z') {
            return Err(Asn1Error::InvalidTime { offset });
        }
        let d = |r: std::ops::Range<usize>| -> Asn1Result<u64> {
            s[r].parse().map_err(|_| Asn1Error::InvalidTime { offset })
        };
        Asn1Time::from_ymd_hms(
            d(0..4)?,
            d(4..6)?,
            d(6..8)?,
            d(8..10)?,
            d(10..12)?,
            d(12..14)?,
        )
        .map_err(|_| Asn1Error::InvalidTime { offset })
    }
}

impl fmt::Display for Asn1Time {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let (y, mo, d, h, mi, s) = self.to_ymd_hms();
        write!(f, "{y:04}-{mo:02}-{d:02}T{h:02}:{mi:02}:{s:02}Z")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn epoch() {
        let t = Asn1Time::from_unix(0);
        assert_eq!(t.to_ymd_hms(), (1970, 1, 1, 0, 0, 0));
        assert_eq!(t.to_string(), "1970-01-01T00:00:00Z");
    }

    #[test]
    fn known_timestamps() {
        // 2020-09-01T00:00:00Z — start of the paper's collection window.
        let t = Asn1Time::from_ymd_hms(2020, 9, 1, 0, 0, 0).unwrap();
        assert_eq!(t.unix_secs(), 1_598_918_400);
        // 2021-08-31T23:59:59Z — end of the window.
        let t = Asn1Time::from_ymd_hms(2021, 8, 31, 23, 59, 59).unwrap();
        assert_eq!(t.unix_secs(), 1_630_454_399);
        // 2024-11-01T00:00:00Z — the retrospective scan.
        let t = Asn1Time::from_ymd_hms(2024, 11, 1, 0, 0, 0).unwrap();
        assert_eq!(t.unix_secs(), 1_730_419_200);
    }

    #[test]
    fn leap_year_handling() {
        let t = Asn1Time::from_ymd_hms(2020, 2, 29, 12, 0, 0).unwrap();
        assert_eq!(t.to_ymd_hms(), (2020, 2, 29, 12, 0, 0));
        assert!(Asn1Time::from_ymd_hms(2021, 2, 29, 0, 0, 0).is_err());
        assert!(Asn1Time::from_ymd_hms(1900, 2, 29, 0, 0, 0).is_err());
    }

    #[test]
    fn round_trip_decompose() {
        for secs in [0u64, 1, 86_399, 86_400, 1_598_918_400, 4_102_444_800] {
            let t = Asn1Time::from_unix(secs);
            let (y, mo, d, h, mi, s) = t.to_ymd_hms();
            assert_eq!(
                Asn1Time::from_ymd_hms(y, mo, d, h, mi, s)
                    .unwrap()
                    .unix_secs(),
                secs
            );
        }
    }

    #[test]
    fn utc_time_strings() {
        let t = Asn1Time::from_ymd_hms(2020, 9, 1, 8, 30, 15).unwrap();
        assert_eq!(t.to_utc_time_string(), "200901083015Z");
        assert_eq!(t.to_generalized_time_string(), "20200901083015Z");
        assert!(t.uses_utc_time());
        let far = Asn1Time::from_ymd_hms(2050, 1, 1, 0, 0, 0).unwrap();
        assert!(!far.uses_utc_time());
    }

    #[test]
    fn parse_utc_time_round_trip() {
        let t = Asn1Time::from_ymd_hms(2021, 3, 14, 1, 59, 26).unwrap();
        let parsed = Asn1Time::parse_utc_time(t.to_utc_time_string().as_bytes(), 0).unwrap();
        assert_eq!(parsed, t);
    }

    #[test]
    fn parse_generalized_time_round_trip() {
        let t = Asn1Time::from_ymd_hms(2055, 12, 31, 23, 59, 59).unwrap();
        let parsed =
            Asn1Time::parse_generalized_time(t.to_generalized_time_string().as_bytes(), 0).unwrap();
        assert_eq!(parsed, t);
    }

    #[test]
    fn parse_rejects_garbage() {
        assert!(Asn1Time::parse_utc_time(b"20090108301", 0).is_err());
        assert!(Asn1Time::parse_utc_time(b"2009010830155", 0).is_err());
        assert!(Asn1Time::parse_utc_time(b"aa0901083015Z", 0).is_err());
        assert!(Asn1Time::parse_generalized_time(b"20200901083015", 0).is_err());
        assert!(Asn1Time::parse_generalized_time(b"20201301083015Z", 0).is_err());
    }

    #[test]
    fn plus_days_and_secs() {
        let t = Asn1Time::from_ymd_hms(2020, 12, 31, 0, 0, 0).unwrap();
        assert_eq!(t.plus_days(1).to_ymd_hms(), (2021, 1, 1, 0, 0, 0));
        assert_eq!(t.plus_secs(61).to_ymd_hms(), (2020, 12, 31, 0, 1, 1));
    }

    #[test]
    fn ordering_follows_time() {
        let a = Asn1Time::from_ymd_hms(2020, 9, 1, 0, 0, 0).unwrap();
        let b = Asn1Time::from_ymd_hms(2021, 8, 31, 0, 0, 0).unwrap();
        assert!(a < b);
    }
}
