//! Error type for DER encoding and decoding.

use std::fmt;

/// Result alias used throughout the crate.
pub type Asn1Result<T> = Result<T, Asn1Error>;

/// A DER decoding or encoding failure.
///
/// Every variant produced during decoding carries the byte `offset` at which
/// the problem was detected, measured from the start of the buffer handed to
/// the outermost [`crate::Decoder`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Asn1Error {
    /// The input ended before a complete TLV could be read.
    UnexpectedEof {
        /// Byte offset where input ran out.
        offset: usize,
    },
    /// A tag other than the expected one was found.
    UnexpectedTag {
        /// Byte offset of the unexpected tag.
        offset: usize,
        /// The identifier octet that was expected.
        expected: u8,
        /// The identifier octet actually read.
        found: u8,
    },
    /// An indefinite or non-minimal length encoding (forbidden by DER).
    InvalidLength {
        /// Byte offset of the offending length octets.
        offset: usize,
    },
    /// Length overflows the remaining input.
    LengthOverflow {
        /// Byte offset of the length octets.
        offset: usize,
        /// The decoded (overlong) length.
        length: usize,
    },
    /// A BOOLEAN with contents other than `0x00`/`0xFF`.
    InvalidBoolean {
        /// Byte offset of the BOOLEAN content.
        offset: usize,
    },
    /// A non-minimal INTEGER encoding, or an INTEGER too large for the
    /// requested native type.
    InvalidInteger {
        /// Byte offset of the INTEGER.
        offset: usize,
    },
    /// An OBJECT IDENTIFIER whose contents are malformed.
    InvalidOid {
        /// Byte offset of the OBJECT IDENTIFIER content.
        offset: usize,
    },
    /// A string whose bytes violate its character set.
    InvalidString {
        /// Byte offset of the string content.
        offset: usize,
        /// Which string type was violated.
        kind: &'static str,
    },
    /// A UTCTime/GeneralizedTime that does not parse.
    InvalidTime {
        /// Byte offset of the time value.
        offset: usize,
    },
    /// A BIT STRING with an invalid unused-bits count.
    InvalidBitString {
        /// Byte offset of the BIT STRING.
        offset: usize,
    },
    /// Trailing bytes after the value that was expected to be last.
    TrailingData {
        /// Byte offset of the first trailing byte.
        offset: usize,
    },
    /// Constructed value left unconsumed content.
    UnconsumedContent {
        /// Byte offset of the first unconsumed byte.
        offset: usize,
    },
    /// Value cannot be represented in DER (e.g. OID arc overflow).
    Unencodable {
        /// Why the value cannot be encoded.
        reason: &'static str,
    },
}

impl Asn1Error {
    /// Byte offset of the failure, when the error arose during decoding.
    pub fn offset(&self) -> Option<usize> {
        match self {
            Asn1Error::UnexpectedEof { offset }
            | Asn1Error::UnexpectedTag { offset, .. }
            | Asn1Error::InvalidLength { offset }
            | Asn1Error::LengthOverflow { offset, .. }
            | Asn1Error::InvalidBoolean { offset }
            | Asn1Error::InvalidInteger { offset }
            | Asn1Error::InvalidOid { offset }
            | Asn1Error::InvalidString { offset, .. }
            | Asn1Error::InvalidTime { offset }
            | Asn1Error::InvalidBitString { offset }
            | Asn1Error::TrailingData { offset }
            | Asn1Error::UnconsumedContent { offset } => Some(*offset),
            Asn1Error::Unencodable { .. } => None,
        }
    }
}

impl fmt::Display for Asn1Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Asn1Error::UnexpectedEof { offset } => {
                write!(f, "unexpected end of input at byte {offset}")
            }
            Asn1Error::UnexpectedTag {
                offset,
                expected,
                found,
            } => write!(
                f,
                "unexpected tag at byte {offset}: expected {expected:#04x}, found {found:#04x}"
            ),
            Asn1Error::InvalidLength { offset } => {
                write!(f, "invalid DER length at byte {offset}")
            }
            Asn1Error::LengthOverflow { offset, length } => write!(
                f,
                "length {length} at byte {offset} overflows remaining input"
            ),
            Asn1Error::InvalidBoolean { offset } => {
                write!(f, "invalid DER BOOLEAN at byte {offset}")
            }
            Asn1Error::InvalidInteger { offset } => {
                write!(f, "invalid DER INTEGER at byte {offset}")
            }
            Asn1Error::InvalidOid { offset } => {
                write!(f, "invalid OBJECT IDENTIFIER at byte {offset}")
            }
            Asn1Error::InvalidString { offset, kind } => {
                write!(f, "invalid {kind} at byte {offset}")
            }
            Asn1Error::InvalidTime { offset } => write!(f, "invalid time at byte {offset}"),
            Asn1Error::InvalidBitString { offset } => {
                write!(f, "invalid BIT STRING at byte {offset}")
            }
            Asn1Error::TrailingData { offset } => {
                write!(f, "trailing data at byte {offset}")
            }
            Asn1Error::UnconsumedContent { offset } => {
                write!(f, "unconsumed constructed content at byte {offset}")
            }
            Asn1Error::Unencodable { reason } => write!(f, "unencodable value: {reason}"),
        }
    }
}

impl std::error::Error for Asn1Error {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_includes_offset() {
        let e = Asn1Error::UnexpectedEof { offset: 17 };
        assert!(e.to_string().contains("17"));
        assert_eq!(e.offset(), Some(17));
    }

    #[test]
    fn unencodable_has_no_offset() {
        let e = Asn1Error::Unencodable { reason: "x" };
        assert_eq!(e.offset(), None);
    }

    #[test]
    fn unexpected_tag_display_shows_both_tags() {
        let e = Asn1Error::UnexpectedTag {
            offset: 3,
            expected: 0x30,
            found: 0x31,
        };
        let s = e.to_string();
        assert!(s.contains("0x30") && s.contains("0x31"));
    }
}
