//! OBJECT IDENTIFIER values and the OID constants used by X.509.

use crate::error::{Asn1Error, Asn1Result};
use std::fmt;
use std::str::FromStr;

/// An OBJECT IDENTIFIER, stored as its DER content octets.
///
/// Storing the content octets (rather than the arc list) makes encode a
/// memcpy and equality/hashing cheap; arcs are recomputed on demand.
#[derive(Debug, Clone, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct Oid {
    der: Vec<u8>,
}

impl Oid {
    /// Build an OID from its arc list, e.g. `&[2, 5, 4, 3]` for `id-at-commonName`.
    pub fn from_arcs(arcs: &[u64]) -> Asn1Result<Oid> {
        if arcs.len() < 2 {
            return Err(Asn1Error::Unencodable {
                reason: "OID needs at least two arcs",
            });
        }
        if arcs[0] > 2 || (arcs[0] < 2 && arcs[1] > 39) {
            return Err(Asn1Error::Unencodable {
                reason: "invalid first/second OID arc",
            });
        }
        let mut der = Vec::with_capacity(arcs.len() + 1);
        push_base128(&mut der, arcs[0] * 40 + arcs[1]);
        for &arc in &arcs[2..] {
            push_base128(&mut der, arc);
        }
        Ok(Oid { der })
    }

    /// Wrap pre-validated DER content octets.
    pub fn from_der_content(content: &[u8], offset: usize) -> Asn1Result<Oid> {
        validate_content(content, offset)?;
        Ok(Oid {
            der: content.to_vec(),
        })
    }

    /// The DER content octets (not including tag/length).
    pub fn der_content(&self) -> &[u8] {
        &self.der
    }

    /// Decode the arc list.
    pub fn arcs(&self) -> Vec<u64> {
        let mut arcs = Vec::new();
        let mut iter = self.der.iter().copied();
        let mut acc: u64 = 0;
        let mut first = true;
        for b in iter.by_ref() {
            acc = (acc << 7) | (b & 0x7f) as u64;
            if b & 0x80 == 0 {
                if first {
                    let (a, b) = if acc < 40 {
                        (0, acc)
                    } else if acc < 80 {
                        (1, acc - 40)
                    } else {
                        (2, acc - 80)
                    };
                    arcs.push(a);
                    arcs.push(b);
                    first = false;
                } else {
                    arcs.push(acc);
                }
                acc = 0;
            }
        }
        arcs
    }
}

fn push_base128(out: &mut Vec<u8>, mut value: u64) {
    let mut stack = [0u8; 10];
    let mut n = 0;
    loop {
        stack[n] = (value & 0x7f) as u8;
        value >>= 7;
        n += 1;
        if value == 0 {
            break;
        }
    }
    for i in (0..n).rev() {
        let mut b = stack[i];
        if i != 0 {
            b |= 0x80;
        }
        out.push(b);
    }
}

fn validate_content(content: &[u8], offset: usize) -> Asn1Result<()> {
    if content.is_empty() {
        return Err(Asn1Error::InvalidOid { offset });
    }
    let mut expecting_more = false;
    let mut subid_start = true;
    for (i, &b) in content.iter().enumerate() {
        if subid_start && b == 0x80 {
            // Non-minimal sub-identifier (leading 0x80).
            return Err(Asn1Error::InvalidOid { offset: offset + i });
        }
        subid_start = false;
        if b & 0x80 != 0 {
            expecting_more = true;
        } else {
            expecting_more = false;
            subid_start = true;
        }
    }
    if expecting_more {
        return Err(Asn1Error::InvalidOid {
            offset: offset + content.len(),
        });
    }
    Ok(())
}

impl fmt::Display for Oid {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let arcs = self.arcs();
        for (i, a) in arcs.iter().enumerate() {
            if i > 0 {
                write!(f, ".")?;
            }
            write!(f, "{a}")?;
        }
        Ok(())
    }
}

impl FromStr for Oid {
    type Err = Asn1Error;

    fn from_str(s: &str) -> Asn1Result<Oid> {
        let arcs: Result<Vec<u64>, _> = s.split('.').map(|p| p.parse::<u64>()).collect();
        let arcs = arcs.map_err(|_| Asn1Error::Unencodable {
            reason: "OID string contains a non-numeric arc",
        })?;
        Oid::from_arcs(&arcs)
    }
}

/// Well-known OIDs used by the X.509 model.
pub mod known {
    use super::Oid;

    fn oid(arcs: &[u64]) -> Oid {
        Oid::from_arcs(arcs).expect("static OID is valid")
    }

    // Distinguished-name attribute types (id-at, RFC 4519 / RFC 5280).
    /// `id-at-commonName` (2.5.4.3).
    pub fn common_name() -> Oid {
        oid(&[2, 5, 4, 3])
    }
    /// `id-at-countryName` (2.5.4.6).
    pub fn country() -> Oid {
        oid(&[2, 5, 4, 6])
    }
    /// `id-at-localityName` (2.5.4.7).
    pub fn locality() -> Oid {
        oid(&[2, 5, 4, 7])
    }
    /// `id-at-stateOrProvinceName` (2.5.4.8).
    pub fn state_or_province() -> Oid {
        oid(&[2, 5, 4, 8])
    }
    /// `id-at-organizationName` (2.5.4.10).
    pub fn organization() -> Oid {
        oid(&[2, 5, 4, 10])
    }
    /// `id-at-organizationalUnitName` (2.5.4.11).
    pub fn organizational_unit() -> Oid {
        oid(&[2, 5, 4, 11])
    }
    /// PKCS#9 emailAddress, still common in private-PKI DNs
    /// (e.g. the paper's `emailAddress=webmaster@localhost` leaf).
    pub fn email_address() -> Oid {
        oid(&[1, 2, 840, 113549, 1, 9, 1])
    }

    // Certificate extensions (id-ce).
    /// `id-ce-basicConstraints` (2.5.29.19).
    pub fn basic_constraints() -> Oid {
        oid(&[2, 5, 29, 19])
    }
    /// `id-ce-keyUsage` (2.5.29.15).
    pub fn key_usage() -> Oid {
        oid(&[2, 5, 29, 15])
    }
    /// `id-ce-subjectAltName` (2.5.29.17).
    pub fn subject_alt_name() -> Oid {
        oid(&[2, 5, 29, 17])
    }
    /// `id-ce-subjectKeyIdentifier` (2.5.29.14).
    pub fn subject_key_identifier() -> Oid {
        oid(&[2, 5, 29, 14])
    }
    /// `id-ce-authorityKeyIdentifier` (2.5.29.35).
    pub fn authority_key_identifier() -> Oid {
        oid(&[2, 5, 29, 35])
    }
    /// `id-ce-extKeyUsage` (2.5.29.37).
    pub fn extended_key_usage() -> Oid {
        oid(&[2, 5, 29, 37])
    }

    /// Signed Certificate Timestamp list (RFC 6962 §3.3).
    pub fn sct_list() -> Oid {
        oid(&[1, 3, 6, 1, 4, 1, 11129, 2, 4, 2])
    }
    /// CT precertificate poison (RFC 6962 §3.1).
    pub fn ct_poison() -> Oid {
        oid(&[1, 3, 6, 1, 4, 1, 11129, 2, 4, 3])
    }

    /// The simulated signature algorithm used by this workspace's
    /// `cryptosim` crate (a private-arc OID so it can never collide with a
    /// real algorithm).
    pub fn sim_sig_with_sha256() -> Oid {
        oid(&[1, 3, 6, 1, 4, 1, 99999, 1, 1])
    }
    /// A deliberately unknown algorithm, used to reproduce the paper's
    /// "unrecognized public key" chains in Table 5.
    pub fn unknown_algorithm() -> Oid {
        oid(&[1, 3, 6, 1, 4, 1, 99999, 9, 9])
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn common_name_encoding() {
        let oid = Oid::from_arcs(&[2, 5, 4, 3]).unwrap();
        assert_eq!(oid.der_content(), &[0x55, 0x04, 0x03]);
        assert_eq!(oid.to_string(), "2.5.4.3");
    }

    #[test]
    fn multi_byte_arcs() {
        // 1.2.840.113549.1.9.1 (emailAddress) — classic RSA arc encoding.
        let oid = Oid::from_arcs(&[1, 2, 840, 113549, 1, 9, 1]).unwrap();
        assert_eq!(
            oid.der_content(),
            &[0x2a, 0x86, 0x48, 0x86, 0xf7, 0x0d, 0x01, 0x09, 0x01]
        );
        assert_eq!(oid.arcs(), vec![1, 2, 840, 113549, 1, 9, 1]);
    }

    #[test]
    fn round_trip_arcs() {
        for arcs in [
            vec![0u64, 0],
            vec![1, 2, 3],
            vec![2, 5, 29, 19],
            vec![2, 999, 1],
            vec![1, 3, 6, 1, 4, 1, 11129, 2, 4, 2],
        ] {
            let oid = Oid::from_arcs(&arcs).unwrap();
            assert_eq!(oid.arcs(), arcs);
            let rt = Oid::from_der_content(oid.der_content(), 0).unwrap();
            assert_eq!(rt, oid);
        }
    }

    #[test]
    fn from_str_round_trip() {
        let oid: Oid = "1.3.6.1.4.1.11129.2.4.2".parse().unwrap();
        assert_eq!(oid, known::sct_list());
        assert_eq!(oid.to_string(), "1.3.6.1.4.1.11129.2.4.2");
    }

    #[test]
    fn rejects_bad_arcs() {
        assert!(Oid::from_arcs(&[3, 1]).is_err());
        assert!(Oid::from_arcs(&[0, 40]).is_err());
        assert!(Oid::from_arcs(&[1]).is_err());
        assert!("not.an.oid".parse::<Oid>().is_err());
    }

    #[test]
    fn rejects_malformed_content() {
        // Empty.
        assert!(Oid::from_der_content(&[], 0).is_err());
        // Truncated continuation.
        assert!(Oid::from_der_content(&[0x86], 0).is_err());
        // Leading 0x80 pad (non-minimal).
        assert!(Oid::from_der_content(&[0x55, 0x80, 0x01], 0).is_err());
    }

    #[test]
    fn known_oids_are_distinct() {
        let all = [
            known::common_name(),
            known::country(),
            known::locality(),
            known::state_or_province(),
            known::organization(),
            known::organizational_unit(),
            known::email_address(),
            known::basic_constraints(),
            known::key_usage(),
            known::subject_alt_name(),
            known::subject_key_identifier(),
            known::authority_key_identifier(),
            known::extended_key_usage(),
            known::sct_list(),
            known::ct_poison(),
            known::sim_sig_with_sha256(),
            known::unknown_algorithm(),
        ];
        let set: std::collections::HashSet<_> = all.iter().collect();
        assert_eq!(set.len(), all.len());
    }
}
