#![forbid(unsafe_code)]
#![warn(missing_docs)]

//! A from-scratch DER (Distinguished Encoding Rules) subset sufficient for
//! X.509 certificate modelling.
//!
//! This crate implements the ASN.1 basic types used by RFC 5280 certificates:
//! BOOLEAN, INTEGER, BIT STRING, OCTET STRING, NULL, OBJECT IDENTIFIER,
//! UTF8String, PrintableString, IA5String, UTCTime, GeneralizedTime,
//! SEQUENCE, SET and context-specific tagging — with strict DER rules
//! (definite lengths, minimal length encoding, minimal INTEGER encoding).
//!
//! Design notes:
//! - Encoding streams into a `Vec<u8>` via [`Encoder`]; nested constructed
//!   values are encoded via length back-patching so no intermediate buffers
//!   are needed.
//! - Decoding is zero-copy over a byte slice via [`Decoder`]; string and OID
//!   accessors validate their character sets.
//! - Errors carry byte offsets so malformed-certificate experiments
//!   (Appendix D of the paper) can report precise positions.

pub mod error;
pub mod length;
pub mod oid;
pub mod reader;
pub mod tag;
pub mod time;
pub mod writer;

pub use error::{Asn1Error, Asn1Result};
pub use oid::Oid;
pub use reader::{Decoder, Tlv};
pub use tag::{Class, Tag};
pub use time::Asn1Time;
pub use writer::Encoder;
