//! DER encoder with length back-patching for nested constructed values.

use crate::length::{encode_length, length_of_length};
use crate::oid::Oid;
use crate::tag::Tag;
use crate::time::Asn1Time;

/// A streaming DER encoder.
///
/// Primitive values are appended directly. Constructed values are written
/// through [`Encoder::sequence`]-style closures: a placeholder length is
/// reserved, the body is encoded, and the length bytes are patched in place
/// (shifting the body only when the length needs more than one octet, which
/// is rare for X.509-sized values).
#[derive(Debug, Default)]
pub struct Encoder {
    buf: Vec<u8>,
}

impl Encoder {
    /// New empty encoder.
    pub fn new() -> Encoder {
        Encoder::default()
    }

    /// Finish and return the DER bytes.
    pub fn finish(self) -> Vec<u8> {
        self.buf
    }

    /// Current encoded length in bytes.
    pub fn len(&self) -> usize {
        self.buf.len()
    }

    /// Whether nothing has been encoded yet.
    pub fn is_empty(&self) -> bool {
        self.buf.is_empty()
    }

    /// Append a complete, already-encoded DER value verbatim.
    pub fn raw(&mut self, der: &[u8]) {
        self.buf.extend_from_slice(der);
    }

    /// Encode a primitive TLV with the given content octets.
    pub fn primitive(&mut self, tag: Tag, content: &[u8]) {
        self.buf.push(tag.byte());
        encode_length(&mut self.buf, content.len());
        self.buf.extend_from_slice(content);
    }

    /// Encode a constructed value; the closure writes the body.
    pub fn constructed(&mut self, tag: Tag, body: impl FnOnce(&mut Encoder)) {
        self.buf.push(tag.byte());
        // Reserve one length octet (the common case) and patch afterwards.
        let len_pos = self.buf.len();
        self.buf.push(0);
        let body_start = self.buf.len();
        body(self);
        let body_len = self.buf.len() - body_start;
        let need = length_of_length(body_len);
        if need == 1 {
            self.buf[len_pos] = body_len as u8;
        } else {
            // Shift the body right to make room for the longer length.
            let mut len_bytes = Vec::with_capacity(need);
            encode_length(&mut len_bytes, body_len);
            self.buf.splice(len_pos..len_pos + 1, len_bytes);
        }
    }

    /// SEQUENCE wrapper.
    pub fn sequence(&mut self, body: impl FnOnce(&mut Encoder)) {
        self.constructed(Tag::SEQUENCE, body);
    }

    /// SET wrapper. The caller is responsible for DER SET-OF ordering.
    pub fn set(&mut self, body: impl FnOnce(&mut Encoder)) {
        self.constructed(Tag::SET, body);
    }

    /// `EXPLICIT [n]` wrapper.
    pub fn explicit(&mut self, number: u8, body: impl FnOnce(&mut Encoder)) {
        self.constructed(Tag::context(number), body);
    }

    /// BOOLEAN (DER: `0xFF` for true, `0x00` for false).
    pub fn boolean(&mut self, value: bool) {
        self.primitive(Tag::BOOLEAN, &[if value { 0xff } else { 0x00 }]);
    }

    /// INTEGER from an unsigned 64-bit value (minimal two's-complement form).
    pub fn integer_u64(&mut self, value: u64) {
        let bytes = value.to_be_bytes();
        let mut start = 0;
        while start < 7 && bytes[start] == 0 {
            start += 1;
        }
        // Prepend 0x00 when the MSB is set so the value stays non-negative.
        if bytes[start] & 0x80 != 0 {
            let mut content = Vec::with_capacity(9 - start);
            content.push(0);
            content.extend_from_slice(&bytes[start..]);
            self.primitive(Tag::INTEGER, &content);
        } else {
            self.primitive(Tag::INTEGER, &bytes[start..]);
        }
    }

    /// INTEGER from raw big-endian unsigned magnitude bytes (e.g. a
    /// 20-octet certificate serial number). Leading zeros are trimmed and a
    /// sign octet added if needed; an empty slice encodes zero.
    pub fn integer_bytes(&mut self, magnitude: &[u8]) {
        let mut start = 0;
        while start < magnitude.len() && magnitude[start] == 0 {
            start += 1;
        }
        if start == magnitude.len() {
            self.primitive(Tag::INTEGER, &[0]);
            return;
        }
        if magnitude[start] & 0x80 != 0 {
            let mut content = Vec::with_capacity(magnitude.len() - start + 1);
            content.push(0);
            content.extend_from_slice(&magnitude[start..]);
            self.primitive(Tag::INTEGER, &content);
        } else {
            self.primitive(Tag::INTEGER, &magnitude[start..]);
        }
    }

    /// BIT STRING with no unused bits (all X.509 uses are octet-aligned).
    pub fn bit_string(&mut self, bytes: &[u8]) {
        let mut content = Vec::with_capacity(bytes.len() + 1);
        content.push(0);
        content.extend_from_slice(bytes);
        self.primitive(Tag::BIT_STRING, &content);
    }

    /// OCTET STRING.
    pub fn octet_string(&mut self, bytes: &[u8]) {
        self.primitive(Tag::OCTET_STRING, bytes);
    }

    /// NULL.
    pub fn null(&mut self) {
        self.primitive(Tag::NULL, &[]);
    }

    /// OBJECT IDENTIFIER.
    pub fn oid(&mut self, oid: &Oid) {
        self.primitive(Tag::OBJECT_IDENTIFIER, oid.der_content());
    }

    /// UTF8String.
    pub fn utf8_string(&mut self, s: &str) {
        self.primitive(Tag::UTF8_STRING, s.as_bytes());
    }

    /// PrintableString. The caller must ensure the character set is legal;
    /// the X.509 layer picks UTF8String when it is not.
    pub fn printable_string(&mut self, s: &str) {
        debug_assert!(crate::reader::is_printable(s));
        self.primitive(Tag::PRINTABLE_STRING, s.as_bytes());
    }

    /// IA5String (ASCII).
    pub fn ia5_string(&mut self, s: &str) {
        debug_assert!(s.is_ascii());
        self.primitive(Tag::IA5_STRING, s.as_bytes());
    }

    /// Time, following the RFC 5280 rule: UTCTime through 2049,
    /// GeneralizedTime from 2050.
    pub fn time(&mut self, t: Asn1Time) {
        if t.uses_utc_time() {
            self.primitive(Tag::UTC_TIME, t.to_utc_time_string().as_bytes());
        } else {
            self.primitive(
                Tag::GENERALIZED_TIME,
                t.to_generalized_time_string().as_bytes(),
            );
        }
    }
}

/// Encode a single value via a closure and return its DER bytes.
pub fn encode(body: impl FnOnce(&mut Encoder)) -> Vec<u8> {
    let mut enc = Encoder::new();
    body(&mut enc);
    enc.finish()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn boolean_encoding() {
        assert_eq!(encode(|e| e.boolean(true)), [0x01, 0x01, 0xff]);
        assert_eq!(encode(|e| e.boolean(false)), [0x01, 0x01, 0x00]);
    }

    #[test]
    fn integer_minimal_encoding() {
        assert_eq!(encode(|e| e.integer_u64(0)), [0x02, 0x01, 0x00]);
        assert_eq!(encode(|e| e.integer_u64(127)), [0x02, 0x01, 0x7f]);
        // 128 needs a sign octet.
        assert_eq!(encode(|e| e.integer_u64(128)), [0x02, 0x02, 0x00, 0x80]);
        assert_eq!(encode(|e| e.integer_u64(256)), [0x02, 0x02, 0x01, 0x00]);
        assert_eq!(
            encode(|e| e.integer_u64(u64::MAX)),
            [0x02, 0x09, 0x00, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff]
        );
    }

    #[test]
    fn integer_bytes_trims_and_signs() {
        assert_eq!(encode(|e| e.integer_bytes(&[])), [0x02, 0x01, 0x00]);
        assert_eq!(encode(|e| e.integer_bytes(&[0, 0, 0])), [0x02, 0x01, 0x00]);
        assert_eq!(
            encode(|e| e.integer_bytes(&[0x00, 0x8f])),
            [0x02, 0x02, 0x00, 0x8f]
        );
        assert_eq!(encode(|e| e.integer_bytes(&[0x7f])), [0x02, 0x01, 0x7f]);
    }

    #[test]
    fn empty_sequence() {
        assert_eq!(encode(|e| e.sequence(|_| {})), [0x30, 0x00]);
    }

    #[test]
    fn nested_sequence() {
        let der = encode(|e| {
            e.sequence(|e| {
                e.integer_u64(1);
                e.sequence(|e| e.boolean(true));
            })
        });
        assert_eq!(
            der,
            [0x30, 0x08, 0x02, 0x01, 0x01, 0x30, 0x03, 0x01, 0x01, 0xff]
        );
    }

    #[test]
    fn long_body_patches_length() {
        // A sequence whose body exceeds 127 bytes forces the long form and
        // exercises the splice path.
        let payload = vec![0xabu8; 200];
        let der = encode(|e| e.sequence(|e| e.octet_string(&payload)));
        assert_eq!(der[0], 0x30);
        assert_eq!(der[1], 0x81);
        assert_eq!(der[2] as usize, 200 + 2 + 1); // content + octet-string TL
                                                  // And the nested octet string survives intact.
        assert_eq!(&der[der.len() - 200..], payload.as_slice());
    }

    #[test]
    fn very_long_body_two_length_octets() {
        let payload = vec![0u8; 70_000];
        let der = encode(|e| e.sequence(|e| e.octet_string(&payload)));
        assert_eq!(der[0], 0x30);
        assert_eq!(der[1], 0x83); // 3 length octets
    }

    #[test]
    fn explicit_tagging() {
        let der = encode(|e| e.explicit(0, |e| e.integer_u64(2)));
        assert_eq!(der, [0xa0, 0x03, 0x02, 0x01, 0x02]);
    }

    #[test]
    fn bit_string_prepends_unused_count() {
        assert_eq!(
            encode(|e| e.bit_string(&[0xde, 0xad])),
            [0x03, 0x03, 0x00, 0xde, 0xad]
        );
    }

    #[test]
    fn null_and_oid() {
        assert_eq!(encode(|e| e.null()), [0x05, 0x00]);
        let oid = Oid::from_arcs(&[2, 5, 4, 3]).unwrap();
        assert_eq!(encode(|e| e.oid(&oid)), [0x06, 0x03, 0x55, 0x04, 0x03]);
    }

    #[test]
    fn time_selects_form_by_year() {
        let near = Asn1Time::from_ymd_hms(2021, 1, 2, 3, 4, 5).unwrap();
        let der = encode(|e| e.time(near));
        assert_eq!(der[0], 0x17); // UTCTime
        let far = Asn1Time::from_ymd_hms(2050, 1, 2, 3, 4, 5).unwrap();
        let der = encode(|e| e.time(far));
        assert_eq!(der[0], 0x18); // GeneralizedTime
    }
}
