//! RFC 6962 §2.1 Merkle hash trees with inclusion and consistency proofs.

use certchain_cryptosim::Sha256;

/// Domain-separation prefixes from RFC 6962.
const LEAF_PREFIX: &[u8] = &[0x00];
const NODE_PREFIX: &[u8] = &[0x01];

/// Hash of a leaf input.
pub fn leaf_hash(data: &[u8]) -> [u8; 32] {
    Sha256::digest2(LEAF_PREFIX, data)
}

/// Hash of an interior node.
pub fn node_hash(left: &[u8; 32], right: &[u8; 32]) -> [u8; 32] {
    let mut h = Sha256::new();
    h.update(NODE_PREFIX);
    h.update(left);
    h.update(right);
    h.finalize()
}

/// An append-only Merkle tree over leaf *inputs* (hashing applied here).
///
/// ```
/// use certchain_ctlog::merkle::{leaf_hash, verify_inclusion, MerkleTree};
/// let mut tree = MerkleTree::new();
/// for i in 0..5u8 {
///     tree.push(&[i]);
/// }
/// let proof = tree.prove_inclusion(2).unwrap();
/// assert!(verify_inclusion(&leaf_hash(&[2]), 2, tree.len(), &proof, &tree.root()));
/// ```
#[derive(Debug, Default, Clone)]
pub struct MerkleTree {
    leaves: Vec<[u8; 32]>,
}

impl MerkleTree {
    /// Empty tree.
    pub fn new() -> MerkleTree {
        MerkleTree::default()
    }

    /// Append a leaf input; returns its index.
    pub fn push(&mut self, data: &[u8]) -> u64 {
        self.leaves.push(leaf_hash(data));
        (self.leaves.len() - 1) as u64
    }

    /// Number of leaves.
    pub fn len(&self) -> u64 {
        self.leaves.len() as u64
    }

    /// Whether the tree has no leaves.
    pub fn is_empty(&self) -> bool {
        self.leaves.is_empty()
    }

    /// Merkle tree head over the current leaves (RFC 6962 MTH).
    /// The empty tree hashes to `SHA256("")`.
    pub fn root(&self) -> [u8; 32] {
        self.root_of_prefix(self.leaves.len())
    }

    /// MTH over the first `n` leaves (for consistency proofs).
    pub fn root_of_prefix(&self, n: usize) -> [u8; 32] {
        assert!(n <= self.leaves.len(), "prefix beyond tree size");
        mth(&self.leaves[..n])
    }

    /// Inclusion proof (audit path) for `index` in the tree of size `len()`.
    pub fn prove_inclusion(&self, index: u64) -> Option<Vec<[u8; 32]>> {
        if index >= self.len() {
            return None;
        }
        Some(audit_path(index as usize, &self.leaves))
    }

    /// Consistency proof between the tree of size `old` and the current
    /// tree (RFC 6962 §2.1.2).
    pub fn prove_consistency(&self, old: u64) -> Option<Vec<[u8; 32]>> {
        let n = self.leaves.len();
        let m = old as usize;
        if m == 0 || m > n {
            return None;
        }
        Some(sub_proof(m, &self.leaves[..n], true))
    }
}

/// MTH(D) per RFC 6962.
fn mth(leaves: &[[u8; 32]]) -> [u8; 32] {
    match leaves.len() {
        0 => Sha256::digest(b""),
        1 => leaves[0],
        n => {
            let k = largest_power_of_two_below(n);
            node_hash(&mth(&leaves[..k]), &mth(&leaves[k..]))
        }
    }
}

/// PATH(m, D) per RFC 6962 §2.1.1.
fn audit_path(m: usize, leaves: &[[u8; 32]]) -> Vec<[u8; 32]> {
    let n = leaves.len();
    if n <= 1 {
        return Vec::new();
    }
    let k = largest_power_of_two_below(n);
    if m < k {
        let mut path = audit_path(m, &leaves[..k]);
        path.push(mth(&leaves[k..]));
        path
    } else {
        let mut path = audit_path(m - k, &leaves[k..]);
        path.push(mth(&leaves[..k]));
        path
    }
}

/// SUBPROOF(m, D, b) per RFC 6962 §2.1.2.
fn sub_proof(m: usize, leaves: &[[u8; 32]], b: bool) -> Vec<[u8; 32]> {
    let n = leaves.len();
    if m == n {
        if b {
            return Vec::new();
        }
        return vec![mth(leaves)];
    }
    let k = largest_power_of_two_below(n);
    if m <= k {
        let mut proof = sub_proof(m, &leaves[..k], b);
        proof.push(mth(&leaves[k..]));
        proof
    } else {
        let mut proof = sub_proof(m - k, &leaves[k..], false);
        proof.push(mth(&leaves[..k]));
        proof
    }
}

/// Verify an inclusion proof: does `leaf` at `index` in a tree of
/// `tree_size` leaves hash up to `root`? (RFC 6962 §2.1.3 verification.)
pub fn verify_inclusion(
    leaf: &[u8; 32],
    index: u64,
    tree_size: u64,
    proof: &[[u8; 32]],
    root: &[u8; 32],
) -> bool {
    if index >= tree_size {
        return false;
    }
    let mut fn_ = index;
    let mut sn = tree_size - 1;
    let mut r = *leaf;
    for p in proof {
        if sn == 0 {
            return false;
        }
        if fn_ & 1 == 1 || fn_ == sn {
            r = node_hash(p, &r);
            while fn_ & 1 == 0 {
                fn_ >>= 1;
                sn >>= 1;
                if fn_ == 0 && sn == 0 {
                    break;
                }
            }
        } else {
            r = node_hash(&r, p);
        }
        fn_ >>= 1;
        sn >>= 1;
    }
    sn == 0 && r == *root
}

/// Verify a consistency proof between `(old_size, old_root)` and
/// `(new_size, new_root)` (RFC 6962 §2.1.4 verification).
pub fn verify_consistency(
    old_size: u64,
    old_root: &[u8; 32],
    new_size: u64,
    new_root: &[u8; 32],
    proof: &[[u8; 32]],
) -> bool {
    if old_size == new_size {
        return proof.is_empty() && old_root == new_root;
    }
    if old_size == 0 || old_size > new_size {
        return false;
    }
    let mut node = old_size - 1;
    let mut last_node = new_size - 1;
    while node & 1 == 1 {
        node >>= 1;
        last_node >>= 1;
    }
    let mut proof_iter = proof.iter();
    let (mut new_hash, mut old_hash) = if node != 0 {
        let first = match proof_iter.next() {
            Some(h) => *h,
            None => return false,
        };
        (first, first)
    } else {
        (*old_root, *old_root)
    };
    while node != 0 {
        if node & 1 == 1 {
            let Some(p) = proof_iter.next() else {
                return false;
            };
            old_hash = node_hash(p, &old_hash);
            new_hash = node_hash(p, &new_hash);
        } else if node < last_node {
            let Some(p) = proof_iter.next() else {
                return false;
            };
            new_hash = node_hash(&new_hash, p);
        }
        node >>= 1;
        last_node >>= 1;
    }
    while last_node != 0 {
        let Some(p) = proof_iter.next() else {
            return false;
        };
        new_hash = node_hash(&new_hash, p);
        last_node >>= 1;
    }
    proof_iter.next().is_none() && new_hash == *new_root && old_hash == *old_root
}

fn largest_power_of_two_below(n: usize) -> usize {
    debug_assert!(n > 1);
    let mut k = 1usize;
    while k * 2 < n {
        k *= 2;
    }
    k
}

#[cfg(test)]
mod tests {
    use super::*;
    use certchain_cryptosim::sha256::hex;

    /// RFC 6962 / Go merkle test vectors for trees over the inputs
    /// "" … used by certificate-transparency-go.
    fn rfc_inputs() -> Vec<Vec<u8>> {
        vec![
            vec![],
            vec![0x00],
            vec![0x10],
            vec![0x20, 0x21],
            vec![0x30, 0x31],
            vec![0x40, 0x41, 0x42, 0x43],
            vec![0x50, 0x51, 0x52, 0x53, 0x54, 0x55, 0x56, 0x57],
            vec![
                0x60, 0x61, 0x62, 0x63, 0x64, 0x65, 0x66, 0x67, 0x68, 0x69, 0x6a, 0x6b, 0x6c, 0x6d,
                0x6e, 0x6f,
            ],
        ]
    }

    #[test]
    fn empty_tree_root() {
        let tree = MerkleTree::new();
        assert_eq!(
            hex(&tree.root()),
            "e3b0c44298fc1c149afbf4c8996fb92427ae41e4649b934ca495991b7852b855"
        );
    }

    /// Known-answer roots from the certificate-transparency reference tests.
    #[test]
    fn reference_roots() {
        let inputs = rfc_inputs();
        let mut tree = MerkleTree::new();
        let expected = [
            "6e340b9cffb37a989ca544e6bb780a2c78901d3fb33738768511a30617afa01d",
            "fac54203e7cc696cf0dfcb42c92a1d9dbaf70ad9e621f4bd8d98662f00e3c125",
            "aeb6bcfe274b70a14fb067a5e5578264db0fa9b51af5e0ba159158f329e06e77",
            "d37ee418976dd95753c1c73862b9398fa2a2cf9b4ff0fdfe8b30cd95209614b7",
            "4e3bbb1f7b478dcfe71fb631631519a3bca12c9aefca1612bfce4c13a86264d4",
            "76e67dadbcdf1e10e1b74ddc608abd2f98dfb16fbce75277b5232a127f2087ef",
            "ddb89be403809e325750d3d263cd78929c2942b7942a34b77e122c9594a74c8c",
            "5dc9da79a70659a9ad559cb701ded9a2ab9d823aad2f4960cfe370eff4604328",
        ];
        for (i, input) in inputs.iter().enumerate() {
            tree.push(input);
            assert_eq!(
                hex(&tree.root()),
                expected[i],
                "root after {} leaves",
                i + 1
            );
        }
    }

    #[test]
    fn inclusion_proofs_verify_for_all_sizes() {
        let mut tree = MerkleTree::new();
        for i in 0u64..33 {
            tree.push(format!("leaf-{i}").as_bytes());
        }
        let root = tree.root();
        let size = tree.len();
        for i in 0..size {
            let proof = tree.prove_inclusion(i).unwrap();
            let leaf = leaf_hash(format!("leaf-{i}").as_bytes());
            assert!(
                verify_inclusion(&leaf, i, size, &proof, &root),
                "inclusion of leaf {i}"
            );
            // Wrong index must fail.
            let wrong = (i + 1) % size;
            if wrong != i {
                assert!(!verify_inclusion(&leaf, wrong, size, &proof, &root));
            }
            // Wrong leaf must fail.
            let bogus = leaf_hash(b"bogus");
            assert!(!verify_inclusion(&bogus, i, size, &proof, &root));
        }
    }

    #[test]
    fn inclusion_proof_out_of_range() {
        let mut tree = MerkleTree::new();
        tree.push(b"only");
        assert!(tree.prove_inclusion(1).is_none());
        assert!(tree.prove_inclusion(0).unwrap().is_empty());
    }

    #[test]
    fn consistency_proofs_verify_for_all_pairs() {
        let mut tree = MerkleTree::new();
        let mut roots = vec![];
        for i in 0u64..20 {
            tree.push(format!("entry-{i}").as_bytes());
            roots.push(tree.root());
        }
        let new_size = tree.len();
        let new_root = tree.root();
        for old in 1..=new_size {
            let proof = tree.prove_consistency(old).unwrap();
            let old_root = &roots[(old - 1) as usize];
            assert!(
                verify_consistency(old, old_root, new_size, &new_root, &proof),
                "consistency {old} -> {new_size}"
            );
            // Tampered old root must fail.
            let mut bad = *old_root;
            bad[0] ^= 1;
            assert!(!verify_consistency(old, &bad, new_size, &new_root, &proof));
        }
    }

    #[test]
    fn consistency_same_size_is_trivial() {
        let mut tree = MerkleTree::new();
        tree.push(b"a");
        tree.push(b"b");
        let root = tree.root();
        let proof = tree.prove_consistency(2).unwrap();
        assert!(proof.is_empty());
        assert!(verify_consistency(2, &root, 2, &root, &proof));
    }

    #[test]
    fn consistency_rejects_bad_sizes() {
        let mut tree = MerkleTree::new();
        tree.push(b"a");
        assert!(tree.prove_consistency(0).is_none());
        assert!(tree.prove_consistency(2).is_none());
    }

    #[test]
    fn append_only_property() {
        // Appending must never change proofs for already-proven prefixes.
        let mut tree = MerkleTree::new();
        for i in 0..7 {
            tree.push(format!("x{i}").as_bytes());
        }
        let old_size = tree.len();
        let old_root = tree.root();
        for i in 7..23 {
            tree.push(format!("x{i}").as_bytes());
            let proof = tree.prove_consistency(old_size).unwrap();
            assert!(verify_consistency(
                old_size,
                &old_root,
                tree.len(),
                &tree.root(),
                &proof
            ));
        }
    }

    #[test]
    fn leaf_and_node_hashes_are_domain_separated() {
        let a = [0u8; 32];
        let b = [0u8; 32];
        assert_ne!(leaf_hash(&[0u8; 64]), node_hash(&a, &b));
    }
}
