//! The CT log itself: append-only submission, signed tree heads, proofs.

use crate::merkle::MerkleTree;
use crate::sct::Sct;
use certchain_asn1::Asn1Time;
use certchain_cryptosim::{sign, verify, KeyPair, PublicKey, Sha256, Signature};
use certchain_x509::{Certificate, Fingerprint};
use std::collections::HashMap;
use std::sync::Arc;

/// One logged certificate.
#[derive(Debug, Clone)]
pub struct LoggedEntry {
    /// Leaf index in the Merkle tree.
    pub index: u64,
    /// The certificate.
    pub cert: Arc<Certificate>,
    /// Submission time.
    pub timestamp: Asn1Time,
}

/// A signed tree head.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TreeHead {
    /// Number of leaves.
    pub tree_size: u64,
    /// Root hash at `tree_size`.
    pub root: [u8; 32],
    /// Head timestamp.
    pub timestamp: Asn1Time,
    /// Log signature over `(tree_size, root, timestamp)`.
    pub signature: Signature,
}

impl TreeHead {
    /// Verify the head's signature.
    pub fn verify(&self, log_pub: &PublicKey) -> bool {
        verify(
            log_pub,
            &head_payload(self.tree_size, &self.root, self.timestamp),
            &self.signature,
        )
    }
}

fn head_payload(tree_size: u64, root: &[u8; 32], timestamp: Asn1Time) -> Vec<u8> {
    let mut p = Vec::with_capacity(8 + 32 + 8);
    p.extend_from_slice(&tree_size.to_be_bytes());
    p.extend_from_slice(root);
    p.extend_from_slice(&timestamp.unix_secs().to_be_bytes());
    p
}

/// An append-only certificate transparency log.
#[derive(Debug)]
pub struct CtLog {
    name: String,
    key: KeyPair,
    tree: MerkleTree,
    entries: Vec<LoggedEntry>,
    by_fingerprint: HashMap<Fingerprint, u64>,
}

impl CtLog {
    /// Create a log with a key derived from `(seed, name)`.
    pub fn new(seed: u64, name: &str) -> CtLog {
        CtLog {
            name: name.to_string(),
            key: KeyPair::derive(seed, &format!("ctlog:{name}")),
            tree: MerkleTree::new(),
            entries: Vec::new(),
            by_fingerprint: HashMap::new(),
        }
    }

    /// The log's name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// The log's public key.
    pub fn public_key(&self) -> &PublicKey {
        self.key.public()
    }

    /// RFC 6962 log id: SHA-256 of the public key.
    pub fn log_id(&self) -> [u8; 32] {
        Sha256::digest(self.key.public().as_bytes())
    }

    /// Submit a certificate. Idempotent: re-submission returns a fresh SCT
    /// for the existing entry without appending a duplicate leaf.
    pub fn submit(&mut self, cert: Arc<Certificate>, at: Asn1Time) -> Sct {
        let fp = cert.fingerprint();
        if !self.by_fingerprint.contains_key(&fp) {
            let index = self.tree.push(cert.der());
            self.by_fingerprint.insert(fp, index);
            self.entries.push(LoggedEntry {
                index,
                cert,
                timestamp: at,
            });
        }
        Sct::issue(&self.key, at, fp)
    }

    /// Whether a certificate is logged.
    pub fn contains(&self, fingerprint: &Fingerprint) -> bool {
        self.by_fingerprint.contains_key(fingerprint)
    }

    /// Entry for a certificate, if logged.
    pub fn entry(&self, fingerprint: &Fingerprint) -> Option<&LoggedEntry> {
        self.by_fingerprint
            .get(fingerprint)
            .map(|&i| &self.entries[i as usize])
    }

    /// All entries in append order.
    pub fn entries(&self) -> &[LoggedEntry] {
        &self.entries
    }

    /// Number of logged certificates.
    pub fn len(&self) -> u64 {
        self.tree.len()
    }

    /// Whether nothing is logged.
    pub fn is_empty(&self) -> bool {
        self.tree.is_empty()
    }

    /// Current signed tree head.
    pub fn tree_head(&self, at: Asn1Time) -> TreeHead {
        let tree_size = self.tree.len();
        let root = self.tree.root();
        TreeHead {
            tree_size,
            root,
            timestamp: at,
            signature: sign(&self.key, &head_payload(tree_size, &root, at)),
        }
    }

    /// Inclusion proof for a logged certificate against the current head.
    pub fn prove_inclusion(&self, fingerprint: &Fingerprint) -> Option<(u64, Vec<[u8; 32]>)> {
        let index = *self.by_fingerprint.get(fingerprint)?;
        Some((index, self.tree.prove_inclusion(index)?))
    }

    /// Consistency proof from an older tree size to now.
    pub fn prove_consistency(&self, old_size: u64) -> Option<Vec<[u8; 32]>> {
        self.tree.prove_consistency(old_size)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::merkle::{leaf_hash, verify_inclusion};
    use certchain_x509::{CertificateBuilder, DistinguishedName, Serial, Validity};

    fn t() -> Asn1Time {
        Asn1Time::from_ymd_hms(2020, 9, 15, 0, 0, 0).unwrap()
    }

    fn cert(n: u64) -> Arc<Certificate> {
        let kp = KeyPair::derive(n, "ct:test:ca");
        CertificateBuilder::new()
            .serial(Serial::from_u64(n))
            .issuer(DistinguishedName::cn("CT Test CA"))
            .subject(DistinguishedName::cn(&format!("host{n}.example.org")))
            .validity(Validity::days_from(t(), 90))
            .leaf_for(&format!("host{n}.example.org"))
            .sign(&kp)
            .into_arc()
    }

    #[test]
    fn submit_issues_verifiable_sct() {
        let mut log = CtLog::new(1, "campus-log");
        let c = cert(1);
        let sct = log.submit(Arc::clone(&c), t());
        assert!(sct.verify(log.public_key()));
        assert_eq!(sct.cert, c.fingerprint());
        assert!(log.contains(&c.fingerprint()));
        assert_eq!(log.len(), 1);
    }

    #[test]
    fn resubmission_is_idempotent() {
        let mut log = CtLog::new(1, "campus-log");
        let c = cert(1);
        log.submit(Arc::clone(&c), t());
        log.submit(Arc::clone(&c), t().plus_days(1));
        assert_eq!(log.len(), 1);
        assert_eq!(log.entries().len(), 1);
    }

    #[test]
    fn inclusion_proof_against_head() {
        let mut log = CtLog::new(2, "proof-log");
        let certs: Vec<_> = (0..17).map(cert).collect();
        for c in &certs {
            log.submit(Arc::clone(c), t());
        }
        let head = log.tree_head(t());
        assert!(head.verify(log.public_key()));
        for c in &certs {
            let (index, proof) = log.prove_inclusion(&c.fingerprint()).unwrap();
            assert!(verify_inclusion(
                &leaf_hash(c.der()),
                index,
                head.tree_size,
                &proof,
                &head.root
            ));
        }
    }

    #[test]
    fn consistency_across_growth() {
        let mut log = CtLog::new(3, "grow-log");
        for i in 0..5 {
            log.submit(cert(i), t());
        }
        let old = log.tree_head(t());
        for i in 5..12 {
            log.submit(cert(i), t().plus_days(1));
        }
        let new = log.tree_head(t().plus_days(1));
        let proof = log.prove_consistency(old.tree_size).unwrap();
        assert!(crate::merkle::verify_consistency(
            old.tree_size,
            &old.root,
            new.tree_size,
            &new.root,
            &proof
        ));
    }

    #[test]
    fn unknown_certificate_has_no_proof() {
        let log = CtLog::new(4, "empty-log");
        assert!(log.prove_inclusion(&Fingerprint([0; 32])).is_none());
        assert!(log.entry(&Fingerprint([0; 32])).is_none());
        assert!(log.is_empty());
    }

    #[test]
    fn tampered_head_fails_verification() {
        let mut log = CtLog::new(5, "tamper-log");
        log.submit(cert(1), t());
        let mut head = log.tree_head(t());
        head.tree_size += 1;
        assert!(!head.verify(log.public_key()));
    }
}
