//! Signed Certificate Timestamps.

use certchain_asn1::Asn1Time;
use certchain_cryptosim::{sign, verify, KeyPair, PublicKey, Sha256, Signature};
use certchain_x509::Fingerprint;

/// A signed certificate timestamp issued by a log at submission time.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Sct {
    /// SHA-256 of the log's public key (RFC 6962 log id).
    pub log_id: [u8; 32],
    /// Submission time.
    pub timestamp: Asn1Time,
    /// The certificate the SCT covers.
    pub cert: Fingerprint,
    /// Log signature over `(log_id, timestamp, cert)`.
    pub signature: Signature,
}

fn signed_payload(log_id: &[u8; 32], timestamp: Asn1Time, cert: &Fingerprint) -> Vec<u8> {
    let mut payload = Vec::with_capacity(32 + 8 + 32);
    payload.extend_from_slice(log_id);
    payload.extend_from_slice(&timestamp.unix_secs().to_be_bytes());
    payload.extend_from_slice(&cert.0);
    payload
}

impl Sct {
    /// Issue an SCT under the log's key.
    pub fn issue(log_key: &KeyPair, timestamp: Asn1Time, cert: Fingerprint) -> Sct {
        let log_id = Sha256::digest(log_key.public().as_bytes());
        let signature = sign(log_key, &signed_payload(&log_id, timestamp, &cert));
        Sct {
            log_id,
            timestamp,
            cert,
            signature,
        }
    }

    /// Verify against the log's public key.
    pub fn verify(&self, log_pub: &PublicKey) -> bool {
        if self.log_id != Sha256::digest(log_pub.as_bytes()) {
            return false;
        }
        verify(
            log_pub,
            &signed_payload(&self.log_id, self.timestamp, &self.cert),
            &self.signature,
        )
    }

    /// Opaque serialization for embedding in a certificate's SCT-list
    /// extension.
    pub fn to_bytes(&self) -> Vec<u8> {
        let mut out = Vec::with_capacity(32 + 8 + 32 + 32);
        out.extend_from_slice(&self.log_id);
        out.extend_from_slice(&self.timestamp.unix_secs().to_be_bytes());
        out.extend_from_slice(&self.cert.0);
        out.extend_from_slice(self.signature.as_bytes());
        out
    }

    /// Parse the serialization from [`Sct::to_bytes`].
    pub fn from_bytes(bytes: &[u8]) -> Option<Sct> {
        if bytes.len() != 104 {
            return None;
        }
        let mut log_id = [0u8; 32];
        log_id.copy_from_slice(&bytes[..32]);
        let ts = u64::from_be_bytes(bytes[32..40].try_into().ok()?);
        let mut cert = [0u8; 32];
        cert.copy_from_slice(&bytes[40..72]);
        let signature = Signature::from_slice(&bytes[72..104])?;
        Some(Sct {
            log_id,
            timestamp: Asn1Time::from_unix(ts),
            cert: Fingerprint(cert),
            signature,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn t() -> Asn1Time {
        Asn1Time::from_ymd_hms(2020, 10, 5, 12, 0, 0).unwrap()
    }

    #[test]
    fn issue_and_verify() {
        let log_key = KeyPair::derive(1, "ct:log");
        let sct = Sct::issue(&log_key, t(), Fingerprint([7; 32]));
        assert!(sct.verify(log_key.public()));
    }

    #[test]
    fn wrong_log_key_fails() {
        let log_key = KeyPair::derive(1, "ct:log");
        let other = KeyPair::derive(2, "ct:other");
        let sct = Sct::issue(&log_key, t(), Fingerprint([7; 32]));
        assert!(!sct.verify(other.public()));
    }

    #[test]
    fn tampered_timestamp_fails() {
        let log_key = KeyPair::derive(1, "ct:log");
        let mut sct = Sct::issue(&log_key, t(), Fingerprint([7; 32]));
        sct.timestamp = sct.timestamp.plus_secs(1);
        assert!(!sct.verify(log_key.public()));
    }

    #[test]
    fn serialization_round_trip() {
        let log_key = KeyPair::derive(3, "ct:log");
        let sct = Sct::issue(&log_key, t(), Fingerprint([9; 32]));
        let bytes = sct.to_bytes();
        assert_eq!(bytes.len(), 104);
        let parsed = Sct::from_bytes(&bytes).unwrap();
        assert_eq!(parsed, sct);
        assert!(parsed.verify(log_key.public()));
    }

    #[test]
    fn from_bytes_validates_length() {
        assert!(Sct::from_bytes(&[0u8; 103]).is_none());
        assert!(Sct::from_bytes(&[0u8; 105]).is_none());
    }
}
