#![forbid(unsafe_code)]
#![warn(missing_docs)]

//! A Certificate Transparency log in the style of RFC 6962.
//!
//! The paper uses CT (via crt.sh) for two things:
//! 1. **Interception detection** (§3.2.1): cross-reference the issuer a
//!    client observed for a domain against the issuers CT recorded for that
//!    domain and validity period — a mismatch suggests the connection was
//!    intercepted.
//! 2. **CT-compliance checking** (§4.2): leaf certificates issued by
//!    non-public-DB issuers but anchored to public trust roots must be
//!    CT-logged; the paper confirms all 26 such chains were.
//!
//! Both need an append-only, queryable log. This crate provides the full
//! structure: a Merkle tree with inclusion and consistency proofs, signed
//! certificate timestamps, and a domain index in the spirit of crt.sh.

pub mod index;
pub mod log;
pub mod merkle;
pub mod sct;

pub use index::DomainIndex;
pub use log::{CtLog, LoggedEntry, TreeHead};
pub use merkle::MerkleTree;
pub use sct::Sct;
