//! A crt.sh-style query index over CT logs.
//!
//! The interception-detection step of the paper (§3.2.1) asks: *for this
//! domain and this validity period, which issuers has CT recorded?* If the
//! issuer a client observed is not among them, the connection was possibly
//! intercepted.

use crate::log::CtLog;
use certchain_x509::{Certificate, DistinguishedName, Fingerprint, Validity};
use std::collections::HashMap;
use std::sync::Arc;

/// One indexed record: a certificate known to CT for some domain.
#[derive(Debug, Clone)]
pub struct IndexedCert {
    /// The certificate.
    pub cert: Arc<Certificate>,
    /// Issuer DN (denormalized for query speed).
    pub issuer: DistinguishedName,
    /// Validity window (denormalized).
    pub validity: Validity,
}

/// Index from DNS name to the CT-logged certificates covering it.
///
/// Names come from subjectAltName dNSName entries plus the subject CN
/// (crt.sh indexes both).
#[derive(Debug, Default)]
pub struct DomainIndex {
    by_domain: HashMap<String, Vec<IndexedCert>>,
    fingerprints: std::collections::HashSet<Fingerprint>,
}

impl DomainIndex {
    /// Empty index.
    pub fn new() -> DomainIndex {
        DomainIndex::default()
    }

    /// Build from a set of logs.
    pub fn build(logs: &[&CtLog]) -> DomainIndex {
        let mut index = DomainIndex::new();
        for log in logs {
            for entry in log.entries() {
                index.add(Arc::clone(&entry.cert));
            }
        }
        index
    }

    /// Index one certificate (idempotent by fingerprint).
    pub fn add(&mut self, cert: Arc<Certificate>) {
        if !self.fingerprints.insert(cert.fingerprint()) {
            return;
        }
        let mut names: Vec<String> = cert.dns_names().iter().map(|s| s.to_string()).collect();
        if let Some(cn) = cert.subject.common_name() {
            if !names.iter().any(|n| n == cn) {
                names.push(cn.to_string());
            }
        }
        let record = IndexedCert {
            issuer: cert.issuer.clone(),
            validity: cert.validity,
            cert,
        };
        for name in names {
            self.by_domain.entry(name).or_default().push(record.clone());
        }
    }

    /// All records for a domain.
    pub fn records(&self, domain: &str) -> &[IndexedCert] {
        self.by_domain.get(domain).map(Vec::as_slice).unwrap_or(&[])
    }

    /// Issuers CT has recorded for `domain` whose validity overlaps
    /// `observed` — the comparison set for interception detection.
    pub fn recorded_issuers_overlapping(
        &self,
        domain: &str,
        observed: Validity,
    ) -> Vec<&DistinguishedName> {
        self.records(domain)
            .iter()
            .filter(|r| overlaps(r.validity, observed))
            .map(|r| &r.issuer)
            .collect()
    }

    /// Whether CT knows this domain at all.
    pub fn knows_domain(&self, domain: &str) -> bool {
        self.by_domain.contains_key(domain)
    }

    /// Whether a certificate (by fingerprint) is indexed — the
    /// CT-compliance lookup for anchored non-public leaves (§4.2).
    pub fn contains_fingerprint(&self, fingerprint: &Fingerprint) -> bool {
        self.fingerprints.contains(fingerprint)
    }

    /// Number of distinct indexed certificates.
    pub fn len(&self) -> usize {
        self.fingerprints.len()
    }

    /// Whether the index is empty.
    pub fn is_empty(&self) -> bool {
        self.fingerprints.is_empty()
    }
}

fn overlaps(a: Validity, b: Validity) -> bool {
    a.not_before <= b.not_after && b.not_before <= a.not_after
}

#[cfg(test)]
mod tests {
    use super::*;
    use certchain_asn1::Asn1Time;
    use certchain_cryptosim::KeyPair;
    use certchain_x509::CertificateBuilder;

    fn t(y: u64, m: u64, d: u64) -> Asn1Time {
        Asn1Time::from_ymd_hms(y, m, d, 0, 0, 0).unwrap()
    }

    fn leaf(issuer: &str, domain: &str, start: Asn1Time, days: u64) -> Arc<Certificate> {
        let kp = KeyPair::derive(1, issuer);
        CertificateBuilder::new()
            .issuer(DistinguishedName::cn_o(issuer, issuer))
            .subject(DistinguishedName::cn(domain))
            .validity(Validity::days_from(start, days))
            .leaf_for(domain)
            .sign(&kp)
            .into_arc()
    }

    #[test]
    fn indexes_san_and_cn() {
        let mut index = DomainIndex::new();
        let kp = KeyPair::derive(2, "ca");
        let cert = CertificateBuilder::new()
            .issuer(DistinguishedName::cn("CA"))
            .subject(DistinguishedName::cn("cn.example.org"))
            .validity(Validity::days_from(t(2020, 9, 1), 90))
            .extension(certchain_x509::Extension::SubjectAltName(vec![
                "san1.example.org".into(),
                "san2.example.org".into(),
            ]))
            .sign(&kp)
            .into_arc();
        index.add(cert);
        assert!(index.knows_domain("cn.example.org"));
        assert!(index.knows_domain("san1.example.org"));
        assert!(index.knows_domain("san2.example.org"));
        assert!(!index.knows_domain("other.example.org"));
        assert_eq!(index.len(), 1);
    }

    #[test]
    fn add_is_idempotent() {
        let mut index = DomainIndex::new();
        let c = leaf("CA X", "dup.example.org", t(2020, 9, 1), 90);
        index.add(Arc::clone(&c));
        index.add(c);
        assert_eq!(index.records("dup.example.org").len(), 1);
    }

    #[test]
    fn issuer_overlap_query() {
        let mut index = DomainIndex::new();
        index.add(leaf("Real CA", "site.org", t(2020, 9, 1), 90));
        index.add(leaf("Old CA", "site.org", t(2019, 1, 1), 90));

        // Observed validity overlapping the Real CA window.
        let observed = Validity::days_from(t(2020, 10, 1), 30);
        let issuers = index.recorded_issuers_overlapping("site.org", observed);
        assert_eq!(issuers.len(), 1);
        assert_eq!(issuers[0].common_name(), Some("Real CA"));

        // An interception issuer would not appear in this set.
        let middlebox = DistinguishedName::cn_o("Zscaler Intermediate CA", "Zscaler");
        assert!(!issuers.contains(&&middlebox));
    }

    #[test]
    fn no_overlap_no_issuers() {
        let mut index = DomainIndex::new();
        index.add(leaf("CA", "gone.org", t(2018, 1, 1), 30));
        let observed = Validity::days_from(t(2021, 1, 1), 30);
        assert!(index
            .recorded_issuers_overlapping("gone.org", observed)
            .is_empty());
    }

    #[test]
    fn build_from_logs() {
        let mut log_a = CtLog::new(1, "log-a");
        let mut log_b = CtLog::new(2, "log-b");
        let c1 = leaf("CA", "a.org", t(2020, 9, 1), 90);
        let c2 = leaf("CA", "b.org", t(2020, 9, 1), 90);
        log_a.submit(Arc::clone(&c1), t(2020, 9, 1));
        log_b.submit(Arc::clone(&c2), t(2020, 9, 1));
        // Same cert in both logs: index deduplicates.
        log_b.submit(Arc::clone(&c1), t(2020, 9, 2));
        let index = DomainIndex::build(&[&log_a, &log_b]);
        assert_eq!(index.len(), 2);
        assert!(index.knows_domain("a.org"));
        assert!(index.knows_domain("b.org"));
    }

    #[test]
    fn overlap_is_inclusive() {
        let a = Validity::days_from(t(2020, 1, 1), 10);
        let b = Validity::days_from(t(2020, 1, 11), 10); // b starts the day a ends
        assert!(overlaps(a, b));
        let c = Validity::days_from(t(2020, 1, 12), 10);
        assert!(!overlaps(a, c));
    }
}
