//! Distinguished names: the issuer/subject fields the paper's
//! issuer–subject validation methodology compares.
//!
//! A [`DistinguishedName`] is an ordered sequence of RDNs; each RDN here
//! holds a single attribute-value pair (multi-valued RDNs are vanishingly
//! rare in server certificates and are not modelled). Supports DER
//! (RDNSequence) and the RFC 4514 string form both ways.

use certchain_asn1::{oid::known, reader, Asn1Error, Asn1Result, Decoder, Encoder, Oid, Tag};
use std::fmt;

/// Attribute types found in subject/issuer names.
#[derive(Debug, Clone, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum AttrType {
    /// CN
    CommonName,
    /// C
    Country,
    /// L
    Locality,
    /// ST
    StateOrProvince,
    /// O
    Organization,
    /// OU
    OrganizationalUnit,
    /// emailAddress (PKCS#9) — common in private-PKI DNs like the paper's
    /// `emailAddress=webmaster@localhost` leaf cluster.
    EmailAddress,
    /// Anything else, kept by OID.
    Other(Oid),
}

impl AttrType {
    /// The attribute's OID.
    pub fn oid(&self) -> Oid {
        match self {
            AttrType::CommonName => known::common_name(),
            AttrType::Country => known::country(),
            AttrType::Locality => known::locality(),
            AttrType::StateOrProvince => known::state_or_province(),
            AttrType::Organization => known::organization(),
            AttrType::OrganizationalUnit => known::organizational_unit(),
            AttrType::EmailAddress => known::email_address(),
            AttrType::Other(oid) => oid.clone(),
        }
    }

    /// Map an OID back to the enum.
    pub fn from_oid(oid: Oid) -> AttrType {
        if oid == known::common_name() {
            AttrType::CommonName
        } else if oid == known::country() {
            AttrType::Country
        } else if oid == known::locality() {
            AttrType::Locality
        } else if oid == known::state_or_province() {
            AttrType::StateOrProvince
        } else if oid == known::organization() {
            AttrType::Organization
        } else if oid == known::organizational_unit() {
            AttrType::OrganizationalUnit
        } else if oid == known::email_address() {
            AttrType::EmailAddress
        } else {
            AttrType::Other(oid)
        }
    }

    /// RFC 4514 short name, or dotted OID for unknown types.
    pub fn short_name(&self) -> String {
        match self {
            AttrType::CommonName => "CN".into(),
            AttrType::Country => "C".into(),
            AttrType::Locality => "L".into(),
            AttrType::StateOrProvince => "ST".into(),
            AttrType::Organization => "O".into(),
            AttrType::OrganizationalUnit => "OU".into(),
            AttrType::EmailAddress => "emailAddress".into(),
            AttrType::Other(oid) => oid.to_string(),
        }
    }

    /// Parse an RFC 4514 attribute key.
    pub fn from_short_name(name: &str) -> Option<AttrType> {
        match name {
            "CN" => Some(AttrType::CommonName),
            "C" => Some(AttrType::Country),
            "L" => Some(AttrType::Locality),
            "ST" => Some(AttrType::StateOrProvince),
            "O" => Some(AttrType::Organization),
            "OU" => Some(AttrType::OrganizationalUnit),
            "emailAddress" | "E" => Some(AttrType::EmailAddress),
            other => other.parse::<Oid>().ok().map(AttrType::Other),
        }
    }
}

/// A single-valued relative distinguished name.
#[derive(Debug, Clone, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct Rdn {
    /// Attribute type.
    pub attr: AttrType,
    /// Attribute value.
    pub value: String,
}

/// An ordered distinguished name, e.g. `CN=example.org, O=Acme, C=US`.
///
/// ```
/// use certchain_x509::DistinguishedName;
/// let dn = DistinguishedName::cn_o("R3", "Let's Encrypt");
/// assert_eq!(dn.to_rfc4514(), "CN=R3, O=Let's Encrypt");
/// assert_eq!(DistinguishedName::parse_rfc4514(&dn.to_rfc4514()), Some(dn));
/// ```
///
/// Equality is exact (same attributes, same values, same order), mirroring
/// the byte comparison Zeek logs permit. RFC 5280 name *matching* rules
/// (case folding etc.) are intentionally not applied: the paper compares
/// logged strings.
#[derive(Debug, Clone, PartialEq, Eq, Hash, Default, PartialOrd, Ord)]
pub struct DistinguishedName {
    rdns: Vec<Rdn>,
}

impl DistinguishedName {
    /// Empty name (used by some malformed certificates).
    pub fn empty() -> DistinguishedName {
        DistinguishedName::default()
    }

    /// Build from `(type, value)` pairs in order.
    pub fn from_pairs(pairs: &[(AttrType, &str)]) -> DistinguishedName {
        DistinguishedName {
            rdns: pairs
                .iter()
                .map(|(attr, value)| Rdn {
                    attr: attr.clone(),
                    value: (*value).to_string(),
                })
                .collect(),
        }
    }

    /// Convenience: a name with just a common name.
    pub fn cn(common_name: &str) -> DistinguishedName {
        DistinguishedName::from_pairs(&[(AttrType::CommonName, common_name)])
    }

    /// Convenience: `CN=…, O=…` (the usual CA shape).
    pub fn cn_o(common_name: &str, org: &str) -> DistinguishedName {
        DistinguishedName::from_pairs(&[
            (AttrType::CommonName, common_name),
            (AttrType::Organization, org),
        ])
    }

    /// The RDNs in order.
    pub fn rdns(&self) -> &[Rdn] {
        &self.rdns
    }

    /// Whether no RDNs are present.
    pub fn is_empty(&self) -> bool {
        self.rdns.is_empty()
    }

    /// First value of the given attribute type, if any.
    pub fn get(&self, attr: &AttrType) -> Option<&str> {
        self.rdns
            .iter()
            .find(|r| &r.attr == attr)
            .map(|r| r.value.as_str())
    }

    /// The common name, if any.
    pub fn common_name(&self) -> Option<&str> {
        self.get(&AttrType::CommonName)
    }

    /// Append an RDN (builder style).
    pub fn with(mut self, attr: AttrType, value: &str) -> DistinguishedName {
        self.rdns.push(Rdn {
            attr,
            value: value.to_string(),
        });
        self
    }

    /// DER-encode as an RDNSequence.
    pub fn encode(&self, enc: &mut Encoder) {
        enc.sequence(|enc| {
            for rdn in &self.rdns {
                enc.set(|enc| {
                    enc.sequence(|enc| {
                        enc.oid(&rdn.attr.oid());
                        if reader::is_printable(&rdn.value) {
                            enc.printable_string(&rdn.value);
                        } else {
                            enc.utf8_string(&rdn.value);
                        }
                    });
                });
            }
        });
    }

    /// Decode an RDNSequence.
    pub fn decode(dec: &mut Decoder<'_>) -> Asn1Result<DistinguishedName> {
        let seq = dec.expect(Tag::SEQUENCE)?;
        let mut inner = seq.decoder()?;
        let mut rdns = Vec::new();
        while !inner.is_at_end() {
            let set = inner.expect(Tag::SET)?;
            let mut set_dec = set.decoder()?;
            let atav = set_dec.expect(Tag::SEQUENCE)?;
            if !set_dec.is_at_end() {
                // Multi-valued RDN: unsupported by this model.
                return Err(Asn1Error::UnconsumedContent {
                    offset: set_dec.offset(),
                });
            }
            let mut atav_dec = atav.decoder()?;
            let oid = atav_dec.oid()?;
            let value = atav_dec.directory_string()?.to_string();
            atav_dec.finish()?;
            rdns.push(Rdn {
                attr: AttrType::from_oid(oid),
                value,
            });
        }
        Ok(DistinguishedName { rdns })
    }

    /// Render in RFC 4514 style (`CN=a, O=b`), escaping `,`, `+`, `"`, `\`,
    /// `<`, `>`, `;`, leading/trailing spaces and leading `#`.
    pub fn to_rfc4514(&self) -> String {
        let mut out = String::new();
        for (i, rdn) in self.rdns.iter().enumerate() {
            if i > 0 {
                out.push_str(", ");
            }
            out.push_str(&rdn.attr.short_name());
            out.push('=');
            out.push_str(&escape_value(&rdn.value));
        }
        out
    }

    /// Parse an RFC 4514-style string. Accepts both `, ` and `,` separators.
    pub fn parse_rfc4514(s: &str) -> Option<DistinguishedName> {
        if s.trim().is_empty() {
            return Some(DistinguishedName::empty());
        }
        let mut rdns = Vec::new();
        for part in split_unescaped(s, ',') {
            let part = part.trim_start();
            let eq = find_unescaped(part, '=')?;
            let (key, value) = part.split_at(eq);
            let attr = AttrType::from_short_name(key.trim())?;
            rdns.push(Rdn {
                attr,
                value: unescape_value(&value[1..]),
            });
        }
        Some(DistinguishedName { rdns })
    }
}

fn escape_value(v: &str) -> String {
    let mut out = String::with_capacity(v.len());
    let chars: Vec<char> = v.chars().collect();
    for (i, &c) in chars.iter().enumerate() {
        let needs_escape = matches!(c, ',' | '+' | '"' | '\\' | '<' | '>' | ';')
            || (i == 0 && (c == ' ' || c == '#'))
            || (i == chars.len() - 1 && c == ' ');
        if needs_escape {
            out.push('\\');
        }
        out.push(c);
    }
    out
}

fn unescape_value(v: &str) -> String {
    let mut out = String::with_capacity(v.len());
    let mut chars = v.chars();
    while let Some(c) = chars.next() {
        if c == '\\' {
            if let Some(next) = chars.next() {
                out.push(next);
            }
        } else {
            out.push(c);
        }
    }
    out
}

fn split_unescaped(s: &str, sep: char) -> Vec<&str> {
    let mut parts = Vec::new();
    let mut start = 0;
    let mut escaped = false;
    for (i, c) in s.char_indices() {
        if escaped {
            escaped = false;
        } else if c == '\\' {
            escaped = true;
        } else if c == sep {
            parts.push(&s[start..i]);
            start = i.saturating_add(c.len_utf8());
        }
    }
    parts.push(&s[start..]);
    parts
}

fn find_unescaped(s: &str, target: char) -> Option<usize> {
    let mut escaped = false;
    for (i, c) in s.char_indices() {
        if escaped {
            escaped = false;
        } else if c == '\\' {
            escaped = true;
        } else if c == target {
            return Some(i);
        }
    }
    None
}

impl fmt::Display for DistinguishedName {
    /// Delegates to the RFC 4514 form.
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.to_rfc4514())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use certchain_asn1::writer::encode;

    #[test]
    fn build_and_query() {
        let dn = DistinguishedName::cn_o("Let's Encrypt R3", "Let's Encrypt");
        assert_eq!(dn.common_name(), Some("Let's Encrypt R3"));
        assert_eq!(dn.get(&AttrType::Organization), Some("Let's Encrypt"));
        assert_eq!(dn.get(&AttrType::Country), None);
        assert!(!dn.is_empty());
        assert!(DistinguishedName::empty().is_empty());
    }

    #[test]
    fn rfc4514_rendering() {
        let dn = DistinguishedName::from_pairs(&[
            (AttrType::CommonName, "example.org"),
            (AttrType::Organization, "Acme, Inc."),
            (AttrType::Country, "US"),
        ]);
        assert_eq!(dn.to_rfc4514(), "CN=example.org, O=Acme\\, Inc., C=US");
    }

    #[test]
    fn rfc4514_round_trip() {
        let cases = [
            DistinguishedName::cn("plain.example.org"),
            DistinguishedName::from_pairs(&[
                (AttrType::CommonName, "with, comma"),
                (AttrType::Organization, "trailing space "),
                (AttrType::OrganizationalUnit, "#leading hash"),
            ]),
            // The paper's localhost leaf (Appendix F.3 footnote).
            DistinguishedName::from_pairs(&[
                (AttrType::EmailAddress, "webmaster@localhost"),
                (AttrType::CommonName, "localhost"),
                (AttrType::OrganizationalUnit, "none"),
                (AttrType::Organization, "none"),
                (AttrType::Locality, "Sometown"),
                (AttrType::StateOrProvince, "Someprovince"),
                (AttrType::Country, "US"),
            ]),
            DistinguishedName::empty(),
        ];
        for dn in cases {
            let rendered = dn.to_rfc4514();
            let parsed = DistinguishedName::parse_rfc4514(&rendered).unwrap();
            assert_eq!(parsed, dn, "string form: {rendered}");
        }
    }

    #[test]
    fn rfc4514_parse_tolerates_tight_commas() {
        let dn = DistinguishedName::parse_rfc4514("CN=a,O=b,C=US").unwrap();
        assert_eq!(dn.rdns().len(), 3);
        assert_eq!(dn.common_name(), Some("a"));
    }

    #[test]
    fn rfc4514_parse_rejects_garbage() {
        assert!(DistinguishedName::parse_rfc4514("no equals sign").is_none());
        assert!(DistinguishedName::parse_rfc4514("NOTAKEY!=x").is_none());
    }

    #[test]
    fn der_round_trip() {
        let dn = DistinguishedName::from_pairs(&[
            (AttrType::CommonName, "Grüße GmbH"),  // forces UTF8String
            (AttrType::Organization, "Acme Corp"), // PrintableString
            (AttrType::Country, "DE"),
        ]);
        let der = encode(|e| dn.encode(e));
        let mut dec = Decoder::new(&der);
        let decoded = DistinguishedName::decode(&mut dec).unwrap();
        dec.finish().unwrap();
        assert_eq!(decoded, dn);
    }

    #[test]
    fn der_empty_name() {
        let dn = DistinguishedName::empty();
        let der = encode(|e| dn.encode(e));
        assert_eq!(der, [0x30, 0x00]);
        let mut dec = Decoder::new(&der);
        assert_eq!(DistinguishedName::decode(&mut dec).unwrap(), dn);
    }

    #[test]
    fn der_unknown_attribute_survives() {
        let oid: Oid = "1.2.3.4.5".parse().unwrap();
        let dn = DistinguishedName::from_pairs(&[(AttrType::Other(oid.clone()), "custom")]);
        let der = encode(|e| dn.encode(e));
        let mut dec = Decoder::new(&der);
        let decoded = DistinguishedName::decode(&mut dec).unwrap();
        assert_eq!(decoded.get(&AttrType::Other(oid)), Some("custom"));
    }

    #[test]
    fn order_matters_for_equality() {
        let a = DistinguishedName::from_pairs(&[
            (AttrType::CommonName, "x"),
            (AttrType::Organization, "y"),
        ]);
        let b = DistinguishedName::from_pairs(&[
            (AttrType::Organization, "y"),
            (AttrType::CommonName, "x"),
        ]);
        assert_ne!(a, b);
    }

    #[test]
    fn attr_short_names_round_trip() {
        for attr in [
            AttrType::CommonName,
            AttrType::Country,
            AttrType::Locality,
            AttrType::StateOrProvince,
            AttrType::Organization,
            AttrType::OrganizationalUnit,
            AttrType::EmailAddress,
        ] {
            let name = attr.short_name();
            assert_eq!(AttrType::from_short_name(&name), Some(attr.clone()));
            assert_eq!(AttrType::from_oid(attr.oid()), attr);
        }
    }
}
