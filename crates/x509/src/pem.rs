//! PEM armor (RFC 7468) with a from-scratch base64 codec.
//!
//! Used by the scanner crate to mimic `openssl s_client -showcerts` output
//! in the retrospective experiment.

use std::fmt;

const ALPHABET: &[u8; 64] = b"ABCDEFGHIJKLMNOPQRSTUVWXYZabcdefghijklmnopqrstuvwxyz0123456789+/";

/// Errors from PEM parsing.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum PemError {
    /// No BEGIN line with the expected label.
    MissingBegin,
    /// No END line with the expected label.
    MissingEnd,
    /// A character outside the base64 alphabet.
    InvalidBase64,
}

impl fmt::Display for PemError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            PemError::MissingBegin => write!(f, "missing PEM BEGIN line"),
            PemError::MissingEnd => write!(f, "missing PEM END line"),
            PemError::InvalidBase64 => write!(f, "invalid base64 in PEM body"),
        }
    }
}

impl std::error::Error for PemError {}

/// Encode bytes as base64 (standard alphabet, padded).
pub fn base64_encode(data: &[u8]) -> String {
    let mut out = String::with_capacity(data.len().div_ceil(3).saturating_mul(4));
    for chunk in data.chunks(3) {
        let b = [
            chunk[0],
            chunk.get(1).copied().unwrap_or(0),
            chunk.get(2).copied().unwrap_or(0),
        ];
        let n = (b[0] as u32) << 16 | (b[1] as u32) << 8 | b[2] as u32;
        out.push(ALPHABET[(n >> 18) as usize & 63] as char);
        out.push(ALPHABET[(n >> 12) as usize & 63] as char);
        out.push(if chunk.len() > 1 {
            ALPHABET[(n >> 6) as usize & 63] as char
        } else {
            '='
        });
        out.push(if chunk.len() > 2 {
            ALPHABET[n as usize & 63] as char
        } else {
            '='
        });
    }
    out
}

/// Decode base64 (whitespace tolerated, padding required where applicable).
pub fn base64_decode(text: &str) -> Result<Vec<u8>, PemError> {
    fn value(c: u8) -> Result<u32, PemError> {
        match c {
            b'A'..=b'Z' => Ok((c - b'A') as u32),
            b'a'..=b'z' => Ok((c - b'a' + 26) as u32),
            b'0'..=b'9' => Ok((c - b'0' + 52) as u32),
            b'+' => Ok(62),
            b'/' => Ok(63),
            _ => Err(PemError::InvalidBase64),
        }
    }
    let cleaned: Vec<u8> = text.bytes().filter(|b| !b.is_ascii_whitespace()).collect();
    if cleaned.len() % 4 != 0 {
        return Err(PemError::InvalidBase64);
    }
    let mut out = Vec::with_capacity(cleaned.len() / 4 * 3);
    for quad in cleaned.chunks(4) {
        let pad = quad.iter().rev().take_while(|&&c| c == b'=').count();
        if pad > 2 || quad[..4 - pad].contains(&b'=') {
            return Err(PemError::InvalidBase64);
        }
        let mut n: u32 = 0;
        for &c in &quad[..4 - pad] {
            n = (n << 6) | value(c)?;
        }
        n <<= 6 * pad as u32;
        out.push((n >> 16) as u8);
        if pad < 2 {
            out.push((n >> 8) as u8);
        }
        if pad < 1 {
            out.push(n as u8);
        }
    }
    Ok(out)
}

/// Wrap DER bytes in PEM armor with the given label (e.g. `CERTIFICATE`).
pub fn encode(label: &str, der: &[u8]) -> String {
    let b64 = base64_encode(der);
    let mut out = format!("-----BEGIN {label}-----\n");
    for line in b64.as_bytes().chunks(64) {
        out.push_str(std::str::from_utf8(line).expect("base64 is ASCII"));
        out.push('\n');
    }
    out.push_str(&format!("-----END {label}-----\n"));
    out
}

/// Extract every PEM block with the given label, in order.
pub fn decode_all(label: &str, text: &str) -> Result<Vec<Vec<u8>>, PemError> {
    let begin = format!("-----BEGIN {label}-----");
    let end = format!("-----END {label}-----");
    let mut blocks = Vec::new();
    let mut rest = text;
    while let Some(b) = rest.find(&begin) {
        let after_begin = &rest[b + begin.len()..];
        let e = after_begin.find(&end).ok_or(PemError::MissingEnd)?;
        blocks.push(base64_decode(&after_begin[..e])?);
        rest = &after_begin[e + end.len()..];
    }
    if blocks.is_empty() {
        return Err(PemError::MissingBegin);
    }
    Ok(blocks)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn base64_known_vectors() {
        // RFC 4648 vectors.
        assert_eq!(base64_encode(b""), "");
        assert_eq!(base64_encode(b"f"), "Zg==");
        assert_eq!(base64_encode(b"fo"), "Zm8=");
        assert_eq!(base64_encode(b"foo"), "Zm9v");
        assert_eq!(base64_encode(b"foob"), "Zm9vYg==");
        assert_eq!(base64_encode(b"fooba"), "Zm9vYmE=");
        assert_eq!(base64_encode(b"foobar"), "Zm9vYmFy");
    }

    #[test]
    fn base64_round_trip() {
        for len in 0..48 {
            let data: Vec<u8> = (0..len as u8).collect();
            assert_eq!(base64_decode(&base64_encode(&data)).unwrap(), data);
        }
    }

    #[test]
    fn base64_rejects_garbage() {
        assert_eq!(base64_decode("!!!!"), Err(PemError::InvalidBase64));
        assert_eq!(base64_decode("abc"), Err(PemError::InvalidBase64));
        assert_eq!(base64_decode("a==="), Err(PemError::InvalidBase64));
        assert_eq!(base64_decode("=abc"), Err(PemError::InvalidBase64));
    }

    #[test]
    fn pem_round_trip() {
        let der = (0u16..300).map(|i| (i % 251) as u8).collect::<Vec<_>>();
        let pem = encode("CERTIFICATE", &der);
        assert!(pem.starts_with("-----BEGIN CERTIFICATE-----\n"));
        assert!(pem.ends_with("-----END CERTIFICATE-----\n"));
        // 64-char line wrapping.
        assert!(pem.lines().all(|l| l.len() <= 64 || l.starts_with("-----")));
        let blocks = decode_all("CERTIFICATE", &pem).unwrap();
        assert_eq!(blocks, vec![der]);
    }

    #[test]
    fn multiple_blocks_in_order() {
        let a = vec![1u8, 2, 3];
        let b = vec![4u8, 5];
        let text = format!("{}{}", encode("CERTIFICATE", &a), encode("CERTIFICATE", &b));
        assert_eq!(decode_all("CERTIFICATE", &text).unwrap(), vec![a, b]);
    }

    #[test]
    fn missing_blocks_reported() {
        assert_eq!(
            decode_all("CERTIFICATE", "no pem here"),
            Err(PemError::MissingBegin)
        );
        assert_eq!(
            decode_all("CERTIFICATE", "-----BEGIN CERTIFICATE-----\nZm9v"),
            Err(PemError::MissingEnd)
        );
    }

    #[test]
    fn label_mismatch_is_missing() {
        let pem = encode("PRIVATE KEY", &[1, 2, 3]);
        assert_eq!(decode_all("CERTIFICATE", &pem), Err(PemError::MissingBegin));
    }
}
