//! Certificate serial numbers (RFC 5280 §4.1.2.2: up to 20 octets,
//! non-negative).

use certchain_asn1::{Asn1Result, Decoder, Encoder};
use std::fmt;

/// A certificate serial number: an unsigned big-endian integer of at most
/// 20 octets. Stored with leading zeros trimmed.
#[derive(Debug, Clone, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct Serial {
    bytes: Vec<u8>,
}

impl Serial {
    /// From a u64 counter (the simulator's default).
    pub fn from_u64(value: u64) -> Serial {
        let bytes = value.to_be_bytes();
        let start = bytes.iter().position(|&b| b != 0).unwrap_or(7);
        Serial {
            bytes: bytes[start..].to_vec(),
        }
    }

    /// From raw magnitude bytes (trims leading zeros; clamps to 20 octets by
    /// keeping the least-significant 20, as misbehaving CAs do in practice).
    pub fn from_bytes(bytes: &[u8]) -> Serial {
        let trimmed: Vec<u8> = {
            let start = bytes.iter().position(|&b| b != 0).unwrap_or(bytes.len());
            bytes[start..].to_vec()
        };
        if trimmed.is_empty() {
            return Serial { bytes: vec![0] };
        }
        let keep = trimmed.len().min(20);
        Serial {
            bytes: trimmed[trimmed.len() - keep..].to_vec(),
        }
    }

    /// Magnitude bytes (no sign octet, no leading zeros — except the single
    /// zero byte for serial 0).
    pub fn as_bytes(&self) -> &[u8] {
        &self.bytes
    }

    /// Encode as a DER INTEGER.
    pub fn encode(&self, enc: &mut Encoder) {
        enc.integer_bytes(&self.bytes);
    }

    /// Decode from a DER INTEGER.
    pub fn decode(dec: &mut Decoder<'_>) -> Asn1Result<Serial> {
        let bytes = dec.integer_bytes()?;
        Ok(Serial::from_bytes(bytes))
    }

    /// Uppercase colon-free hex, the form crt.sh displays.
    pub fn to_hex(&self) -> String {
        let mut s = String::with_capacity(self.bytes.len().saturating_mul(2));
        for b in &self.bytes {
            use std::fmt::Write;
            write!(s, "{b:02X}").expect("writing to String cannot fail");
        }
        s
    }
}

impl fmt::Display for Serial {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.to_hex())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use certchain_asn1::writer::encode;

    #[test]
    fn from_u64_trims() {
        assert_eq!(Serial::from_u64(0).as_bytes(), &[0]);
        assert_eq!(Serial::from_u64(1).as_bytes(), &[1]);
        assert_eq!(Serial::from_u64(0x1234).as_bytes(), &[0x12, 0x34]);
    }

    #[test]
    fn from_bytes_trims_and_clamps() {
        assert_eq!(Serial::from_bytes(&[0, 0, 5]).as_bytes(), &[5]);
        assert_eq!(Serial::from_bytes(&[]).as_bytes(), &[0]);
        let long = [0xffu8; 25];
        assert_eq!(Serial::from_bytes(&long).as_bytes().len(), 20);
    }

    #[test]
    fn der_round_trip() {
        for serial in [
            Serial::from_u64(0),
            Serial::from_u64(127),
            Serial::from_u64(128),
            Serial::from_u64(u64::MAX),
            Serial::from_bytes(&[0x80; 20]),
        ] {
            let der = encode(|e| serial.encode(e));
            let mut dec = Decoder::new(&der);
            assert_eq!(Serial::decode(&mut dec).unwrap(), serial);
        }
    }

    #[test]
    fn hex_display() {
        assert_eq!(Serial::from_u64(0xdead).to_string(), "DEAD");
        assert_eq!(Serial::from_u64(0).to_string(), "00");
    }
}
