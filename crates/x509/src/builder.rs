//! Fluent certificate construction.

use crate::cert::{AlgorithmId, Certificate};
use crate::dn::DistinguishedName;
use crate::extensions::{BasicConstraints, Extension, KeyUsage};
use crate::serial::Serial;
use crate::validity::Validity;
use certchain_asn1::Asn1Time;
use certchain_cryptosim::{sign, KeyPair, PublicKey};

/// Builder for [`Certificate`].
///
/// Defaults: version 2 (v3), serial 1, SimSig algorithm, empty issuer and
/// subject, a one-day validity starting at the Unix epoch, and no
/// extensions. Everything is overridable, including into deliberately
/// malformed shapes — the misconfiguration operators in the `workload`
/// crate rely on that freedom.
#[derive(Debug, Clone)]
pub struct CertificateBuilder {
    version: u64,
    serial: Serial,
    algorithm: AlgorithmId,
    issuer: DistinguishedName,
    validity: Validity,
    subject: DistinguishedName,
    public_key: Option<PublicKey>,
    extensions: Vec<Extension>,
}

impl Default for CertificateBuilder {
    fn default() -> CertificateBuilder {
        CertificateBuilder {
            version: 2,
            serial: Serial::from_u64(1),
            algorithm: AlgorithmId::SimSig,
            issuer: DistinguishedName::empty(),
            validity: Validity::days_from(Asn1Time::from_unix(0), 1),
            subject: DistinguishedName::empty(),
            public_key: None,
            extensions: Vec::new(),
        }
    }
}

impl CertificateBuilder {
    /// Fresh builder with defaults.
    pub fn new() -> CertificateBuilder {
        CertificateBuilder::default()
    }

    /// X.509 version number (0 = v1, 2 = v3).
    pub fn version(mut self, version: u64) -> Self {
        self.version = version;
        self
    }

    /// Serial number.
    pub fn serial(mut self, serial: Serial) -> Self {
        self.serial = serial;
        self
    }

    /// Signature algorithm.
    pub fn algorithm(mut self, algorithm: AlgorithmId) -> Self {
        self.algorithm = algorithm;
        self
    }

    /// Issuer DN.
    pub fn issuer(mut self, issuer: DistinguishedName) -> Self {
        self.issuer = issuer;
        self
    }

    /// Validity window.
    pub fn validity(mut self, validity: Validity) -> Self {
        self.validity = validity;
        self
    }

    /// Subject DN.
    pub fn subject(mut self, subject: DistinguishedName) -> Self {
        self.subject = subject;
        self
    }

    /// Subject public key.
    pub fn public_key(mut self, key: PublicKey) -> Self {
        self.public_key = Some(key);
        self
    }

    /// Append one extension.
    pub fn extension(mut self, ext: Extension) -> Self {
        self.extensions.push(ext);
        self
    }

    /// Convenience: mark as a CA with standard CA extensions.
    pub fn ca(self, path_len: Option<u64>) -> Self {
        self.extension(Extension::BasicConstraints(BasicConstraints {
            ca: true,
            path_len,
        }))
        .extension(Extension::KeyUsage(KeyUsage::ca()))
    }

    /// Convenience: mark as a leaf with standard server-cert extensions.
    pub fn leaf_for(self, dns_name: &str) -> Self {
        self.extension(Extension::BasicConstraints(BasicConstraints {
            ca: false,
            path_len: None,
        }))
        .extension(Extension::KeyUsage(KeyUsage::leaf()))
        .extension(Extension::SubjectAltName(vec![dns_name.to_string()]))
    }

    /// Sign with the issuer's keypair and produce the certificate.
    ///
    /// The subject public key defaults to the *signer's* public key when not
    /// set (the self-signed root case).
    pub fn sign(self, issuer_keypair: &KeyPair) -> Certificate {
        let public_key = self
            .public_key
            .unwrap_or_else(|| issuer_keypair.public().clone());
        // Assemble once with a placeholder signature to obtain TBS bytes,
        // then attach the real signature.
        let tbs = Certificate::assemble(
            self.version,
            self.serial.clone(),
            self.algorithm.clone(),
            self.issuer.clone(),
            self.validity,
            self.subject.clone(),
            public_key.clone(),
            self.extensions.clone(),
            certchain_cryptosim::Signature::from_bytes([0; 32]),
        )
        .tbs_der();
        let signature = sign(issuer_keypair, &tbs);
        Certificate::assemble(
            self.version,
            self.serial,
            self.algorithm,
            self.issuer,
            self.validity,
            self.subject,
            public_key,
            self.extensions,
            signature,
        )
    }

    /// Produce a certificate whose signature is garbage — it will fail
    /// key-signature validation while remaining structurally valid. Models
    /// the paper's impersonation / corrupted-signature cases.
    pub fn sign_invalid(self) -> Certificate {
        let public_key = self
            .public_key
            .clone()
            .unwrap_or_else(|| KeyPair::derive(0, "builder:fallback").public().clone());
        Certificate::assemble(
            self.version,
            self.serial,
            self.algorithm,
            self.issuer,
            self.validity,
            self.subject,
            public_key,
            self.extensions,
            certchain_cryptosim::Signature::from_bytes([0xde; 32]),
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn t0() -> Asn1Time {
        Asn1Time::from_ymd_hms(2020, 9, 1, 0, 0, 0).unwrap()
    }

    #[test]
    fn ca_helper_sets_extensions() {
        let kp = KeyPair::derive(1, "root");
        let dn = DistinguishedName::cn_o("Root", "Org");
        let cert = CertificateBuilder::new()
            .issuer(dn.clone())
            .subject(dn)
            .validity(Validity::days_from(t0(), 3650))
            .ca(Some(2))
            .sign(&kp);
        let bc = cert.basic_constraints().unwrap();
        assert!(bc.ca);
        assert_eq!(bc.path_len, Some(2));
        assert!(cert.is_self_signed());
        assert!(cert.verify_signed_by(kp.public()));
    }

    #[test]
    fn leaf_helper_sets_san() {
        let ca = KeyPair::derive(1, "ca");
        let leaf_key = KeyPair::derive(1, "leaf");
        let cert = CertificateBuilder::new()
            .issuer(DistinguishedName::cn("CA"))
            .subject(DistinguishedName::cn("www.example.org"))
            .validity(Validity::days_from(t0(), 90))
            .public_key(leaf_key.public().clone())
            .leaf_for("www.example.org")
            .sign(&ca);
        assert_eq!(cert.dns_names(), vec!["www.example.org"]);
        assert!(!cert.basic_constraints().unwrap().ca);
    }

    #[test]
    fn default_public_key_is_signer() {
        let kp = KeyPair::derive(5, "self");
        let cert = CertificateBuilder::new()
            .issuer(DistinguishedName::cn("s"))
            .subject(DistinguishedName::cn("s"))
            .validity(Validity::days_from(t0(), 1))
            .sign(&kp);
        assert_eq!(&cert.public_key, kp.public());
    }

    #[test]
    fn sign_invalid_fails_verification() {
        let ca = KeyPair::derive(1, "ca");
        let cert = CertificateBuilder::new()
            .issuer(DistinguishedName::cn("CA"))
            .subject(DistinguishedName::cn("victim.org"))
            .validity(Validity::days_from(t0(), 30))
            .public_key(KeyPair::derive(9, "v").public().clone())
            .sign_invalid();
        assert!(!cert.verify_signed_by(ca.public()));
        // Still parses from DER.
        assert!(crate::Certificate::parse(cert.der()).is_ok());
    }
}
