//! The certificate itself: TBS structure, DER encode/parse, fingerprints
//! and signature verification against the simulated scheme.

use crate::dn::DistinguishedName;
use crate::extensions::{decode_extensions, encode_extensions, BasicConstraints, Extension};
use crate::serial::Serial;
use crate::validity::Validity;
use certchain_asn1::{oid::known, writer, Asn1Error, Asn1Result, Decoder, Encoder, Oid, Tag};
use certchain_cryptosim::{sha256, PublicKey, Sha256, Signature};
use std::fmt;
use std::sync::Arc;

/// Signature/key algorithm identifier. The simulator issues everything under
/// [`AlgorithmId::SimSig`]; [`AlgorithmId::Unknown`] reproduces the paper's
/// "public key not recognized by the validation library" chains (Table 5).
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub enum AlgorithmId {
    /// The workspace's simulated signature scheme.
    SimSig,
    /// An algorithm the validator does not implement.
    Unknown(Oid),
}

impl AlgorithmId {
    /// The algorithm OID.
    pub fn oid(&self) -> Oid {
        match self {
            AlgorithmId::SimSig => known::sim_sig_with_sha256(),
            AlgorithmId::Unknown(oid) => oid.clone(),
        }
    }

    fn from_oid(oid: Oid) -> AlgorithmId {
        if oid == known::sim_sig_with_sha256() {
            AlgorithmId::SimSig
        } else {
            AlgorithmId::Unknown(oid)
        }
    }

    /// Encode as AlgorithmIdentifier (OID + NULL params).
    pub fn encode(&self, enc: &mut Encoder) {
        enc.sequence(|enc| {
            enc.oid(&self.oid());
            enc.null();
        });
    }

    /// Decode an AlgorithmIdentifier; params may be NULL or absent.
    pub fn decode(dec: &mut Decoder<'_>) -> Asn1Result<AlgorithmId> {
        dec.sequence(|inner| {
            let oid = inner.oid()?;
            if !inner.is_at_end() {
                inner.null()?;
            }
            Ok(AlgorithmId::from_oid(oid))
        })
    }
}

/// SHA-256 fingerprint of the full certificate DER — the identifier Zeek
/// records and both log streams join on.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct Fingerprint(pub [u8; 32]);

impl Fingerprint {
    /// Lowercase hex, Zeek's `x509.log` format.
    pub fn to_hex(&self) -> String {
        sha256::hex(&self.0)
    }

    /// Parse lowercase/uppercase hex.
    pub fn from_hex(s: &str) -> Option<Fingerprint> {
        if s.len() != 64 {
            return None;
        }
        let mut bytes = [0u8; 32];
        for i in 0..32 {
            bytes[i] = u8::from_str_radix(&s[i * 2..i * 2 + 2], 16).ok()?;
        }
        Some(Fingerprint(bytes))
    }
}

impl fmt::Display for Fingerprint {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.to_hex())
    }
}

/// A parsed (or freshly built) X.509 certificate.
///
/// Certificates are immutable once created; they are shared widely across
/// chains, logs and indexes, so cheap cloning matters — wrap in
/// [`std::sync::Arc`] via [`Certificate::into_arc`] when fanning out.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Certificate {
    /// X.509 version (0 = v1, 2 = v3). v1 certificates carry no extensions.
    pub version: u64,
    /// Serial number.
    pub serial: Serial,
    /// Signature algorithm (appears in both TBS and outer wrapper).
    pub algorithm: AlgorithmId,
    /// Issuer distinguished name.
    pub issuer: DistinguishedName,
    /// Validity window.
    pub validity: Validity,
    /// Subject distinguished name.
    pub subject: DistinguishedName,
    /// Subject public key (32-byte simulated key).
    pub public_key: PublicKey,
    /// Extensions in order of appearance.
    pub extensions: Vec<Extension>,
    /// The signature over the TBS bytes.
    pub signature: Signature,
    /// Cached full-certificate DER.
    der: Vec<u8>,
    /// Cached fingerprint of `der`.
    fingerprint: Fingerprint,
}

impl Certificate {
    /// Assemble a certificate from parts plus its signature, computing the
    /// canonical DER and fingerprint. Used by the builder; external code
    /// should go through [`crate::CertificateBuilder`].
    #[allow(clippy::too_many_arguments)] // mirrors the TBS field list; a params struct would just restate it
    pub(crate) fn assemble(
        version: u64,
        serial: Serial,
        algorithm: AlgorithmId,
        issuer: DistinguishedName,
        validity: Validity,
        subject: DistinguishedName,
        public_key: PublicKey,
        extensions: Vec<Extension>,
        signature: Signature,
    ) -> Certificate {
        let tbs = encode_tbs(
            version,
            &serial,
            &algorithm,
            &issuer,
            &validity,
            &subject,
            &public_key,
            &extensions,
        );
        let der = writer::encode(|enc| {
            enc.sequence(|enc| {
                enc.raw(&tbs);
                algorithm.encode(enc);
                enc.bit_string(signature.as_bytes());
            });
        });
        let fingerprint = Fingerprint(Sha256::digest(&der));
        Certificate {
            version,
            serial,
            algorithm,
            issuer,
            validity,
            subject,
            public_key,
            extensions,
            signature,
            der,
            fingerprint,
        }
    }

    /// The full certificate DER.
    pub fn der(&self) -> &[u8] {
        &self.der
    }

    /// The DER of the TBS (to-be-signed) portion.
    pub fn tbs_der(&self) -> Vec<u8> {
        encode_tbs(
            self.version,
            &self.serial,
            &self.algorithm,
            &self.issuer,
            &self.validity,
            &self.subject,
            &self.public_key,
            &self.extensions,
        )
    }

    /// SHA-256 fingerprint of the DER.
    pub fn fingerprint(&self) -> Fingerprint {
        self.fingerprint
    }

    /// Move into an `Arc` for cheap sharing.
    pub fn into_arc(self) -> Arc<Certificate> {
        Arc::new(self)
    }

    /// Whether issuer and subject DNs are byte-identical — the paper's
    /// definition of *self-signed* (§4.3 works purely on these fields).
    pub fn is_self_signed(&self) -> bool {
        self.issuer == self.subject
    }

    /// Verify this certificate's signature with `issuer_key`.
    ///
    /// Returns `false` both for a wrong key and for an
    /// [`AlgorithmId::Unknown`] algorithm — callers distinguishing the two
    /// (Table 5's "unrecognized key" row) should check
    /// [`Certificate::algorithm`] first.
    pub fn verify_signed_by(&self, issuer_key: &PublicKey) -> bool {
        if matches!(self.algorithm, AlgorithmId::Unknown(_)) {
            return false;
        }
        certchain_cryptosim::verify(issuer_key, &self.tbs_der(), &self.signature)
    }

    /// The basicConstraints extension, if present. Absence — pervasive
    /// among non-public-DB certificates per §4.3 — returns `None`.
    pub fn basic_constraints(&self) -> Option<BasicConstraints> {
        self.extensions.iter().find_map(|e| match e {
            Extension::BasicConstraints(bc) => Some(*bc),
            _ => None,
        })
    }

    /// DNS names from subjectAltName (empty when absent).
    pub fn dns_names(&self) -> Vec<&str> {
        self.extensions
            .iter()
            .find_map(|e| match e {
                Extension::SubjectAltName(names) => {
                    Some(names.iter().map(|s| s.as_str()).collect())
                }
                _ => None,
            })
            .unwrap_or_default()
    }

    /// Embedded SCTs (empty when absent).
    pub fn scts(&self) -> &[Vec<u8>] {
        self.extensions
            .iter()
            .find_map(|e| match e {
                Extension::SctList(scts) => Some(scts.as_slice()),
                _ => None,
            })
            .unwrap_or(&[])
    }

    /// Parse a certificate from DER.
    pub fn parse(der: &[u8]) -> Asn1Result<Certificate> {
        let mut dec = Decoder::new(der);
        let cert = dec.sequence(|outer| {
            let tbs_tlv = outer.expect(Tag::SEQUENCE)?;
            let mut tbs = tbs_tlv.decoder()?;

            let version = match tbs.optional(Tag::context(0))? {
                Some(v) => v.decoder()?.integer_u64()?,
                None => 0,
            };
            let serial = Serial::decode(&mut tbs)?;
            let algorithm = AlgorithmId::decode(&mut tbs)?;
            let issuer = DistinguishedName::decode(&mut tbs)?;
            let validity = Validity::decode(&mut tbs)?;
            let subject = DistinguishedName::decode(&mut tbs)?;
            let public_key = decode_spki(&mut tbs)?;
            let extensions = decode_extensions(&mut tbs)?;
            tbs.finish()?;

            let outer_algorithm = AlgorithmId::decode(outer)?;
            if outer_algorithm != algorithm {
                return Err(Asn1Error::Unencodable {
                    reason: "TBS and outer signature algorithms disagree",
                });
            }
            let sig_bytes = outer.bit_string()?;
            let signature =
                Signature::from_slice(sig_bytes).ok_or(Asn1Error::InvalidLength { offset: 0 })?;

            Ok(Certificate::assemble(
                version, serial, algorithm, issuer, validity, subject, public_key, extensions,
                signature,
            ))
        })?;
        dec.finish()?;
        Ok(cert)
    }
}

fn decode_spki(dec: &mut Decoder<'_>) -> Asn1Result<PublicKey> {
    dec.sequence(|inner| {
        let _alg = AlgorithmId::decode(inner)?;
        let key_bytes = inner.bit_string()?;
        let bytes: [u8; 32] = key_bytes
            .try_into()
            .map_err(|_| Asn1Error::InvalidLength { offset: 0 })?;
        Ok(PublicKey::from_bytes(bytes))
    })
}

#[allow(clippy::too_many_arguments)] // mirrors the TBS field list; a params struct would just restate it
fn encode_tbs(
    version: u64,
    serial: &Serial,
    algorithm: &AlgorithmId,
    issuer: &DistinguishedName,
    validity: &Validity,
    subject: &DistinguishedName,
    public_key: &PublicKey,
    extensions: &[Extension],
) -> Vec<u8> {
    writer::encode(|enc| {
        enc.sequence(|enc| {
            if version != 0 {
                enc.explicit(0, |enc| enc.integer_u64(version));
            }
            serial.encode(enc);
            algorithm.encode(enc);
            issuer.encode(enc);
            validity.encode(enc);
            subject.encode(enc);
            // SubjectPublicKeyInfo.
            enc.sequence(|enc| {
                algorithm.encode(enc);
                enc.bit_string(public_key.as_bytes());
            });
            encode_extensions(enc, extensions);
        });
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::CertificateBuilder;
    use certchain_asn1::Asn1Time;
    use certchain_cryptosim::KeyPair;

    fn t0() -> Asn1Time {
        Asn1Time::from_ymd_hms(2020, 9, 1, 0, 0, 0).unwrap()
    }

    fn sample() -> Certificate {
        let ca = KeyPair::derive(1, "ca");
        let leaf = KeyPair::derive(1, "leaf");
        CertificateBuilder::new()
            .serial(Serial::from_u64(42))
            .issuer(DistinguishedName::cn_o("Test CA", "Test Org"))
            .subject(DistinguishedName::cn("host.example.org"))
            .validity(Validity::days_from(t0(), 90))
            .public_key(leaf.public().clone())
            .extension(Extension::BasicConstraints(BasicConstraints {
                ca: false,
                path_len: None,
            }))
            .extension(Extension::SubjectAltName(vec!["host.example.org".into()]))
            .sign(&ca)
    }

    #[test]
    fn parse_round_trip() {
        let cert = sample();
        let parsed = Certificate::parse(cert.der()).unwrap();
        assert_eq!(parsed, cert);
        assert_eq!(parsed.fingerprint(), cert.fingerprint());
    }

    #[test]
    fn fingerprint_is_sha256_of_der() {
        let cert = sample();
        assert_eq!(cert.fingerprint().0, Sha256::digest(cert.der()));
        assert_eq!(cert.fingerprint().to_hex().len(), 64);
    }

    #[test]
    fn fingerprint_hex_round_trip() {
        let cert = sample();
        let hex = cert.fingerprint().to_hex();
        assert_eq!(Fingerprint::from_hex(&hex), Some(cert.fingerprint()));
        assert_eq!(Fingerprint::from_hex("zz"), None);
        assert_eq!(Fingerprint::from_hex(&hex[..62]), None);
    }

    #[test]
    fn signature_verification() {
        let ca = KeyPair::derive(1, "ca");
        let other = KeyPair::derive(1, "other");
        let cert = sample();
        assert!(cert.verify_signed_by(ca.public()));
        assert!(!cert.verify_signed_by(other.public()));
    }

    #[test]
    fn unknown_algorithm_never_verifies() {
        let ca = KeyPair::derive(1, "ca");
        let leaf = KeyPair::derive(1, "leaf");
        let cert = CertificateBuilder::new()
            .issuer(DistinguishedName::cn("CA"))
            .subject(DistinguishedName::cn("x"))
            .validity(Validity::days_from(t0(), 10))
            .public_key(leaf.public().clone())
            .algorithm(AlgorithmId::Unknown(known::unknown_algorithm()))
            .sign(&ca);
        assert!(!cert.verify_signed_by(ca.public()));
        assert!(matches!(cert.algorithm, AlgorithmId::Unknown(_)));
        // Still parses.
        let parsed = Certificate::parse(cert.der()).unwrap();
        assert!(matches!(parsed.algorithm, AlgorithmId::Unknown(_)));
    }

    #[test]
    fn self_signed_detection_uses_dns() {
        let kp = KeyPair::derive(2, "self");
        let dn = DistinguishedName::cn("self.example");
        let cert = CertificateBuilder::new()
            .issuer(dn.clone())
            .subject(dn)
            .validity(Validity::days_from(t0(), 365))
            .public_key(kp.public().clone())
            .sign(&kp);
        assert!(cert.is_self_signed());
        assert!(!sample().is_self_signed());
    }

    #[test]
    fn accessors() {
        let cert = sample();
        assert_eq!(
            cert.basic_constraints(),
            Some(BasicConstraints {
                ca: false,
                path_len: None
            })
        );
        assert_eq!(cert.dns_names(), vec!["host.example.org"]);
        assert!(cert.scts().is_empty());
    }

    #[test]
    fn v1_certificate_omits_version_and_extensions() {
        let kp = KeyPair::derive(3, "v1");
        let dn = DistinguishedName::cn("old-school");
        let cert = CertificateBuilder::new()
            .version(0)
            .issuer(dn.clone())
            .subject(dn)
            .validity(Validity::days_from(t0(), 365))
            .public_key(kp.public().clone())
            .sign(&kp);
        assert!(cert.extensions.is_empty());
        assert!(cert.basic_constraints().is_none());
        let parsed = Certificate::parse(cert.der()).unwrap();
        assert_eq!(parsed.version, 0);
        assert_eq!(parsed, cert);
    }

    #[test]
    fn parse_rejects_truncation() {
        let cert = sample();
        let der = cert.der();
        for cut in [1, der.len() / 2, der.len() - 1] {
            assert!(Certificate::parse(&der[..cut]).is_err(), "cut={cut}");
        }
    }

    #[test]
    fn parse_rejects_trailing_garbage() {
        let cert = sample();
        let mut der = cert.der().to_vec();
        der.push(0x00);
        assert!(Certificate::parse(&der).is_err());
    }

    #[test]
    fn tbs_der_matches_signed_bytes() {
        let ca = KeyPair::derive(1, "ca");
        let cert = sample();
        let expected = certchain_cryptosim::sign(&ca, &cert.tbs_der());
        assert_eq!(cert.signature, expected);
    }

    #[test]
    fn distinct_serials_distinct_fingerprints() {
        let ca = KeyPair::derive(1, "ca");
        let leaf = KeyPair::derive(1, "leaf");
        let make = |serial: u64| {
            CertificateBuilder::new()
                .serial(Serial::from_u64(serial))
                .issuer(DistinguishedName::cn("CA"))
                .subject(DistinguishedName::cn("x"))
                .validity(Validity::days_from(t0(), 1))
                .public_key(leaf.public().clone())
                .sign(&ca)
        };
        assert_ne!(make(1).fingerprint(), make(2).fingerprint());
    }
}
