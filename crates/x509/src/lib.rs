#![forbid(unsafe_code)]
#![warn(missing_docs)]

//! X.509 v3 certificate model over the workspace's DER layer.
//!
//! Implements the RFC 5280 structures the paper's analysis needs:
//! distinguished names (with RFC 4514 string syntax), validity periods,
//! the extensions relevant to chain building (basicConstraints, keyUsage,
//! subjectAltName, SKI/AKI, SCT list), certificate building + simulated
//! signing, DER parsing back into the model, SHA-256 fingerprints and PEM
//! armor.
//!
//! One deliberate deviation from a production library: certificates carry
//! their issuer and subject as *data* and nothing in this crate enforces
//! that chains are well-formed — producing malformed, mis-ordered and
//! mismatched chains is the whole point of the study, and the `workload`
//! crate exercises every such shape.

pub mod builder;
pub mod cert;
pub mod dn;
pub mod extensions;
pub mod pem;
pub mod serial;
pub mod validity;

pub use builder::CertificateBuilder;
pub use cert::{AlgorithmId, Certificate, Fingerprint};
pub use dn::{AttrType, DistinguishedName, Rdn};
pub use extensions::{BasicConstraints, Extension, KeyUsage};
pub use serial::Serial;
pub use validity::Validity;
