//! Certificate validity periods.

use certchain_asn1::{Asn1Result, Asn1Time, Decoder, Encoder};

/// The notBefore/notAfter window of a certificate.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct Validity {
    /// Start of validity (inclusive).
    pub not_before: Asn1Time,
    /// End of validity (inclusive, per RFC 5280).
    pub not_after: Asn1Time,
}

impl Validity {
    /// A window starting at `not_before` and lasting `days` whole days.
    pub fn days_from(not_before: Asn1Time, days: u64) -> Validity {
        Validity {
            not_before,
            not_after: not_before.plus_days(days),
        }
    }

    /// Whether `at` falls inside the window.
    pub fn contains(&self, at: Asn1Time) -> bool {
        self.not_before <= at && at <= self.not_after
    }

    /// Whether the certificate is expired at `at`.
    pub fn is_expired_at(&self, at: Asn1Time) -> bool {
        at > self.not_after
    }

    /// Whole days between notBefore and notAfter.
    pub fn lifetime_days(&self) -> u64 {
        (self.not_after.unix_secs() - self.not_before.unix_secs()) / 86_400
    }

    /// How many whole days past expiry `at` is (0 when not expired).
    pub fn days_expired_at(&self, at: Asn1Time) -> u64 {
        if at <= self.not_after {
            0
        } else {
            (at.unix_secs() - self.not_after.unix_secs()) / 86_400
        }
    }

    /// DER SEQUENCE { notBefore, notAfter }.
    pub fn encode(&self, enc: &mut Encoder) {
        enc.sequence(|enc| {
            enc.time(self.not_before);
            enc.time(self.not_after);
        });
    }

    /// Decode the DER form.
    pub fn decode(dec: &mut Decoder<'_>) -> Asn1Result<Validity> {
        dec.sequence(|inner| {
            Ok(Validity {
                not_before: inner.time()?,
                not_after: inner.time()?,
            })
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use certchain_asn1::writer::encode;

    fn t(y: u64, mo: u64, d: u64) -> Asn1Time {
        Asn1Time::from_ymd_hms(y, mo, d, 0, 0, 0).unwrap()
    }

    #[test]
    fn contains_is_inclusive() {
        let v = Validity {
            not_before: t(2020, 9, 1),
            not_after: t(2021, 8, 31),
        };
        assert!(v.contains(t(2020, 9, 1)));
        assert!(v.contains(t(2021, 8, 31)));
        assert!(v.contains(t(2021, 1, 15)));
        assert!(!v.contains(t(2020, 8, 31)));
        assert!(!v.contains(t(2021, 9, 1)));
    }

    #[test]
    fn lifetime_and_expiry() {
        let v = Validity::days_from(t(2020, 9, 1), 90);
        assert_eq!(v.lifetime_days(), 90);
        assert!(!v.is_expired_at(t(2020, 11, 30)));
        assert!(v.is_expired_at(t(2020, 12, 1)));
        assert_eq!(v.days_expired_at(t(2020, 11, 1)), 0);
        // 5+ years past expiry — the paper's long-expired hybrid leaves.
        assert!(v.days_expired_at(t(2026, 1, 1)) > 5 * 365);
    }

    #[test]
    fn der_round_trip() {
        let v = Validity::days_from(t(2020, 9, 1), 365);
        let der = encode(|e| v.encode(e));
        let mut dec = Decoder::new(&der);
        assert_eq!(Validity::decode(&mut dec).unwrap(), v);
    }

    #[test]
    fn der_round_trip_generalized_time() {
        // notAfter beyond 2049 forces GeneralizedTime.
        let v = Validity {
            not_before: t(2020, 9, 1),
            not_after: t(2055, 1, 1),
        };
        let der = encode(|e| v.encode(e));
        let mut dec = Decoder::new(&der);
        assert_eq!(Validity::decode(&mut dec).unwrap(), v);
    }
}
