//! X.509 v3 extensions relevant to chain analysis.
//!
//! The paper observes (§4.3) that non-public-DB certificates frequently
//! *omit* basicConstraints entirely (55.31% of first-presented, 78.32% of
//! subsequently-presented certificates), so presence/absence is modelled
//! explicitly: a certificate's extension list simply may or may not contain
//! [`Extension::BasicConstraints`].

use certchain_asn1::{oid::known, Asn1Error, Asn1Result, Decoder, Encoder, Oid, Tag};

/// basicConstraints (RFC 5280 §4.2.1.9).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct BasicConstraints {
    /// Whether the subject is a CA.
    pub ca: bool,
    /// Optional maximum number of intermediate certificates below this one.
    pub path_len: Option<u64>,
}

/// keyUsage bits (RFC 5280 §4.2.1.3). Only the bits the chain analysis
/// distinguishes are modelled.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub struct KeyUsage {
    /// digitalSignature (bit 0).
    pub digital_signature: bool,
    /// keyCertSign (bit 5) — what makes an issuer an issuer.
    pub key_cert_sign: bool,
    /// cRLSign (bit 6).
    pub crl_sign: bool,
}

impl KeyUsage {
    /// Usage bits typical of a CA certificate.
    pub fn ca() -> KeyUsage {
        KeyUsage {
            digital_signature: false,
            key_cert_sign: true,
            crl_sign: true,
        }
    }

    /// Usage bits typical of a TLS server (leaf) certificate.
    pub fn leaf() -> KeyUsage {
        KeyUsage {
            digital_signature: true,
            key_cert_sign: false,
            crl_sign: false,
        }
    }

    fn to_bits(self) -> u8 {
        let mut b = 0u8;
        if self.digital_signature {
            b |= 0b1000_0000;
        }
        if self.key_cert_sign {
            b |= 0b0000_0100;
        }
        if self.crl_sign {
            b |= 0b0000_0010;
        }
        b
    }

    fn from_bits(b: u8) -> KeyUsage {
        KeyUsage {
            digital_signature: b & 0b1000_0000 != 0,
            key_cert_sign: b & 0b0000_0100 != 0,
            crl_sign: b & 0b0000_0010 != 0,
        }
    }
}

/// A certificate extension.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub enum Extension {
    /// basicConstraints; criticality follows CA practice (critical on CAs).
    BasicConstraints(BasicConstraints),
    /// keyUsage.
    KeyUsage(KeyUsage),
    /// subjectAltName restricted to dNSName entries (the only kind the
    /// study touches).
    SubjectAltName(Vec<String>),
    /// subjectKeyIdentifier: 20-byte key id.
    SubjectKeyId([u8; 20]),
    /// authorityKeyIdentifier (keyIdentifier form only).
    AuthorityKeyId([u8; 20]),
    /// RFC 6962 SCT list; each entry is an opaque serialized SCT.
    SctList(Vec<Vec<u8>>),
    /// Anything else, preserved as raw DER content.
    Unknown {
        /// The extension's OID.
        oid: Oid,
        /// Criticality flag as logged.
        critical: bool,
        /// Raw extnValue DER content.
        der: Vec<u8>,
    },
}

impl Extension {
    /// The extension's OID.
    pub fn oid(&self) -> Oid {
        match self {
            Extension::BasicConstraints(_) => known::basic_constraints(),
            Extension::KeyUsage(_) => known::key_usage(),
            Extension::SubjectAltName(_) => known::subject_alt_name(),
            Extension::SubjectKeyId(_) => known::subject_key_identifier(),
            Extension::AuthorityKeyId(_) => known::authority_key_identifier(),
            Extension::SctList(_) => known::sct_list(),
            Extension::Unknown { oid, .. } => oid.clone(),
        }
    }

    fn critical(&self) -> bool {
        match self {
            Extension::BasicConstraints(_) | Extension::KeyUsage(_) => true,
            Extension::Unknown { critical, .. } => *critical,
            _ => false,
        }
    }

    /// Encode the extension's extnValue content (the DER inside the OCTET
    /// STRING wrapper).
    fn encode_value(&self) -> Vec<u8> {
        certchain_asn1::writer::encode(|enc| match self {
            Extension::BasicConstraints(bc) => enc.sequence(|enc| {
                // DER DEFAULT FALSE: only encode when true.
                if bc.ca {
                    enc.boolean(true);
                }
                if let Some(n) = bc.path_len {
                    enc.integer_u64(n);
                }
            }),
            Extension::KeyUsage(ku) => {
                // BIT STRING with up to 8 named bits; DER wants trailing
                // zero bits trimmed, but one full octet keeps this simple
                // and is accepted by every parser (unused-bits = 0 form is
                // what our asn1 layer supports).
                enc.bit_string(&[ku.to_bits()]);
            }
            Extension::SubjectAltName(names) => enc.sequence(|enc| {
                for name in names {
                    // dNSName is [2] IMPLICIT IA5String.
                    enc.primitive(Tag::context_primitive(2), name.as_bytes());
                }
            }),
            Extension::SubjectKeyId(id) => enc.octet_string(id),
            Extension::AuthorityKeyId(id) => enc.sequence(|enc| {
                // keyIdentifier [0] IMPLICIT OCTET STRING.
                enc.primitive(Tag::context_primitive(0), id);
            }),
            Extension::SctList(scts) => enc.sequence(|enc| {
                for sct in scts {
                    enc.octet_string(sct);
                }
            }),
            Extension::Unknown { der, .. } => enc.raw(der),
        })
    }

    /// Encode the full Extension SEQUENCE.
    pub fn encode(&self, enc: &mut Encoder) {
        enc.sequence(|enc| {
            enc.oid(&self.oid());
            if self.critical() {
                enc.boolean(true);
            }
            enc.octet_string(&self.encode_value());
        });
    }

    /// Decode one Extension SEQUENCE.
    pub fn decode(dec: &mut Decoder<'_>) -> Asn1Result<Extension> {
        dec.sequence(|inner| {
            let oid = inner.oid()?;
            let critical = if inner.peek_tag().ok() == Some(Tag::BOOLEAN) {
                inner.boolean()?
            } else {
                false
            };
            let value = inner.octet_string()?;
            Extension::decode_value(oid, critical, value)
        })
    }

    fn decode_value(oid: Oid, critical: bool, value: &[u8]) -> Asn1Result<Extension> {
        let mut dec = Decoder::new(value);
        if oid == known::basic_constraints() {
            let bc = dec.sequence(|inner| {
                let ca = if inner.peek_tag().ok() == Some(Tag::BOOLEAN) {
                    inner.boolean()?
                } else {
                    false
                };
                let path_len = if !inner.is_at_end() {
                    Some(inner.integer_u64()?)
                } else {
                    None
                };
                Ok(BasicConstraints { ca, path_len })
            })?;
            dec.finish()?;
            Ok(Extension::BasicConstraints(bc))
        } else if oid == known::key_usage() {
            let bits = dec.bit_string()?;
            dec.finish()?;
            Ok(Extension::KeyUsage(KeyUsage::from_bits(
                bits.first().copied().unwrap_or(0),
            )))
        } else if oid == known::subject_alt_name() {
            let names = decode_san(&mut dec)?;
            dec.finish()?;
            Ok(Extension::SubjectAltName(names))
        } else if oid == known::subject_key_identifier() {
            let id = dec.octet_string()?;
            dec.finish()?;
            Ok(Extension::SubjectKeyId(to_key_id(id, 0)?))
        } else if oid == known::authority_key_identifier() {
            let tlv = dec.expect(Tag::SEQUENCE)?;
            let mut inner = tlv.decoder()?;
            let ki = inner.any()?;
            if !ki.tag.is_context(0) {
                return Err(Asn1Error::UnexpectedTag {
                    offset: ki.offset,
                    expected: Tag::context_primitive(0).byte(),
                    found: ki.tag.byte(),
                });
            }
            dec.finish()?;
            Ok(Extension::AuthorityKeyId(to_key_id(ki.content, ki.offset)?))
        } else if oid == known::sct_list() {
            let tlv = dec.expect(Tag::SEQUENCE)?;
            let mut inner = tlv.decoder()?;
            let mut scts = Vec::new();
            while !inner.is_at_end() {
                scts.push(inner.octet_string()?.to_vec());
            }
            dec.finish()?;
            Ok(Extension::SctList(scts))
        } else {
            Ok(Extension::Unknown {
                oid,
                critical,
                der: value.to_vec(),
            })
        }
    }
}

fn to_key_id(bytes: &[u8], offset: usize) -> Asn1Result<[u8; 20]> {
    bytes
        .try_into()
        .map_err(|_| Asn1Error::InvalidLength { offset })
}

fn decode_san(dec: &mut Decoder<'_>) -> Asn1Result<Vec<String>> {
    let tlv = dec.expect(Tag::SEQUENCE)?;
    let mut inner = tlv.decoder()?;
    let mut names = Vec::new();
    while !inner.is_at_end() {
        let entry = inner.any()?;
        if entry.tag.is_context(2) {
            let s = std::str::from_utf8(entry.content).map_err(|_| Asn1Error::InvalidString {
                offset: entry.content_offset,
                kind: "IA5String",
            })?;
            names.push(s.to_string());
        }
        // Other GeneralName kinds are skipped (not used by the model).
    }
    Ok(names)
}

/// Encode an extension list as the `[3] EXPLICIT SEQUENCE OF Extension`
/// TBS field. No-op when the list is empty (v1-style certificates, common
/// among the non-public-DB issuers the paper studies).
pub fn encode_extensions(enc: &mut Encoder, exts: &[Extension]) {
    if exts.is_empty() {
        return;
    }
    enc.explicit(3, |enc| {
        enc.sequence(|enc| {
            for ext in exts {
                ext.encode(enc);
            }
        });
    });
}

/// Decode the optional extensions field.
pub fn decode_extensions(dec: &mut Decoder<'_>) -> Asn1Result<Vec<Extension>> {
    let Some(wrapper) = dec.optional(Tag::context(3))? else {
        return Ok(Vec::new());
    };
    let mut outer = wrapper.decoder()?;
    let seq = outer.expect(Tag::SEQUENCE)?;
    outer.finish()?;
    let mut inner = seq.decoder()?;
    let mut exts = Vec::new();
    while !inner.is_at_end() {
        exts.push(Extension::decode(&mut inner)?);
    }
    Ok(exts)
}

#[cfg(test)]
mod tests {
    use super::*;
    use certchain_asn1::writer::encode;

    fn round_trip(ext: Extension) -> Extension {
        let der = encode(|e| ext.encode(e));
        let mut dec = Decoder::new(&der);
        let out = Extension::decode(&mut dec).unwrap();
        dec.finish().unwrap();
        out
    }

    #[test]
    fn basic_constraints_round_trip() {
        for bc in [
            BasicConstraints {
                ca: true,
                path_len: None,
            },
            BasicConstraints {
                ca: true,
                path_len: Some(0),
            },
            BasicConstraints {
                ca: true,
                path_len: Some(3),
            },
            BasicConstraints {
                ca: false,
                path_len: None,
            },
        ] {
            assert_eq!(
                round_trip(Extension::BasicConstraints(bc)),
                Extension::BasicConstraints(bc)
            );
        }
    }

    #[test]
    fn key_usage_round_trip() {
        for ku in [KeyUsage::ca(), KeyUsage::leaf(), KeyUsage::default()] {
            assert_eq!(round_trip(Extension::KeyUsage(ku)), Extension::KeyUsage(ku));
        }
    }

    #[test]
    fn san_round_trip() {
        let ext = Extension::SubjectAltName(vec![
            "example.org".into(),
            "*.example.org".into(),
            "app.scalyr.com".into(),
        ]);
        assert_eq!(round_trip(ext.clone()), ext);
    }

    #[test]
    fn key_ids_round_trip() {
        let id = [7u8; 20];
        assert_eq!(
            round_trip(Extension::SubjectKeyId(id)),
            Extension::SubjectKeyId(id)
        );
        assert_eq!(
            round_trip(Extension::AuthorityKeyId(id)),
            Extension::AuthorityKeyId(id)
        );
    }

    #[test]
    fn sct_list_round_trip() {
        let ext = Extension::SctList(vec![vec![1, 2, 3], vec![4, 5]]);
        assert_eq!(round_trip(ext.clone()), ext);
    }

    #[test]
    fn unknown_extension_preserved() {
        let oid: Oid = "1.2.3.4".parse().unwrap();
        let der = encode(|e| e.utf8_string("opaque"));
        let ext = Extension::Unknown {
            oid,
            critical: true,
            der,
        };
        assert_eq!(round_trip(ext.clone()), ext);
    }

    #[test]
    fn extension_list_round_trip() {
        let exts = vec![
            Extension::BasicConstraints(BasicConstraints {
                ca: true,
                path_len: Some(1),
            }),
            Extension::KeyUsage(KeyUsage::ca()),
            Extension::SubjectKeyId([1u8; 20]),
        ];
        let der = encode(|e| encode_extensions(e, &exts));
        let mut dec = Decoder::new(&der);
        assert_eq!(decode_extensions(&mut dec).unwrap(), exts);
        dec.finish().unwrap();
    }

    #[test]
    fn empty_extension_list_encodes_nothing() {
        let der = encode(|e| encode_extensions(e, &[]));
        assert!(der.is_empty());
        let mut dec = Decoder::new(&der);
        assert!(decode_extensions(&mut dec).unwrap().is_empty());
    }

    #[test]
    fn criticality_flags() {
        let bc = Extension::BasicConstraints(BasicConstraints {
            ca: true,
            path_len: None,
        });
        let der = encode(|e| bc.encode(e));
        // SEQUENCE { OID, BOOLEAN TRUE, OCTET STRING } — criticality present.
        assert!(der.windows(3).any(|w| w == [0x01, 0x01, 0xff]));

        let san = Extension::SubjectAltName(vec!["x.org".into()]);
        let der = encode(|e| san.encode(e));
        assert!(!der.windows(3).any(|w| w == [0x01, 0x01, 0xff]));
    }
}
