//! Property tests: certificates built from arbitrary well-formed inputs
//! must round-trip through DER, and chain-relevant invariants must hold.

use certchain_asn1::Asn1Time;
use certchain_cryptosim::KeyPair;
use certchain_x509::{
    dn::AttrType, pem, BasicConstraints, Certificate, CertificateBuilder, DistinguishedName,
    Extension, KeyUsage, Serial, Validity,
};
use proptest::prelude::*;

fn arb_dn() -> impl Strategy<Value = DistinguishedName> {
    let attr = prop_oneof![
        Just(AttrType::CommonName),
        Just(AttrType::Country),
        Just(AttrType::Locality),
        Just(AttrType::StateOrProvince),
        Just(AttrType::Organization),
        Just(AttrType::OrganizationalUnit),
        Just(AttrType::EmailAddress),
    ];
    proptest::collection::vec((attr, "[a-zA-Z0-9 .,@=+<>#;\\\\-]{1,24}"), 0..5).prop_map(|pairs| {
        let mut dn = DistinguishedName::empty();
        for (attr, value) in pairs {
            dn = dn.with(attr, &value);
        }
        dn
    })
}

fn arb_extensions() -> impl Strategy<Value = Vec<Extension>> {
    let ext = prop_oneof![
        (any::<bool>(), proptest::option::of(0u64..8)).prop_map(|(ca, path_len)| {
            Extension::BasicConstraints(BasicConstraints { ca, path_len })
        }),
        (any::<bool>(), any::<bool>(), any::<bool>()).prop_map(|(d, k, c)| {
            Extension::KeyUsage(KeyUsage {
                digital_signature: d,
                key_cert_sign: k,
                crl_sign: c,
            })
        }),
        proptest::collection::vec("[a-z0-9.-]{1,32}", 0..4).prop_map(Extension::SubjectAltName),
        any::<[u8; 20]>().prop_map(Extension::SubjectKeyId),
        any::<[u8; 20]>().prop_map(Extension::AuthorityKeyId),
        proptest::collection::vec(proptest::collection::vec(any::<u8>(), 0..64), 0..3)
            .prop_map(Extension::SctList),
    ];
    proptest::collection::vec(ext, 0..5)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn certificate_round_trips_through_der(
        issuer in arb_dn(),
        subject in arb_dn(),
        serial in any::<u64>(),
        start in 0u64..=2_000_000_000,
        days in 1u64..=4000,
        exts in arb_extensions(),
        key_seed in any::<u64>(),
    ) {
        let ca = KeyPair::derive(key_seed, "prop:ca");
        let subject_key = KeyPair::derive(key_seed, "prop:subject");
        let mut builder = CertificateBuilder::new()
            .serial(Serial::from_u64(serial))
            .issuer(issuer)
            .subject(subject)
            .validity(Validity::days_from(Asn1Time::from_unix(start), days))
            .public_key(subject_key.public().clone());
        for ext in exts {
            builder = builder.extension(ext);
        }
        let cert = builder.sign(&ca);
        let parsed = Certificate::parse(cert.der()).unwrap();
        prop_assert_eq!(&parsed, &cert);
        prop_assert_eq!(parsed.fingerprint(), cert.fingerprint());
        prop_assert!(parsed.verify_signed_by(ca.public()));
    }

    #[test]
    fn self_signed_iff_same_dn(
        a in arb_dn(),
        b in arb_dn(),
        key_seed in any::<u64>(),
    ) {
        let kp = KeyPair::derive(key_seed, "prop:self");
        let cert = CertificateBuilder::new()
            .issuer(a.clone())
            .subject(b.clone())
            .validity(Validity::days_from(Asn1Time::from_unix(0), 1))
            .sign(&kp);
        prop_assert_eq!(cert.is_self_signed(), a == b);
    }

    #[test]
    fn pem_armor_round_trips(
        issuer in arb_dn(),
        key_seed in any::<u64>(),
    ) {
        let kp = KeyPair::derive(key_seed, "prop:pem");
        let cert = CertificateBuilder::new()
            .issuer(issuer.clone())
            .subject(issuer)
            .validity(Validity::days_from(Asn1Time::from_unix(100), 10))
            .sign(&kp);
        let pem_text = pem::encode("CERTIFICATE", cert.der());
        let blocks = pem::decode_all("CERTIFICATE", &pem_text).unwrap();
        prop_assert_eq!(blocks.len(), 1);
        let reparsed = Certificate::parse(&blocks[0]).unwrap();
        prop_assert_eq!(reparsed, cert);
    }

    #[test]
    fn dn_rfc4514_round_trips(dn in arb_dn()) {
        let rendered = dn.to_rfc4514();
        let parsed = DistinguishedName::parse_rfc4514(&rendered).unwrap();
        prop_assert_eq!(parsed, dn);
    }

    #[test]
    fn tampering_der_never_panics(
        key_seed in any::<u64>(),
        flip_at in any::<proptest::sample::Index>(),
        new_byte in any::<u8>(),
    ) {
        let kp = KeyPair::derive(key_seed, "prop:tamper");
        let dn = DistinguishedName::cn("tamper.example");
        let cert = CertificateBuilder::new()
            .issuer(dn.clone())
            .subject(dn)
            .validity(Validity::days_from(Asn1Time::from_unix(0), 1))
            .sign(&kp);
        let mut der = cert.der().to_vec();
        let idx = flip_at.index(der.len());
        der[idx] = new_byte;
        // Must either parse (and then fail signature verification unless the
        // flip was inside the signature bits and happened to be a no-op) or
        // return an error — never panic.
        if let Ok(parsed) = Certificate::parse(&der) {
            let _ = parsed.verify_signed_by(kp.public());
        }
    }
}
