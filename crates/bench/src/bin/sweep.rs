//! Runs the §6.3 IP-space-sweep experiment. `CERTCHAIN_PROFILE=quick` for speed.

fn main() {
    let lab = certchain_bench::Lab::from_env();
    let out = certchain_bench::sweep(&lab);
    println!("{}", out.to_text());
    std::process::exit(i32::from(!out.comparison.all_ok()));
}
