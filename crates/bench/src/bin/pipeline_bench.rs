//! Pipeline scaling measurement: times the full analysis at several thread
//! counts and writes `BENCH_pipeline.json` (wall time, chains/sec,
//! conns/sec per thread count).
//!
//! `CERTCHAIN_PROFILE=quick` selects the test-sized trace; the default is
//! the paper-calibrated one.

use certchain_chainlab::json::JsonValue;
use certchain_chainlab::{Analysis, CrossSignRegistry, Pipeline, PipelineOptions};
use certchain_workload::CampusTrace;
use std::time::Instant;

fn main() {
    let profile_name = std::env::var("CERTCHAIN_PROFILE").unwrap_or_else(|_| "default".into());
    let trace = CampusTrace::generate(certchain_bench::profile_from_env());
    let weights: Vec<f64> = trace.conn_meta.iter().map(|m| m.weight).collect();

    let analyze = |threads: usize| -> (Analysis, f64) {
        let pipeline = Pipeline::with_options(
            &trace.eco.trust,
            &trace.ct_index,
            CrossSignRegistry::from_disclosures(&trace.cross_sign_disclosures),
            PipelineOptions {
                threads,
                ..PipelineOptions::default()
            },
        );
        // Warm up once so page cache / allocator state is comparable, then
        // report the best of three timed runs.
        pipeline.analyze(&trace.ssl_records, &trace.x509_records, Some(&weights));
        let mut best = f64::INFINITY;
        let mut analysis = None;
        for _ in 0..3 {
            let start = Instant::now();
            let a = pipeline.analyze(&trace.ssl_records, &trace.x509_records, Some(&weights));
            best = best.min(start.elapsed().as_secs_f64());
            analysis = Some(a);
        }
        (analysis.expect("ran at least once"), best)
    };

    let conns = trace.ssl_records.len() as f64;
    let mut results = Vec::new();
    let mut baseline_secs = None;
    for threads in [1usize, 2, 4, 8] {
        let (analysis, secs) = analyze(threads);
        let chains = analysis.chains.len() as f64;
        let baseline = *baseline_secs.get_or_insert(secs);
        results.push(JsonValue::Obj(vec![
            ("threads".into(), JsonValue::Num(threads as f64)),
            ("wall_ms".into(), JsonValue::Num(secs * 1e3)),
            ("chains_per_sec".into(), JsonValue::Num(chains / secs)),
            ("conns_per_sec".into(), JsonValue::Num(conns / secs)),
            ("speedup_vs_1".into(), JsonValue::Num(baseline / secs)),
        ]));
        eprintln!(
            "threads={threads:<2} wall={:.1}ms  {:.0} chains/s  {:.0} conns/s",
            secs * 1e3,
            chains / secs,
            conns / secs
        );
    }

    let doc = JsonValue::Obj(vec![
        ("profile".into(), JsonValue::Str(profile_name)),
        ("connections".into(), JsonValue::Num(conns)),
        (
            "distinct_chains".into(),
            JsonValue::Num(trace.truth.by_chain.len() as f64),
        ),
        ("results".into(), JsonValue::Arr(results)),
    ]);
    std::fs::write("BENCH_pipeline.json", doc.to_pretty()).expect("write BENCH_pipeline.json");
    eprintln!("wrote BENCH_pipeline.json");
}
