//! Pipeline scaling + memory measurement: times the full analysis at
//! several thread counts, measures batch-vs-streaming peak heap, and
//! writes `BENCH_pipeline.json`.
//!
//! `CERTCHAIN_PROFILE=quick` selects the test-sized trace, `large` the
//! parallel-scaling size; the default is the paper-calibrated one.
//!
//! Peak memory comes from a counting global allocator (exact heap bytes,
//! not RSS): the batch figure covers whole-log parsing plus in-memory
//! analysis, the streaming figure covers `analyze_stream` over the same
//! serialized logs — the path `certchain analyze` runs.

use certchain_chainlab::json::JsonValue;
use certchain_chainlab::{
    chain_category, Analysis, CertCat, CertRecord, CrossSignRegistry, Pipeline, PipelineOptions,
    RowFilter,
};
use certchain_colstore::codec::Encoding;
use certchain_colstore::{
    Category, CategorySet, DatasetReader, DatasetWriter, MapMode, WriterOptions, VERSION_V1,
};
use certchain_netsim::zeek::reader::{read_ssl_log, read_x509_log};
use certchain_netsim::zeek::tsv::{write_ssl_log, write_x509_log};
use certchain_netsim::{SimClock, SslLogStream, X509LogStream};
use certchain_obs::{MetricsSnapshot, Registry};
use certchain_workload::CampusTrace;
use std::alloc::{GlobalAlloc, Layout, System};
use std::sync::atomic::{AtomicUsize, Ordering::Relaxed};
use std::sync::Arc;
use std::time::Instant;

/// Exact-count heap instrumentation: live bytes and a high-water mark.
struct CountingAlloc;

static LIVE: AtomicUsize = AtomicUsize::new(0);
static PEAK: AtomicUsize = AtomicUsize::new(0);

// SAFETY: both methods delegate to the `System` allocator unchanged and
// only maintain atomic side counters, so `GlobalAlloc`'s contract is
// inherited from `System` wholesale.
unsafe impl GlobalAlloc for CountingAlloc {
    // SAFETY: contract inherited from the trait; `layout` is forwarded
    // to `System.alloc` untouched.
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        // SAFETY: same non-zero-size `layout` the caller provided under
        // `GlobalAlloc`'s contract.
        let p = unsafe { System.alloc(layout) };
        if !p.is_null() {
            let live = LIVE.fetch_add(layout.size(), Relaxed) + layout.size();
            PEAK.fetch_max(live, Relaxed);
        }
        p
    }

    // SAFETY: contract inherited from the trait; the `ptr`/`layout` pair
    // is forwarded to `System.dealloc` untouched.
    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        // SAFETY: the caller guarantees `ptr` came from `alloc` with this
        // `layout`, and `alloc` always returns `System` pointers.
        unsafe { System.dealloc(ptr, layout) };
        LIVE.fetch_sub(layout.size(), Relaxed);
    }
}

#[global_allocator]
static ALLOC: CountingAlloc = CountingAlloc;

/// Run `f` and return its result plus the peak heap growth (bytes above
/// the live heap at entry) observed while it ran.
fn peak_during<T>(f: impl FnOnce() -> T) -> (T, usize) {
    let before = LIVE.load(Relaxed);
    PEAK.store(before, Relaxed);
    let out = f();
    (out, PEAK.load(Relaxed).saturating_sub(before))
}

/// Thread counts to sweep: `--threads 1,2,4` overrides the default, which
/// is the doubling series 1,2,4,8 capped at this host's core count (so a
/// 4-core CI runner doesn't spend half the sweep timing oversubscription).
/// 1 is always included — it is the speedup baseline.
fn thread_sweep(args: &[String], cores: usize) -> Vec<usize> {
    for (i, arg) in args.iter().enumerate() {
        if arg == "--threads" {
            let list = args
                .get(i + 1)
                .unwrap_or_else(|| panic!("--threads requires a comma-separated list"));
            let mut counts: Vec<usize> = list
                .split(',')
                .map(|p| {
                    p.trim()
                        .parse()
                        .unwrap_or_else(|_| panic!("bad thread count {p:?} in --threads"))
                })
                .filter(|&n| n > 0)
                .collect();
            counts.sort_unstable();
            counts.dedup();
            if counts.is_empty() {
                panic!("--threads needs at least one positive count");
            }
            if counts[0] != 1 {
                counts.insert(0, 1);
            }
            return counts;
        }
    }
    [1usize, 2, 4, 8]
        .into_iter()
        .filter(|&n| n == 1 || n <= cores)
        .collect()
}

/// Total bytes of the regular files directly inside `dir` (the columnar
/// store is flat, so no recursion is needed).
fn dir_size(dir: &std::path::Path) -> u64 {
    let mut total = 0;
    if let Ok(entries) = std::fs::read_dir(dir) {
        for entry in entries.flatten() {
            if let Ok(meta) = entry.metadata() {
                if meta.is_file() {
                    total += meta.len();
                }
            }
        }
    }
    total
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let profile_name = std::env::var("CERTCHAIN_PROFILE").unwrap_or_else(|_| "default".into());
    let cores = std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1);
    let trace = CampusTrace::generate(certchain_bench::profile_from_env());
    let weights: Vec<f64> = trace.conn_meta.iter().map(|m| m.weight).collect();

    let pipeline_with = |threads: usize| {
        Pipeline::with_options(
            &trace.eco.trust,
            &trace.ct_index,
            CrossSignRegistry::from_disclosures(&trace.cross_sign_disclosures),
            PipelineOptions {
                threads,
                ..PipelineOptions::default()
            },
        )
    };

    let analyze = |threads: usize| -> (Analysis, f64, MetricsSnapshot) {
        // Warm up once so page cache / allocator state is comparable, then
        // report the best of three timed runs. Each timed run gets a fresh
        // metrics registry so its stage timings describe exactly one run.
        pipeline_with(threads).analyze(&trace.ssl_records, &trace.x509_records, Some(&weights));
        let mut best = f64::INFINITY;
        let mut analysis = None;
        let mut snapshot = None;
        for _ in 0..3 {
            let registry = Arc::new(Registry::new());
            let pipeline = pipeline_with(threads).with_metrics(Arc::clone(&registry));
            let start = Instant::now();
            let a = pipeline.analyze(&trace.ssl_records, &trace.x509_records, Some(&weights));
            let secs = start.elapsed().as_secs_f64();
            if secs < best {
                best = secs;
                snapshot = Some(registry.snapshot());
            }
            analysis = Some(a);
        }
        (
            analysis.expect("ran at least once"),
            best,
            snapshot.expect("ran at least once"),
        )
    };

    let conns = trace.ssl_records.len() as f64;
    let mut results = Vec::new();
    let mut snapshots = Vec::new();
    let mut baseline_secs = None;
    for threads in thread_sweep(&args, cores) {
        let (analysis, secs, snapshot) = analyze(threads);
        let chains = analysis.chains.len() as f64;
        let baseline = *baseline_secs.get_or_insert(secs);
        let stage_ms = JsonValue::Obj(
            snapshot
                .stages
                .iter()
                .map(|(name, s)| (name.clone(), JsonValue::Num(s.wall_ms)))
                .collect(),
        );
        let breakdown: Vec<String> = snapshot
            .stages
            .iter()
            .map(|(name, s)| format!("{name} {:.1}ms", s.wall_ms))
            .collect();
        results.push(JsonValue::Obj(vec![
            ("threads".into(), JsonValue::Num(threads as f64)),
            ("wall_ms".into(), JsonValue::Num(secs * 1e3)),
            ("chains_per_sec".into(), JsonValue::Num(chains / secs)),
            ("conns_per_sec".into(), JsonValue::Num(conns / secs)),
            ("speedup_vs_1".into(), JsonValue::Num(baseline / secs)),
            ("stage_ms".into(), stage_ms),
        ]));
        snapshots.push((format!("threads-{threads}"), snapshot.to_json()));
        eprintln!(
            "threads={threads:<2} wall={:.1}ms  {:.0} chains/s  {:.0} conns/s  [{}]",
            secs * 1e3,
            chains / secs,
            conns / secs,
            breakdown.join(", ")
        );
    }

    // Batch vs streaming peak heap, over identical serialized logs and an
    // identical (sequential, unweighted) analysis configuration.
    let open = SimClock::campus_window_start().now();
    let mut ssl_buf = Vec::new();
    write_ssl_log(&mut ssl_buf, &trace.ssl_records, open).expect("serialize ssl.log");
    let mut x509_buf = Vec::new();
    write_x509_log(&mut x509_buf, &trace.x509_records, open).expect("serialize x509.log");

    let (_, batch_peak) = peak_during(|| {
        let ssl = read_ssl_log(std::str::from_utf8(&ssl_buf).unwrap()).expect("parse ssl.log");
        let x509 = read_x509_log(std::str::from_utf8(&x509_buf).unwrap()).expect("parse x509.log");
        pipeline_with(1).analyze(&ssl, &x509, None)
    });
    let (_, stream_peak) = peak_during(|| {
        pipeline_with(1)
            .analyze_stream(
                SslLogStream::new(&ssl_buf[..]),
                X509LogStream::new(&x509_buf[..]),
            )
            .expect("streams parse cleanly")
    });
    eprintln!(
        "peak heap: batch {:.1} MiB, streaming {:.1} MiB ({:.2}x)",
        batch_peak as f64 / (1 << 20) as f64,
        stream_peak as f64 / (1 << 20) as f64,
        batch_peak as f64 / stream_peak.max(1) as f64,
    );

    // TSV-vs-columnar single-thread ingest: the same records, once parsed
    // from the serialized Zeek logs and once mapped from the columnar
    // store (in both the legacy raw-column v1 layout and the segmented v2
    // one), through an identical sequential analysis. This is the number
    // the columnar store exists for — analyze time with the parse stage
    // deleted — plus the v2-vs-v1 win from the vectorized segment fold.
    // Fingerprint → structural class table, used both to digest the v2
    // store at write time and to pick the rarest category below. First
    // parseable occurrence of a fingerprint wins — the same intern
    // semantics as the analysis enrich pass.
    let cat_codes: std::collections::HashMap<certchain_x509::Fingerprint, CertCat> = {
        let mut codes = std::collections::HashMap::new();
        for rec in &trace.x509_records {
            if codes.contains_key(&rec.fingerprint) {
                continue;
            }
            if let Some(cert) = CertRecord::from_record(rec) {
                codes.insert(rec.fingerprint, CertCat::of(&cert, &trace.eco.trust));
            }
        }
        codes
    };
    let category_of = |rec: &certchain_netsim::SslRecord| {
        chain_category(
            rec.cert_chain_fps
                .iter()
                .map(|fp| cat_codes.get(fp).copied().unwrap_or(CertCat::Unresolved)),
        )
    };
    let build_store = |path: &std::path::Path, version: u64| {
        let _ = std::fs::remove_dir_all(path);
        let mut writer = DatasetWriter::create_with(
            path,
            WriterOptions {
                version,
                ..WriterOptions::default()
            },
        )
        .expect("create bench colstore");
        for rec in X509LogStream::new(&x509_buf[..]) {
            writer
                .append_x509(&rec.expect("x509 rows round-trip"))
                .expect("append x509 row");
        }
        if version == certchain_colstore::VERSION {
            let codes = cat_codes.clone();
            writer = writer.with_category_provider(Box::new(move |rec| {
                chain_category(
                    rec.cert_chain_fps
                        .iter()
                        .map(|fp| codes.get(fp).copied().unwrap_or(CertCat::Unresolved)),
                )
            }));
        }
        for rec in SslLogStream::new(&ssl_buf[..]) {
            writer
                .append_ssl(&rec.expect("ssl rows round-trip"))
                .expect("append ssl row");
        }
        writer.finish().expect("finish bench colstore");
    };
    let tmp = std::env::temp_dir();
    let store_v1 = tmp.join(format!(
        "certchain-pipeline-bench-v1-{}",
        std::process::id()
    ));
    let store_v2 = tmp.join(format!(
        "certchain-pipeline-bench-v2-{}",
        std::process::id()
    ));
    build_store(&store_v1, VERSION_V1);
    build_store(&store_v2, certchain_colstore::VERSION);
    let v1_bytes = dir_size(&store_v1);
    let v2_bytes = dir_size(&store_v2);
    let compression_ratio = v1_bytes as f64 / v2_bytes.max(1) as f64;
    let reader_v1 = DatasetReader::open(&store_v1, MapMode::Auto).expect("open v1 colstore");
    let reader_v2 = DatasetReader::open(&store_v2, MapMode::Auto).expect("open v2 colstore");

    let tsv_run = || {
        pipeline_with(1)
            .analyze_stream(
                SslLogStream::new(&ssl_buf[..]),
                X509LogStream::new(&x509_buf[..]),
            )
            .expect("streams parse cleanly")
    };
    let col_v1_run = || {
        pipeline_with(1)
            .analyze_colstore(&reader_v1)
            .expect("v1 columnar store reads cleanly")
    };
    let col_v2_run = || {
        pipeline_with(1)
            .analyze_colstore(&reader_v2)
            .expect("v2 columnar store reads cleanly")
    };
    // Peak heap from a dedicated run each, then best-of-three timing.
    let (_, tsv_ingest_peak) = peak_during(tsv_run);
    let (_, col_ingest_peak) = peak_during(col_v2_run);
    let best_of = |f: &dyn Fn() -> Analysis| {
        let mut best = f64::INFINITY;
        for _ in 0..3 {
            let start = Instant::now();
            f();
            best = best.min(start.elapsed().as_secs_f64());
        }
        best
    };
    let tsv_secs = best_of(&tsv_run);
    let col_v1_secs = best_of(&col_v1_run);
    let col_secs = best_of(&col_v2_run);
    let ingest_speedup = tsv_secs / col_secs;
    let v2_vs_v1 = col_v1_secs / col_secs;
    eprintln!(
        "ingest (1 thread): tsv {:.1}ms, columnar v1 {:.1}ms, v2 {:.1}ms ({:.0} conns/s) \
         — {:.2}x vs tsv, {:.2}x vs v1, {:.2}x smaller on disk",
        tsv_secs * 1e3,
        col_v1_secs * 1e3,
        col_secs * 1e3,
        conns / col_secs,
        ingest_speedup,
        v2_vs_v1,
        compression_ratio,
    );

    // Zone-map effectiveness: analyze the v2 store filtered to its rarest
    // SNI (deterministic pick: lowest count, then lexicographically
    // smallest) and report what fraction of row bands the fold skipped.
    let mut sni_freq: std::collections::BTreeMap<&str, u64> = std::collections::BTreeMap::new();
    for rec in &trace.ssl_records {
        if let Some(sni) = &rec.server_name {
            *sni_freq.entry(sni.as_str()).or_default() += 1;
        }
    }
    let rare_sni = sni_freq
        .iter()
        .min_by_key(|(name, n)| (**n, **name))
        .map(|(name, _)| (*name).to_string());
    let (segments_read, segments_skipped) = {
        let registry = Arc::new(Registry::new());
        let pipeline = Pipeline::with_options(
            &trace.eco.trust,
            &trace.ct_index,
            CrossSignRegistry::from_disclosures(&trace.cross_sign_disclosures),
            PipelineOptions {
                threads: 1,
                filter: RowFilter {
                    sni: rare_sni,
                    ..RowFilter::default()
                },
                ..PipelineOptions::default()
            },
        )
        .with_metrics(Arc::clone(&registry));
        pipeline
            .analyze_colstore(&reader_v2)
            .expect("filtered v2 analysis reads cleanly");
        let snap = registry.snapshot();
        let counter = |name: &str| snap.counters.get(name).copied().unwrap_or(0);
        (
            counter("colstore.segments_read"),
            counter("colstore.segments_skipped"),
        )
    };
    let segments_skipped_pct =
        100.0 * segments_skipped as f64 / (segments_read + segments_skipped).max(1) as f64;
    eprintln!(
        "zone maps (rare-SNI filter): {segments_skipped}/{} segments skipped ({segments_skipped_pct:.1}%)",
        segments_read + segments_skipped,
    );

    // Category-digest effectiveness: analyze the v2 store filtered to its
    // rarest structural chain category (deterministic pick: lowest row
    // count among the categories present, ties to the lower category
    // index) and record, per thread count, how many segments the
    // per-segment digests let the fold skip without decoding.
    let mut cat_rows = [0u64; certchain_colstore::CATEGORY_COUNT];
    for rec in &trace.ssl_records {
        cat_rows[category_of(rec).index()] += 1;
    }
    let rare_cat = Category::all()
        .iter()
        .copied()
        .filter(|c| cat_rows[c.index()] > 0)
        .min_by_key(|c| (cat_rows[c.index()], c.index()))
        .expect("trace is non-empty, so some category occurs");
    let mut cat_set = CategorySet::empty();
    cat_set.insert(rare_cat);
    let category_run = |threads: usize| -> (f64, MetricsSnapshot) {
        // Best-of-three, keeping the snapshot of the fastest run; the
        // deterministic counters are identical across the three anyway.
        let mut best = f64::INFINITY;
        let mut snapshot = None;
        for _ in 0..3 {
            let registry = Arc::new(Registry::new());
            let pipeline = Pipeline::with_options(
                &trace.eco.trust,
                &trace.ct_index,
                CrossSignRegistry::from_disclosures(&trace.cross_sign_disclosures),
                PipelineOptions {
                    threads,
                    filter: RowFilter {
                        categories: Some(cat_set),
                        ..RowFilter::default()
                    },
                    ..PipelineOptions::default()
                },
            )
            .with_metrics(Arc::clone(&registry));
            let start = Instant::now();
            pipeline
                .analyze_colstore(&reader_v2)
                .expect("category-filtered v2 analysis reads cleanly");
            let secs = start.elapsed().as_secs_f64();
            if secs < best {
                best = secs;
                snapshot = Some(registry.snapshot());
            }
        }
        (best, snapshot.expect("ran at least once"))
    };
    let mut category_results = Vec::new();
    let mut category_skipped_pct = 0.0;
    for threads in thread_sweep(&args, cores) {
        let (secs, snap) = category_run(threads);
        let counter = |name: &str| snap.counters.get(name).copied().unwrap_or(0);
        let read = counter("colstore.segments_read");
        let skipped = counter("colstore.segments_skipped");
        let skipped_cat = counter("colstore.segments_skipped_category");
        let pct = 100.0 * skipped_cat as f64 / (read + skipped).max(1) as f64;
        category_skipped_pct = pct;
        let stage_ms = JsonValue::Obj(
            snap.stages
                .iter()
                .map(|(name, s)| (name.clone(), JsonValue::Num(s.wall_ms)))
                .collect(),
        );
        category_results.push(JsonValue::Obj(vec![
            ("threads".into(), JsonValue::Num(threads as f64)),
            ("wall_ms".into(), JsonValue::Num(secs * 1e3)),
            ("segments_read".into(), JsonValue::Num(read as f64)),
            ("segments_skipped".into(), JsonValue::Num(skipped as f64)),
            (
                "segments_skipped_category".into(),
                JsonValue::Num(skipped_cat as f64),
            ),
            ("segments_skipped_pct".into(), JsonValue::Num(pct)),
            ("stage_ms".into(), stage_ms),
        ]));
        eprintln!(
            "category digests (--filter-category {}): threads={threads:<2} wall={:.1}ms \
             {skipped_cat}/{} segments skipped by digest ({pct:.1}%)",
            rare_cat.name(),
            secs * 1e3,
            read + skipped,
        );
    }

    // Frame-of-reference packing on `ssl.orig_h`: the manifest records
    // every segment's encoding and payload size, so the compression
    // delta against plain 4-byte rows is exact, not sampled.
    let orig_h_for = {
        let segs = reader_v2
            .manifest()
            .segments
            .get("ssl.orig_h")
            .expect("v2 manifest describes ssl.orig_h");
        let plain: u64 = segs.iter().map(|s| s.rows * 4).sum();
        let encoded: u64 = segs.iter().map(|s| s.bytes).sum();
        let for_segments = segs.iter().filter(|s| s.encoding == Encoding::For).count();
        eprintln!(
            "orig_h frame-of-reference: {for_segments}/{} segments FoR-encoded, \
             {plain} -> {encoded} bytes ({:.2}x)",
            segs.len(),
            plain as f64 / encoded.max(1) as f64,
        );
        JsonValue::Obj(vec![
            ("segments".into(), JsonValue::Num(segs.len() as f64)),
            ("for_segments".into(), JsonValue::Num(for_segments as f64)),
            ("plain_bytes".into(), JsonValue::Num(plain as f64)),
            ("encoded_bytes".into(), JsonValue::Num(encoded as f64)),
            (
                "compression_ratio".into(),
                JsonValue::Num(plain as f64 / encoded.max(1) as f64),
            ),
        ])
    };
    let _ = std::fs::remove_dir_all(&store_v1);
    let _ = std::fs::remove_dir_all(&store_v2);

    let note = if cores == 1 {
        format!(
            "observed {cores} core on this host: the default sweep is capped at \
             available_parallelism, so only the threads=1 row is measured here \
             (oversubscribed multi-thread rows would only record scheduler noise; \
             pass --threads 1,2,4,8 to force them). Run CERTCHAIN_PROFILE=large \
             on a multi-core host to observe scaling."
        )
    } else {
        format!(
            "observed {cores} cores; speedup measured against the single-thread run on this host"
        )
    };

    let doc = JsonValue::Obj(vec![
        ("profile".into(), JsonValue::Str(profile_name)),
        ("cores".into(), JsonValue::Num(cores as f64)),
        ("connections".into(), JsonValue::Num(conns)),
        (
            "distinct_chains".into(),
            JsonValue::Num(trace.truth.by_chain.len() as f64),
        ),
        ("results".into(), JsonValue::Arr(results)),
        (
            "memory".into(),
            JsonValue::Obj(vec![
                ("batch_peak_bytes".into(), JsonValue::Num(batch_peak as f64)),
                (
                    "streaming_peak_bytes".into(),
                    JsonValue::Num(stream_peak as f64),
                ),
            ]),
        ),
        (
            "ingest_comparison".into(),
            JsonValue::Obj(vec![
                ("threads".into(), JsonValue::Num(1.0)),
                ("tsv_wall_ms".into(), JsonValue::Num(tsv_secs * 1e3)),
                ("tsv_conns_per_sec".into(), JsonValue::Num(conns / tsv_secs)),
                (
                    "tsv_peak_bytes".into(),
                    JsonValue::Num(tsv_ingest_peak as f64),
                ),
                (
                    "columnar_v1_wall_ms".into(),
                    JsonValue::Num(col_v1_secs * 1e3),
                ),
                ("columnar_wall_ms".into(), JsonValue::Num(col_secs * 1e3)),
                (
                    "columnar_conns_per_sec".into(),
                    JsonValue::Num(conns / col_secs),
                ),
                (
                    "columnar_peak_bytes".into(),
                    JsonValue::Num(col_ingest_peak as f64),
                ),
                ("speedup".into(), JsonValue::Num(ingest_speedup)),
                ("speedup_v2_vs_v1".into(), JsonValue::Num(v2_vs_v1)),
                (
                    "compression_ratio".into(),
                    JsonValue::Num(compression_ratio),
                ),
                (
                    "segments_skipped_pct".into(),
                    JsonValue::Num(segments_skipped_pct),
                ),
            ]),
        ),
        (
            "category_filter".into(),
            JsonValue::Obj(vec![
                (
                    "category".into(),
                    JsonValue::Str(rare_cat.name().to_string()),
                ),
                (
                    "segments_skipped_pct".into(),
                    JsonValue::Num(category_skipped_pct),
                ),
                ("results".into(), JsonValue::Arr(category_results)),
            ]),
        ),
        ("orig_h_for".into(), orig_h_for),
        ("note".into(), JsonValue::Str(note)),
    ]);
    std::fs::write("BENCH_pipeline.json", doc.to_pretty()).expect("write BENCH_pipeline.json");
    eprintln!("wrote BENCH_pipeline.json");

    // Full per-thread-count metrics snapshots: the `deterministic` section
    // must be identical across the four runs (only `timing` may differ).
    let metrics_doc = JsonValue::Obj(vec![("runs".into(), JsonValue::Obj(snapshots))]);
    std::fs::write("BENCH_pipeline_metrics.json", metrics_doc.to_pretty())
        .expect("write BENCH_pipeline_metrics.json");
    eprintln!("wrote BENCH_pipeline_metrics.json");
}
