//! Regenerates table2 of the paper. `CERTCHAIN_PROFILE=quick` for a fast run.

fn main() {
    let lab = certchain_bench::Lab::from_env();
    let out = certchain_bench::table2(&lab);
    println!("{}", out.to_text());
    std::process::exit(i32::from(!out.comparison.all_ok()));
}
