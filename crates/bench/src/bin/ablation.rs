//! Runs the design-choice ablations. `CERTCHAIN_PROFILE=quick` for speed.

fn main() {
    let lab = certchain_bench::Lab::from_env();
    let out = certchain_bench::ablation(&lab);
    println!("{}", out.to_text());
    std::process::exit(i32::from(!out.comparison.all_ok()));
}
