//! Regenerates the table5 experiment. `CERTCHAIN_PROFILE=quick` for a fast run.

fn main() {
    let mut lab = certchain_bench::Lab::from_env();
    let out = certchain_bench::table5(&mut lab);
    println!("{}", out.to_text());
    std::process::exit(i32::from(!out.comparison.all_ok()));
}
