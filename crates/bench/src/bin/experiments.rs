//! Runs every experiment and prints the full paper-vs-measured report —
//! the run recorded in EXPERIMENTS.md. `CERTCHAIN_PROFILE=quick` for a
//! fast run.

fn main() {
    let profile = certchain_bench::profile_from_env();
    eprintln!("generating campus trace (seed {})…", profile.seed);
    let mut lab = certchain_bench::Lab::new(profile);
    eprintln!(
        "trace: {} connections, {} distinct certificates, {} chains analyzed",
        lab.trace.ssl_records.len(),
        lab.trace.x509_records.len(),
        lab.analysis.chains.len()
    );
    let outputs = certchain_bench::run_all(&mut lab);
    let mut all_ok = true;
    for out in &outputs {
        println!("{}", out.to_text());
        all_ok &= out.comparison.all_ok();
    }
    println!(
        "=== overall: {} ===",
        if all_ok {
            "ALL EXPERIMENTS WITHIN TOLERANCE"
        } else {
            "SOME EXPERIMENTS OUT OF TOLERANCE"
        }
    );
    std::process::exit(i32::from(!all_ok));
}
