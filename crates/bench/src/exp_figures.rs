//! Figure experiments: Figures 1, 4, 5, 6, 7/8.

use crate::lab::{chain_weight_of, Lab};
use crate::ExperimentOutput;
use certchain_chainlab::graph::ChainGraph;
use certchain_chainlab::hybrid::{structure_matrix_column, Fig4Cell};
use certchain_chainlab::lengths::LengthDistribution;
use certchain_chainlab::{CertClass, ChainCategoryLabel, HybridCategory};
use certchain_report::plot::{ascii_cdf, ascii_histogram, unit_buckets};
use certchain_report::{ComparisonTable, Table};

/// Figure 1: distribution of certificate chain length per category.
pub fn figure1(lab: &Lab) -> ExperimentOutput {
    let mut dists: std::collections::HashMap<ChainCategoryLabel, LengthDistribution> =
        std::collections::HashMap::new();
    for chain in &lab.analysis.chains {
        dists
            .entry(chain.category)
            .or_default()
            .add(chain.key.len(), chain_weight_of(lab, chain));
    }
    let mut rendered = String::new();
    for (name, cat) in [
        ("Public-DB-only", ChainCategoryLabel::PublicOnly),
        ("Non-public-DB-only", ChainCategoryLabel::NonPublicOnly),
        ("Hybrid", ChainCategoryLabel::Hybrid),
        ("TLS interception", ChainCategoryLabel::Interception),
    ] {
        let dist = dists.entry(cat).or_default();
        let lengths: Vec<usize> = dist.points().iter().map(|&(l, _)| l).collect();
        let points: Vec<(usize, f64)> = lengths.iter().map(|&l| (l, dist.cdf(l))).collect();
        rendered.push_str(&ascii_cdf(&format!("Figure 1: {name}"), &points, 40));
        if !dist.excluded().is_empty() {
            rendered.push_str(&format!(
                "   (excluded outliers: {:?})\n",
                dist.excluded().iter().map(|&(l, _)| l).collect::<Vec<_>>()
            ));
        }
    }

    let t = &lab.trace.targets;
    let mut comparison = ComparisonTable::new();
    comparison
        .add(
            "public: share at length 2",
            t.public_share_len2,
            dists[&ChainCategoryLabel::PublicOnly].share(2),
            0.05,
        )
        .add(
            "non-public: share at length 1",
            t.nonpub_share_len1,
            dists[&ChainCategoryLabel::NonPublicOnly].share(1),
            0.02,
        )
        .add(
            "interception: share at length 3",
            t.interception_share_len3,
            dists[&ChainCategoryLabel::Interception].share(3),
            0.06,
        );
    // §4.1: the three freak chains (3,822 / 921 / 41) are excluded.
    let excluded = dists[&ChainCategoryLabel::NonPublicOnly].excluded().len();
    comparison.add("excluded outlier chains", 3.0, excluded as f64, 0.0);
    // The hybrid curve has no dominant length: no single length > 50%.
    let hybrid_max_share = dists[&ChainCategoryLabel::Hybrid]
        .points()
        .iter()
        .map(|&(l, _)| dists[&ChainCategoryLabel::Hybrid].share(l))
        .fold(0.0_f64, f64::max);
    comparison.add(
        "hybrid: max single-length share < 0.5",
        0.0,
        f64::from(u8::from(hybrid_max_share >= 0.5)),
        0.0,
    );

    ExperimentOutput {
        id: "figure1",
        rendered,
        comparison,
    }
}

/// Figure 4: structure matrix of the 70 contains-path hybrid chains.
pub fn figure4(lab: &Lab) -> ExperimentOutput {
    let mut columns: Vec<Vec<Fig4Cell>> = Vec::new();
    for chain in lab.analysis.chains_in(ChainCategoryLabel::Hybrid) {
        if chain.hybrid_category == Some(HybridCategory::ContainsPath) {
            columns.push(structure_matrix_column(
                &chain.certs,
                &chain.classes,
                &chain.path,
            ));
        }
    }
    columns.sort_by_key(|c| std::cmp::Reverse(c.len()));

    // Render: one character per cell (position = row, chain = column).
    // C/P/S = complete/partial/single role; upper = public, lower = non-pub.
    let max_len = columns.iter().map(Vec::len).max().unwrap_or(0);
    let mut rendered = String::from(
        "Figure 4: chain structures of the 70 contains-path hybrid chains\n\
         (rows = position, 1 = bottom; C/P/S roles; uppercase = public-DB)\n",
    );
    for row in (0..max_len).rev() {
        let mut line = format!("{:>3} ", row + 1);
        for col in &columns {
            let ch = match col.get(row) {
                Some(Fig4Cell::Complete(CertClass::PublicDbIssued)) => 'C',
                Some(Fig4Cell::Complete(CertClass::NonPublicDbIssued)) => 'c',
                Some(Fig4Cell::Partial(CertClass::PublicDbIssued)) => 'P',
                Some(Fig4Cell::Partial(CertClass::NonPublicDbIssued)) => 'p',
                Some(Fig4Cell::Single(CertClass::PublicDbIssued)) => 'S',
                Some(Fig4Cell::Single(CertClass::NonPublicDbIssued)) => 's',
                None => ' ',
            };
            line.push(ch);
        }
        rendered.push_str(&line);
        rendered.push('\n');
    }

    let mut comparison = ComparisonTable::new();
    comparison.add(
        "contains-path chains rendered",
        70.0,
        columns.len() as f64,
        0.0,
    );
    let max_height = columns.iter().map(Vec::len).max().unwrap_or(0);
    comparison.add(
        "max chain height ≥ 5 (long tail exists)",
        1.0,
        f64::from(u8::from(max_height >= 5)),
        0.0,
    );

    ExperimentOutput {
        id: "figure4",
        rendered,
        comparison,
    }
}

/// Figure 5: hybrid-chain certificate graph census.
pub fn figure5(lab: &Lab) -> ExperimentOutput {
    let mut graph = ChainGraph::new();
    for chain in lab.analysis.chains_in(ChainCategoryLabel::Hybrid) {
        graph.add_chain(&chain.certs, &chain.classes);
    }
    let census = graph.census();
    let mut table = Table::new(
        "Figure 5: certificates in hybrid chains (graph census)",
        &["Class", "Role", "#. Nodes"],
    );
    for ((class, role), count) in {
        let mut rows: Vec<_> = census.iter().collect();
        rows.sort_by_key(|((c, r), _)| (format!("{c:?}"), format!("{r:?}")));
        rows
    } {
        table.row(&[format!("{class:?}"), format!("{role:?}"), count.to_string()]);
    }
    table.row(&[
        "(edges)".into(),
        "co-occurrence".into(),
        graph.cooccur_edges.len().to_string(),
    ]);

    let mut comparison = ComparisonTable::new();
    let public_nodes: u64 = census
        .iter()
        .filter(|((c, _), _)| *c == CertClass::PublicDbIssued)
        .map(|(_, &n)| n)
        .sum();
    let nonpub_nodes: u64 = census
        .iter()
        .filter(|((c, _), _)| *c == CertClass::NonPublicDbIssued)
        .map(|(_, &n)| n)
        .sum();
    // Structural expectations: both classes present, shared public
    // intermediates give fewer public nodes than chains.
    comparison.add(
        "both classes present",
        1.0,
        f64::from(u8::from(public_nodes > 0 && nonpub_nodes > 0)),
        0.0,
    );
    comparison.add(
        "graph is connected enough (edges ≥ nodes)",
        1.0,
        f64::from(u8::from(
            graph.cooccur_edges.len() as u64 >= (public_nodes + nonpub_nodes) / 2,
        )),
        0.0,
    );

    ExperimentOutput {
        id: "figure5",
        rendered: table.render(),
        comparison,
    }
}

/// Figure 6: mismatch-ratio distribution of no-path hybrid chains.
pub fn figure6(lab: &Lab) -> ExperimentOutput {
    let mut ratios: Vec<(f64, f64)> = Vec::new();
    let mut ge_half = 0u64;
    let mut total = 0u64;
    for chain in lab.analysis.chains_in(ChainCategoryLabel::Hybrid) {
        if matches!(chain.hybrid_category, Some(HybridCategory::NoPath(_))) {
            ratios.push((chain.path.mismatch_ratio, 1.0));
            total += 1;
            if chain.path.mismatch_ratio >= 0.5 {
                ge_half += 1;
            }
        }
    }
    let buckets = unit_buckets(&ratios, 10);
    let rendered = ascii_histogram(
        "Figure 6: mismatch ratios of no-path hybrid chains",
        &buckets,
        40,
    );
    let mut comparison = ComparisonTable::new();
    comparison
        .add("no-path chains", 215.0, total as f64, 0.0)
        .add(
            "share with ratio ≥ 0.5",
            lab.trace.targets.mismatch_ratio_ge_half,
            ge_half as f64 / total.max(1) as f64,
            0.005,
        );

    ExperimentOutput {
        id: "figure6",
        rendered,
        comparison,
    }
}

/// Figures 7/8: complex PKI structures (hub intermediates).
pub fn figure7_8(lab: &Lab) -> ExperimentOutput {
    let mut np_graph = ChainGraph::new();
    let mut ic_graph = ChainGraph::new();
    for chain in &lab.analysis.chains {
        match chain.category {
            ChainCategoryLabel::NonPublicOnly => np_graph.add_chain(&chain.certs, &chain.classes),
            ChainCategoryLabel::Interception => ic_graph.add_chain(&chain.certs, &chain.classes),
            _ => {}
        }
    }
    let np_hubs = np_graph.hub_intermediates(3);
    let ic_hubs = ic_graph.hub_intermediates(3);
    let mut table = Table::new(
        "Figures 7/8: complex PKI structures (intermediates adjacent to ≥3 intermediates)",
        &[
            "Population",
            "#. Hub intermediates",
            "#. Nodes",
            "#. Adjacency edges",
        ],
    );
    table.row(&[
        "Non-public-DB-only".into(),
        np_hubs.len().to_string(),
        np_graph.nodes.len().to_string(),
        np_graph.adjacency_edges.len().to_string(),
    ]);
    table.row(&[
        "TLS interception".into(),
        ic_hubs.len().to_string(),
        ic_graph.nodes.len().to_string(),
        ic_graph.adjacency_edges.len().to_string(),
    ]);

    let mut comparison = ComparisonTable::new();
    comparison.add(
        "non-public hubs exist",
        1.0,
        f64::from(u8::from(!np_hubs.is_empty())),
        0.0,
    );
    comparison.add(
        "interception hubs exist",
        1.0,
        f64::from(u8::from(!ic_hubs.is_empty())),
        0.0,
    );

    ExperimentOutput {
        id: "figure7_8",
        rendered: table.render(),
        comparison,
    }
}
