//! Ablation experiments for the design choices DESIGN.md calls out:
//!
//! 1. **Interception confirmation** (the paper's manual-investigation
//!    proxy): with the ≥2-domain corroboration disabled, one-off
//!    issuer/CT conflicts — e.g. stray stale leaves in front of valid
//!    chains — are misattributed as interception entities.
//! 2. **Cross-signing reconciliation** (Appendix D.1): with disclosures
//!    ignored, cross-signed pairs read as mismatches and chains that are
//!    actually complete get demoted.

use crate::lab::Lab;
use crate::ExperimentOutput;
use certchain_chainlab::{ChainCategoryLabel, CrossSignRegistry, Pipeline, PipelineOptions};
use certchain_report::{ComparisonTable, Table};

/// Run the pipeline with alternative options and compare outcomes.
pub fn ablation(lab: &Lab) -> ExperimentOutput {
    let weights: Vec<f64> = lab.trace.conn_meta.iter().map(|m| m.weight).collect();
    let registry = CrossSignRegistry::from_disclosures(&lab.trace.cross_sign_disclosures);

    // --- Variant A: no interception confirmation.
    let unconfirmed = Pipeline::with_options(
        &lab.trace.eco.trust,
        &lab.trace.ct_index,
        registry.clone(),
        PipelineOptions {
            confirmation_min_domains: 1,
            ..PipelineOptions::default()
        },
    )
    .analyze(
        &lab.trace.ssl_records,
        &lab.trace.x509_records,
        Some(&weights),
    );

    // --- Variant B: cross-signing disclosures ignored.
    let no_crosssign = Pipeline::with_options(
        &lab.trace.eco.trust,
        &lab.trace.ct_index,
        registry,
        PipelineOptions {
            honor_cross_signing: false,
            ..PipelineOptions::default()
        },
    )
    .analyze(
        &lab.trace.ssl_records,
        &lab.trace.x509_records,
        Some(&weights),
    );

    let baseline_entities = lab.analysis.interception_entities.len();
    let unconfirmed_entities = unconfirmed.interception_entities.len();
    let baseline_hybrid = lab.analysis.chains_in(ChainCategoryLabel::Hybrid).count();
    let unconfirmed_hybrid = unconfirmed.chains_in(ChainCategoryLabel::Hybrid).count();

    let mismatches = |a: &certchain_chainlab::Analysis| -> usize {
        a.chains
            .iter()
            .map(|c| c.path.mismatch_positions.len())
            .sum()
    };
    let baseline_mismatches = mismatches(&lab.analysis);
    let no_xsign_mismatches = mismatches(&no_crosssign);

    let mut table = Table::new(
        "Ablation: pipeline design choices",
        &[
            "Variant",
            "Interception entities",
            "Hybrid chains",
            "Total mismatched pairs",
        ],
    );
    table.row(&[
        "baseline (paper's method)".into(),
        baseline_entities.to_string(),
        baseline_hybrid.to_string(),
        baseline_mismatches.to_string(),
    ]);
    table.row(&[
        "no confirmation (min domains = 1)".into(),
        unconfirmed_entities.to_string(),
        unconfirmed_hybrid.to_string(),
        mismatches(&unconfirmed).to_string(),
    ]);
    table.row(&[
        "cross-signing ignored".into(),
        no_crosssign.interception_entities.len().to_string(),
        no_crosssign
            .chains_in(ChainCategoryLabel::Hybrid)
            .count()
            .to_string(),
        no_xsign_mismatches.to_string(),
    ]);

    let mut comparison = ComparisonTable::new();
    // The confirmation step is load-bearing: dropping it inflates the
    // entity set (false positives) and bleeds chains out of the hybrid
    // category.
    comparison.add(
        "confirmation prevents false entities (strictly more without it)",
        1.0,
        f64::from(u8::from(unconfirmed_entities > baseline_entities)),
        0.0,
    );
    comparison.add(
        "confirmation keeps the 321 hybrid chains intact",
        321.0,
        baseline_hybrid as f64,
        0.0,
    );
    comparison.add(
        "hybrid chains lost without confirmation",
        1.0,
        f64::from(u8::from(unconfirmed_hybrid < baseline_hybrid)),
        0.0,
    );
    // Cross-signing reconciliation never *creates* mismatches; ignoring it
    // can only add them (≥, and the synthetic trace's cross-signed chains
    // make it strict on larger profiles).
    comparison.add(
        "ignoring cross-signing never removes mismatches",
        1.0,
        f64::from(u8::from(no_xsign_mismatches >= baseline_mismatches)),
        0.0,
    );

    ExperimentOutput {
        id: "ablation",
        rendered: table.render(),
        comparison,
    }
}
