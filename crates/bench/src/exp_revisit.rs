//! The November-2024 experiments: Table 5 and the §5 revisit report.

use crate::lab::Lab;
use crate::ExperimentOutput;
use certchain_report::table::num;
use certchain_report::{ComparisonTable, Table};
use certchain_scanner::revisit::revisit;
use certchain_scanner::{compare, scan_all};
use certchain_workload::evolve::RevisitPopulation;
use certchain_workload::trace::ChainCategory;

fn build_population(lab: &mut Lab) -> RevisitPopulation {
    let hybrid_indices: Vec<usize> = lab
        .trace
        .servers
        .iter()
        .enumerate()
        .filter_map(|(i, s)| matches!(s.category, ChainCategory::Hybrid(_)).then_some(i))
        .collect();
    // Split borrows: clone the hybrid servers out so the ecosystem can be
    // mutated while the references live.
    let hybrid_servers: Vec<certchain_workload::servers::GeneratedServer> = hybrid_indices
        .iter()
        .map(|&i| lab.trace.servers[i].clone())
        .collect();
    let refs: Vec<&certchain_workload::servers::GeneratedServer> = hybrid_servers.iter().collect();
    RevisitPopulation::generate(&mut lab.trace.eco, &refs)
}

/// Table 5: validation-method comparison over the 2024 scan corpus.
pub fn table5(lab: &mut Lab) -> ExperimentOutput {
    let population = build_population(lab);
    let results = scan_all(&population);
    let t5 = compare(&results);

    let mut table = Table::new(
        "Table 5: issuer-subject vs key-signature validation",
        &["", "Issuer-subject", "Key-signature"],
    );
    table.row(&[
        "#. Single-certificate chains".into(),
        num(t5.is_single as f64, 0),
        num(t5.ks_single as f64, 0),
    ]);
    table.row(&[
        "#. Valid chains".into(),
        num(t5.is_valid as f64, 0),
        num(t5.ks_valid as f64, 0),
    ]);
    table.row(&[
        "#. Broken chains".into(),
        num(t5.is_broken as f64, 0),
        num(t5.ks_broken as f64, 0),
    ]);
    table.row(&[
        "#. Chains with unrecognized keys".into(),
        "-".into(),
        num(t5.ks_unrecognized as f64, 0),
    ]);
    table.row(&[
        "ASN.1-error disagreements".into(),
        "-".into(),
        num(t5.parse_error_disagreements as f64, 0),
    ]);

    let targets = &lab.trace.targets;
    let mut comparison = ComparisonTable::new();
    comparison
        .add(
            "total chains",
            targets.t5_total_chains as f64,
            t5.total as f64,
            0.0,
        )
        .add("single", targets.t5_single as f64, t5.is_single as f64, 0.0)
        .add(
            "IS valid",
            targets.t5_issuer_subject_valid as f64,
            t5.is_valid as f64,
            0.0,
        )
        .add(
            "IS broken",
            targets.t5_issuer_subject_broken as f64,
            t5.is_broken as f64,
            0.0,
        )
        .add(
            "KS valid",
            targets.t5_keysig_valid as f64,
            t5.ks_valid as f64,
            0.0,
        )
        .add(
            "KS broken",
            targets.t5_keysig_broken as f64,
            t5.ks_broken as f64,
            0.0,
        )
        .add(
            "KS unrecognized keys",
            targets.t5_unrecognized_keys as f64,
            t5.ks_unrecognized as f64,
            0.0,
        )
        .add(
            "mismatch positions agree",
            targets.t5_issuer_subject_broken as f64,
            t5.position_agreements as f64,
            0.0,
        );

    ExperimentOutput {
        id: "table5",
        rendered: table.render(),
        comparison,
    }
}

/// §5: the full revisit report (hybrid migration, non-public hierarchy
/// adoption, Chrome/OpenSSL divergence).
pub fn revisit_report(lab: &mut Lab) -> ExperimentOutput {
    let population = build_population(lab);
    let report = revisit(&population, &lab.trace.eco.trust);

    let mut table = Table::new("Section 5: November-2024 revisit", &["Quantity", "Value"]);
    let h = &report.hybrid;
    let n = &report.nonpub;
    for (name, value) in [
        ("hybrid servers reachable", h.reachable as f64),
        ("  now public-DB-only", h.now_public as f64),
        ("  …of which Let's Encrypt", h.now_lets_encrypt as f64),
        ("  now non-public-only", h.now_nonpub as f64),
        ("  still hybrid", h.still_hybrid as f64),
        ("    complete, clean", h.still_complete_clean as f64),
        (
            "    complete + unnecessary",
            h.still_complete_unnecessary as f64,
        ),
        ("    no matched path", h.still_no_path as f64),
        ("non-public servers scanned", n.servers as f64),
        ("  now multi-certificate", n.now_multi as f64),
        ("    previously multi", n.prev_multi as f64),
        (
            "    previously single self-signed",
            n.prev_single_self_signed as f64,
        ),
        (
            "    previously single distinct",
            n.prev_single_distinct as f64,
        ),
    ] {
        table.row(&[name.to_string(), num(value, 0)]);
    }
    table.row(&[
        "  complete-matched-path share".into(),
        format!("{:.2}%", n.complete_share * 100.0),
    ]);
    let mut rendered = table.render();
    rendered.push_str("\nChrome vs OpenSSL on complete+unnecessary chains:\n");
    for case in &report.divergence {
        rendered.push_str(&format!(
            "  {}: Chrome {} / OpenSSL-strict {}\n",
            case.domain,
            if case.chrome_valid { "VALID" } else { "REJECT" },
            if case.openssl_valid {
                "VALID"
            } else {
                "REJECT"
            },
        ));
    }

    let t = &lab.trace.targets;
    let mut comparison = ComparisonTable::new();
    comparison
        .add(
            "reachable hybrid servers",
            t.revisit_hybrid_reachable as f64,
            h.reachable as f64,
            0.0,
        )
        .add(
            "now public",
            t.revisit_hybrid_now_public as f64,
            h.now_public as f64,
            0.0,
        )
        .add(
            "now non-public",
            t.revisit_hybrid_now_nonpub as f64,
            h.now_nonpub as f64,
            0.0,
        )
        .add(
            "still hybrid",
            t.revisit_hybrid_still_hybrid as f64,
            h.still_hybrid as f64,
            0.0,
        )
        .add(
            "still hybrid: complete clean",
            t.revisit_hybrid_complete_clean as f64,
            h.still_complete_clean as f64,
            0.0,
        )
        .add(
            "still hybrid: complete + unnecessary",
            t.revisit_hybrid_complete_unnecessary as f64,
            h.still_complete_unnecessary as f64,
            0.0,
        )
        .add(
            "non-public servers",
            t.revisit_nonpub_servers as f64,
            n.servers as f64,
            0.0,
        )
        .add(
            "now multi",
            t.revisit_nonpub_now_multi as f64,
            n.now_multi as f64,
            0.0,
        )
        .add(
            "prev multi share",
            t.revisit_nonpub_prev_multi_share,
            n.prev_multi as f64 / n.now_multi.max(1) as f64,
            0.001,
        )
        .add(
            "prev single self-signed share",
            t.revisit_nonpub_prev_single_selfsigned_share,
            n.prev_single_self_signed as f64 / n.now_multi.max(1) as f64,
            0.001,
        )
        .add(
            "complete share of now-multi",
            t.revisit_nonpub_complete_share,
            n.complete_share,
            0.001,
        )
        .add(
            "divergence cases (Chrome valid, strict reject)",
            3.0,
            report
                .divergence
                .iter()
                .filter(|c| c.chrome_valid && !c.openssl_valid)
                .count() as f64,
            0.0,
        );

    ExperimentOutput {
        id: "revisit",
        rendered,
        comparison,
    }
}
