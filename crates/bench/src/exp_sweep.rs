//! The §6.3 future-work experiment: IP-space sweep + passive logs.

use crate::lab::Lab;
use crate::ExperimentOutput;
use certchain_report::{ComparisonTable, Table};
use certchain_scanner::ip_space_sweep;

/// Sweep the simulated address space and quantify the passive blind spot.
pub fn sweep(lab: &Lab) -> ExperimentOutput {
    let report = ip_space_sweep(&lab.trace.servers, &lab.analysis);
    let mut table = Table::new(
        "§6.3: active IP-space sweep vs passive monitoring",
        &["Quantity", "Value"],
    );
    table.row(&["servers scanned".into(), report.servers_scanned.to_string()]);
    table.row(&["chains obtained".into(), report.chains_obtained.to_string()]);
    table.row(&[
        "distinct chains (sweep)".into(),
        report.distinct_chains.to_string(),
    ]);
    table.row(&[
        "distinct chains (passive)".into(),
        lab.analysis.chains.len().to_string(),
    ]);
    table.row(&[
        "chains invisible to passive (TLS 1.3-only servers)".into(),
        report.chains_missed_by_passive.to_string(),
    ]);
    table.row(&[
        "certificates recovered only by the sweep".into(),
        report.certs_missed_by_passive.to_string(),
    ]);

    let mut comparison = ComparisonTable::new();
    // The paper's §6.3 limitation, quantified: passive monitoring misses
    // the TLS 1.3-only population entirely (~a quarter of public servers
    // in the model).
    comparison.add(
        "TLS 1.3-only public servers missed by passive",
        (lab.trace.profile.public_chains / 4) as f64,
        report.chains_missed_by_passive as f64,
        0.02,
    );
    comparison.add(
        "sweep covers every passive chain",
        1.0,
        f64::from(u8::from(
            report.distinct_chains as usize >= lab.analysis.chains.len(),
        )),
        0.0,
    );

    ExperimentOutput {
        id: "sweep",
        rendered: table.render(),
        comparison,
    }
}
