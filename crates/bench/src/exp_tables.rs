//! Table experiments: Tables 1, 2, 3 (+ establishment rates), 4, 6, 7, 8.

use crate::lab::{chain_weight_of, Lab};
use crate::ExperimentOutput;
use certchain_chainlab::hybrid::NoPathCategory;
use certchain_chainlab::pipeline::issuer_entity;
use certchain_chainlab::usage::UsageStats;
use certchain_chainlab::{ChainCategoryLabel, HybridCategory};
use certchain_report::table::{num, pct};
use certchain_report::{ComparisonTable, Table};
use certchain_workload::issuers::{interception_vendors, InterceptionCategory};
use std::collections::HashMap;

/// Table 1: categories of issuers conducting TLS interception.
pub fn table1(lab: &Lab) -> ExperimentOutput {
    // The paper's "manual investigation through web search" step: map
    // detected entities to vendor categories via the public vendor
    // catalog. Unattributable entities fall into "Other".
    let catalog: HashMap<String, InterceptionCategory> = interception_vendors()
        .into_iter()
        .map(|v| (v.name, v.category))
        .collect();

    #[derive(Default)]
    struct Row {
        issuers: std::collections::BTreeSet<String>,
        usage: UsageStats,
    }
    let mut rows: HashMap<InterceptionCategory, Row> = HashMap::new();
    let mut total = UsageStats::default();
    for chain in lab.analysis.chains_in(ChainCategoryLabel::Interception) {
        let entity = chain
            .interception_entity
            .clone()
            .unwrap_or_else(|| issuer_entity(&chain.certs[0].issuer));
        let category = catalog
            .get(&entity)
            .copied()
            .unwrap_or(InterceptionCategory::Other);
        let row = rows.entry(category).or_default();
        row.issuers.insert(entity);
        row.usage.merge(&chain.usage);
        total.merge(&chain.usage);
    }

    let mut table = Table::new(
        "Table 1: Categories of issuers conducting TLS interception",
        &[
            "Category",
            "#. Issuers",
            "% Connections",
            "#. Client IPs (weighted)",
        ],
    );
    let mut comparison = ComparisonTable::new();
    let conn_weight = lab.trace.profile.conn_weight();
    for (cat, issuers_paper, conns_paper, _ips_paper) in lab.trace.targets.interception_categories {
        let category = InterceptionCategory::all()
            .into_iter()
            .find(|c| c.name() == cat)
            .expect("category names match");
        let row = rows.remove(&category).unwrap_or_default();
        let conn_share = 100.0 * row.usage.connections / total.connections.max(f64::MIN_POSITIVE);
        let weighted_ips = row.usage.client_ips.len() as f64 * conn_weight;
        table.row(&[
            cat.to_string(),
            num(row.issuers.len() as f64, 0),
            format!("{conn_share:.2}"),
            num(weighted_ips, 0),
        ]);
        comparison.add(
            &format!("{cat}: issuers"),
            issuers_paper as f64,
            row.issuers.len() as f64,
            0.15,
        );
        if conns_paper >= 0.1 {
            comparison.add(
                &format!("{cat}: % connections"),
                conns_paper,
                conn_share,
                0.05,
            );
        }
    }
    comparison.add(
        "identified interception issuers",
        80.0,
        lab.analysis.interception_entities.len() as f64,
        0.02,
    );

    ExperimentOutput {
        id: "table1",
        rendered: table.render(),
        comparison,
    }
}

/// Table 2: statistics of certificate chains (weighted to paper scale).
pub fn table2(lab: &Lab) -> ExperimentOutput {
    struct Bucket {
        chains: f64,
        usage: UsageStats,
    }
    let mut buckets: HashMap<ChainCategoryLabel, Bucket> = HashMap::new();
    for chain in &lab.analysis.chains {
        let b = buckets.entry(chain.category).or_insert(Bucket {
            chains: 0.0,
            usage: UsageStats::default(),
        });
        b.chains += chain_weight_of(lab, chain);
        b.usage.merge(&chain.usage);
    }
    let conn_weight = lab.trace.profile.conn_weight();
    let mut table = Table::new(
        "Table 2: Statistics of certificate chains (weighted)",
        &["", "Non-public-DB-only", "Hybrid", "TLS int."],
    );
    let get = |cat: ChainCategoryLabel| -> (f64, f64, f64) {
        buckets
            .get(&cat)
            .map(|b| {
                (
                    b.chains,
                    b.usage.connections,
                    // Hybrid/DGA groups are full fidelity (weight 1);
                    // scaled groups multiply their observed IPs back up.
                    if cat == ChainCategoryLabel::Hybrid {
                        b.usage.client_ips.len() as f64
                    } else {
                        b.usage.client_ips.len() as f64 * conn_weight
                    },
                )
            })
            .unwrap_or((0.0, 0.0, 0.0))
    };
    let np = get(ChainCategoryLabel::NonPublicOnly);
    let hy = get(ChainCategoryLabel::Hybrid);
    let ic = get(ChainCategoryLabel::Interception);
    table.row(&[
        "#. Cert chains".into(),
        num(np.0, 0),
        num(hy.0, 0),
        num(ic.0, 0),
    ]);
    table.row(&[
        "#. TLS connections".into(),
        num(np.1, 0),
        num(hy.1, 0),
        num(ic.1, 0),
    ]);
    table.row(&[
        "#. Client IPs".into(),
        num(np.2, 0),
        num(hy.2, 0),
        num(ic.2, 0),
    ]);

    let t = &lab.trace.targets;
    let mut comparison = ComparisonTable::new();
    comparison
        .add(
            "non-public-DB-only chains",
            t.nonpub_chains as f64,
            np.0,
            0.10,
        )
        .add("hybrid chains", t.hybrid_chains as f64, hy.0, 0.0)
        .add(
            "interception chains",
            t.interception_chains as f64,
            ic.0,
            0.10,
        )
        .add(
            "non-public connections",
            t.nonpub_connections as f64,
            np.1,
            0.05,
        )
        .add(
            "hybrid connections",
            t.hybrid_connections as f64,
            hy.1,
            0.01,
        )
        .add(
            "interception connections",
            t.interception_connections as f64,
            ic.1,
            0.05,
        )
        .add("hybrid client IPs", t.hybrid_client_ips as f64, hy.2, 0.05);

    ExperimentOutput {
        id: "table2",
        rendered: table.render(),
        comparison,
    }
}

/// Table 3 (+ §4.2 establishment rates): hybrid chain categories.
pub fn table3(lab: &Lab) -> ExperimentOutput {
    let mut complete_np = 0u64;
    let mut complete_prv = 0u64;
    let mut contains = 0u64;
    let mut no_path = 0u64;
    let mut usage_complete = UsageStats::default();
    let mut usage_contains = UsageStats::default();
    let mut usage_no_path = UsageStats::default();
    let mut usage_56 = UsageStats::default();
    let mut in_56 = 0u64;
    for chain in lab.analysis.chains_in(ChainCategoryLabel::Hybrid) {
        match chain.hybrid_category.expect("hybrid is categorized") {
            HybridCategory::CompleteNonPubToPub => {
                complete_np += 1;
                usage_complete.merge(&chain.usage);
            }
            HybridCategory::CompletePubToPrv => {
                complete_prv += 1;
                usage_complete.merge(&chain.usage);
            }
            HybridCategory::ContainsPath => {
                contains += 1;
                usage_contains.merge(&chain.usage);
            }
            HybridCategory::NoPath(_) => {
                no_path += 1;
                usage_no_path.merge(&chain.usage);
                if chain.pub_leaf_no_intermediate {
                    in_56 += 1;
                    usage_56.merge(&chain.usage);
                }
            }
        }
    }
    let mut table = Table::new(
        "Table 3: Statistics of hybrid certificate chains",
        &["Hybrid chain category", "#. Chains", "Established"],
    );
    table.row(&[
        "(1) Complete: Non-pub chained to Pub".into(),
        num(complete_np as f64, 0),
        pct(usage_complete.established_rate()),
    ]);
    table.row(&[
        "(1) Complete: Pub chained to Prv".into(),
        num(complete_prv as f64, 0),
        String::new(),
    ]);
    table.row(&[
        "(2) Contains a complete matched path".into(),
        num(contains as f64, 0),
        pct(usage_contains.established_rate()),
    ]);
    table.row(&[
        "(3) No complete matched path".into(),
        num(no_path as f64, 0),
        pct(usage_no_path.established_rate()),
    ]);
    table.row(&[
        "    of which: pub leaf w/o intermediate".into(),
        num(in_56 as f64, 0),
        pct(usage_56.established_rate()),
    ]);
    table.row(&[
        "Total".into(),
        num((complete_np + complete_prv + contains + no_path) as f64, 0),
        String::new(),
    ]);

    let t = &lab.trace.targets;
    let mut comparison = ComparisonTable::new();
    comparison
        .add(
            "complete: non-pub→pub",
            t.hybrid_complete_nonpub_to_pub as f64,
            complete_np as f64,
            0.0,
        )
        .add(
            "complete: pub→prv",
            t.hybrid_complete_pub_to_prv as f64,
            complete_prv as f64,
            0.0,
        )
        .add(
            "contains path",
            t.hybrid_contains_path as f64,
            contains as f64,
            0.0,
        )
        .add("no path", t.hybrid_no_path as f64, no_path as f64, 0.0)
        .add(
            "established: complete",
            t.established_rate_complete,
            usage_complete.established_rate(),
            0.01,
        )
        .add(
            "established: contains",
            t.established_rate_contains,
            usage_contains.established_rate(),
            0.01,
        )
        .add(
            "established: no path",
            t.established_rate_no_path,
            usage_no_path.established_rate(),
            0.02,
        )
        .add(
            "56-group chains",
            t.pub_leaf_no_intermediate_chains as f64,
            in_56 as f64,
            0.0,
        )
        .add(
            "56-group connections",
            t.pub_leaf_no_intermediate_connections as f64,
            usage_56.connections,
            0.01,
        )
        .add(
            "56-group established",
            t.pub_leaf_no_intermediate_established,
            usage_56.established_rate(),
            0.01,
        )
        .add(
            "no-path connections",
            t.no_path_connections as f64,
            usage_no_path.connections,
            0.01,
        );

    ExperimentOutput {
        id: "table3",
        rendered: table.render(),
        comparison,
    }
}

/// Table 4: port distributions per category.
pub fn table4(lab: &Lab) -> ExperimentOutput {
    let hybrid = lab
        .analysis
        .usage_of(|c| c.category == ChainCategoryLabel::Hybrid);
    let single = lab
        .analysis
        .usage_of(|c| c.category == ChainCategoryLabel::NonPublicOnly && c.key.len() == 1);
    let multi = lab
        .analysis
        .usage_of(|c| c.category == ChainCategoryLabel::NonPublicOnly && c.key.len() > 1);
    let interception = lab
        .analysis
        .usage_of(|c| c.category == ChainCategoryLabel::Interception);

    let mut table = Table::new(
        "Table 4: Port distribution of connections (top-5 per category)",
        &["Category", "Port", "%"],
    );
    let mut comparison = ComparisonTable::new();
    let mut render = |name: &str, stats: &UsageStats, paper: &[(u16, f64)]| {
        let dist = stats.port_distribution();
        for (port, share) in dist.iter().take(5) {
            table.row(&[name.to_string(), port.to_string(), format!("{share:.2}")]);
        }
        for (port, paper_share) in paper {
            if *paper_share < 0.05 {
                // Sub-0.05% rows (e.g. hybrid port 9191 at 0.01%) cannot be
                // resolved at simulation scale; shown in the table only.
                continue;
            }
            let measured = dist
                .iter()
                .find(|(p, _)| p == port)
                .map(|(_, s)| *s)
                .unwrap_or(0.0);
            // Small shares carry proportionally more sampling noise at
            // reduced scale; widen their tolerance.
            let tolerance = if *paper_share < 3.0 { 0.60 } else { 0.20 };
            comparison.add(
                &format!("{name} port {port} %"),
                *paper_share,
                measured,
                tolerance,
            );
        }
    };
    let t = &lab.trace.targets;
    render("Hybrid", &hybrid, &t.ports_hybrid);
    render("Non-pub single", &single, &t.ports_nonpub_single);
    render("Non-pub multi", &multi, &t.ports_nonpub_multi);
    render("Interception", &interception, &t.ports_interception);

    ExperimentOutput {
        id: "table4",
        rendered: table.render(),
        comparison,
    }
}

/// Table 6: anchored non-public issuers by entity category, plus the §4.2
/// CT-compliance check.
pub fn table6(lab: &Lab) -> ExperimentOutput {
    use certchain_workload::issuers::{anchored_issuers, AnchoredCategory};
    // The "manual" entity categorization: organization → category.
    let org_category: HashMap<String, AnchoredCategory> = anchored_issuers()
        .into_iter()
        .map(|s| (s.org.to_string(), s.category))
        .collect();

    let mut corp = 0u64;
    let mut gov = 0u64;
    let mut uncategorized = 0u64;
    let mut ct_logged = 0u64;
    let mut ct_total = 0u64;
    for chain in lab.analysis.chains_in(ChainCategoryLabel::Hybrid) {
        if chain.hybrid_category != Some(HybridCategory::CompleteNonPubToPub) {
            continue;
        }
        let org = chain.certs[0]
            .issuer
            .get(&certchain_x509::dn::AttrType::Organization)
            .unwrap_or_default()
            .to_string();
        match org_category.get(&org) {
            Some(AnchoredCategory::Corporate) => corp += 1,
            Some(AnchoredCategory::Government) => gov += 1,
            None => uncategorized += 1,
        }
        ct_total += 1;
        if chain.leaf_ct_logged == Some(true) {
            ct_logged += 1;
        }
    }
    let mut table = Table::new(
        "Table 6: Non-public-DB issuers chained to public trust anchors",
        &["Category", "#. Chains"],
    );
    table.row(&["Corporate".into(), num(corp as f64, 0)]);
    table.row(&["Government".into(), num(gov as f64, 0)]);
    if uncategorized > 0 {
        table.row(&["(uncategorized)".into(), num(uncategorized as f64, 0)]);
    }
    table.row(&["CT-logged leaves".into(), format!("{ct_logged}/{ct_total}")]);

    let t = &lab.trace.targets;
    let mut comparison = ComparisonTable::new();
    comparison
        .add(
            "corporate chains",
            t.anchored_corporate as f64,
            corp as f64,
            0.0,
        )
        .add(
            "government chains",
            t.anchored_government as f64,
            gov as f64,
            0.0,
        )
        .add(
            "CT-logged share",
            1.0,
            ct_logged as f64 / ct_total.max(1) as f64,
            0.0,
        );

    ExperimentOutput {
        id: "table6",
        rendered: table.render(),
        comparison,
    }
}

/// Table 7: categorization of hybrid chains without a complete path.
pub fn table7(lab: &Lab) -> ExperimentOutput {
    let mut counts: HashMap<NoPathCategory, u64> = HashMap::new();
    let mut identical_leaf = 0u64;
    for chain in lab.analysis.chains_in(ChainCategoryLabel::Hybrid) {
        if let Some(HybridCategory::NoPath(cat)) = chain.hybrid_category {
            *counts.entry(cat).or_default() += 1;
            if cat == NoPathCategory::SelfSignedLeafMismatches
                && chain.certs[0].subject.common_name() == Some("localhost")
            {
                identical_leaf += 1;
            }
        }
    }
    let rows: [(&str, NoPathCategory, u64); 6] = [
        (
            "Non-pub-DB self-signed leaf + mismatched pairs",
            NoPathCategory::SelfSignedLeafMismatches,
            lab.trace.targets.t7_selfsigned_leaf_mismatches,
        ),
        (
            "Non-pub-DB self-signed leaf + valid sub-chain",
            NoPathCategory::SelfSignedLeafValidSubchain,
            lab.trace.targets.t7_selfsigned_leaf_valid_subchain,
        ),
        (
            "All pairs mismatched",
            NoPathCategory::AllMismatched,
            lab.trace.targets.t7_all_mismatched,
        ),
        (
            "Partial pairs mismatched",
            NoPathCategory::PartialMismatched,
            lab.trace.targets.t7_partial_mismatched,
        ),
        (
            "Non-pub root appended to valid sub-chain",
            NoPathCategory::RootAppendedToValidSubchain,
            lab.trace.targets.t7_root_appended_to_valid_subchain,
        ),
        (
            "Non-pub root + mismatched pairs",
            NoPathCategory::RootAndMismatches,
            lab.trace.targets.t7_root_and_mismatches,
        ),
    ];
    let mut table = Table::new(
        "Table 7: Hybrid chains without a complete matched path",
        &["Category", "#. Chains"],
    );
    let mut comparison = ComparisonTable::new();
    for (name, cat, paper) in rows {
        let measured = counts.get(&cat).copied().unwrap_or(0);
        table.row(&[name.to_string(), num(measured as f64, 0)]);
        comparison.add(name, paper as f64, measured as f64, 0.0);
    }
    comparison.add(
        "localhost-DN leaves (of 108)",
        lab.trace.targets.t7_identical_leaf_fields as f64,
        identical_leaf as f64,
        0.0,
    );

    ExperimentOutput {
        id: "table7",
        rendered: table.render(),
        comparison,
    }
}

/// Table 8 + §4.3: non-public-only and interception path statistics.
pub fn table8(lab: &Lab) -> ExperimentOutput {
    use certchain_chainlab::matchpath::{path_verdict_leaf_agnostic, PathVerdict};
    struct Acc {
        is_path: f64,
        contains: u64,
        no_path: u64,
        multi: f64,
        single: f64,
        single_self_signed: f64,
    }
    let acc = |cat: ChainCategoryLabel| -> Acc {
        let mut a = Acc {
            is_path: 0.0,
            contains: 0,
            no_path: 0,
            multi: 0.0,
            single: 0.0,
            single_self_signed: 0.0,
        };
        for chain in lab.analysis.chains_in(cat) {
            let w = chain_weight_of(lab, chain);
            if chain.key.len() == 1 {
                a.single += w;
                if chain.certs[0].is_self_signed() {
                    a.single_self_signed += w;
                }
                continue;
            }
            a.multi += w;
            match path_verdict_leaf_agnostic(&chain.path) {
                PathVerdict::IsComplete => a.is_path += w,
                PathVerdict::ContainsComplete => a.contains += 1,
                PathVerdict::NoComplete => a.no_path += 1,
            }
        }
        a
    };
    let np = acc(ChainCategoryLabel::NonPublicOnly);
    let ic = acc(ChainCategoryLabel::Interception);

    // The DGA cluster (weighted sums are weight-1 for this group).
    let dga = lab.analysis.usage_of(|c| c.is_dga);
    let dga_chains = lab.analysis.chains.iter().filter(|c| c.is_dga).count();

    let mut table = Table::new(
        "Table 8: Non-public-DB-only and interception chains (> 1 cert)",
        &["", "Non-public-DB-only", "TLS int."],
    );
    table.row(&[
        "Is a matched path (%)".into(),
        pct(np.is_path / np.multi.max(1.0)),
        pct(ic.is_path / ic.multi.max(1.0)),
    ]);
    table.row(&[
        "Contains a matched path (#)".into(),
        num(np.contains as f64, 0),
        num(ic.contains as f64, 0),
    ]);
    table.row(&[
        "No matched path (#)".into(),
        num(np.no_path as f64, 0),
        num(ic.no_path as f64, 0),
    ]);
    table.row(&[
        "Single-cert share".into(),
        pct(np.single / (np.single + np.multi)),
        pct(ic.single / (ic.single + ic.multi)),
    ]);
    table.row(&[
        "Self-signed share of singles".into(),
        pct(np.single_self_signed / np.single.max(1.0)),
        pct(ic.single_self_signed / ic.single.max(1.0)),
    ]);
    table.row(&[
        "DGA cluster: chains/conns/IPs".into(),
        format!(
            "{dga_chains} / {} / {}",
            num(dga.connections, 0),
            num(dga.client_ips.len() as f64, 0)
        ),
        String::new(),
    ]);

    let t = &lab.trace.targets;
    let mut comparison = ComparisonTable::new();
    comparison
        .add(
            "non-pub: is matched path",
            t.nonpub_multi_matched_share,
            np.is_path / np.multi.max(1.0),
            0.01,
        )
        .add(
            "interception: is matched path",
            t.interception_multi_matched_share,
            ic.is_path / ic.multi.max(1.0),
            0.06,
        )
        .add(
            "non-pub contains",
            t.nonpub_multi_contains as f64,
            np.contains as f64,
            0.02,
        )
        .add(
            "non-pub no path",
            t.nonpub_multi_no_path as f64,
            np.no_path as f64,
            0.05,
        )
        .add(
            "interception contains",
            t.interception_multi_contains as f64,
            ic.contains as f64,
            0.02,
        )
        .add(
            "interception no path",
            t.interception_multi_no_path as f64,
            ic.no_path as f64,
            0.05,
        )
        .add(
            "non-pub single share",
            t.nonpub_single_share,
            np.single / (np.single + np.multi),
            0.02,
        )
        .add(
            "non-pub self-signed singles",
            t.nonpub_single_selfsigned_share,
            np.single_self_signed / np.single.max(1.0),
            0.01,
        )
        .add(
            "interception single share",
            t.interception_single_share,
            ic.single / (ic.single + ic.multi),
            0.06,
        )
        .add(
            "DGA connections",
            t.dga_connections as f64,
            dga.connections,
            0.01,
        )
        .add(
            "DGA client IPs",
            t.dga_client_ips as f64,
            dga.client_ips.len() as f64,
            0.02,
        );

    ExperimentOutput {
        id: "table8",
        rendered: table.render(),
        comparison,
    }
}
