//! Shared experiment state: one generated trace + one pipeline run.

use certchain_chainlab::{Analysis, CrossSignRegistry, Pipeline};
use certchain_workload::{CampusProfile, CampusTrace};

/// The lab: a generated campus trace plus its analysis.
pub struct Lab {
    /// The synthetic campus trace.
    pub trace: CampusTrace,
    /// The pipeline's output over that trace.
    pub analysis: Analysis,
}

/// Profile selection: `CERTCHAIN_PROFILE=quick` for the test-sized run,
/// `CERTCHAIN_PROFILE=large` for the parallel-scaling bench size,
/// anything else (or unset) for the default calibration.
pub fn profile_from_env() -> CampusProfile {
    match std::env::var("CERTCHAIN_PROFILE").as_deref() {
        Ok("quick") => CampusProfile::quick(),
        Ok("large") => CampusProfile::large(),
        _ => CampusProfile::default(),
    }
}

impl Lab {
    /// Generate the trace and run the full analysis.
    pub fn new(profile: CampusProfile) -> Lab {
        let trace = CampusTrace::generate(profile);
        let weights: Vec<f64> = trace.conn_meta.iter().map(|m| m.weight).collect();
        let pipeline = Pipeline::new(
            &trace.eco.trust,
            &trace.ct_index,
            CrossSignRegistry::from_disclosures(&trace.cross_sign_disclosures),
        );
        let analysis = pipeline.analyze(&trace.ssl_records, &trace.x509_records, Some(&weights));
        Lab { trace, analysis }
    }

    /// A lab using the env-selected profile.
    pub fn from_env() -> Lab {
        Lab::new(profile_from_env())
    }
}

/// Statistical weight of one analyzed chain: looked up from the
/// generator's ground truth (full-fidelity populations weigh 1).
pub fn chain_weight_of(lab: &Lab, chain: &certchain_chainlab::ChainAnalysis) -> f64 {
    lab.trace
        .truth
        .by_chain
        .get(&chain.key.0)
        .map(|&idx| lab.trace.servers[idx].weight)
        .unwrap_or(1.0)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn lab_builds_with_quick_profile() {
        let lab = Lab::new(CampusProfile::quick());
        assert!(!lab.analysis.chains.is_empty());
        assert_eq!(
            lab.analysis
                .chains_in(certchain_chainlab::ChainCategoryLabel::Hybrid)
                .count(),
            321
        );
    }
}
