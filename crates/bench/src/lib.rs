#![forbid(unsafe_code)]
//! The experiment harness: one function per paper table/figure.
//!
//! Each `table*` / `figure*` function renders the reproduced artifact and
//! returns it together with a [`certchain_report::ComparisonTable`] of paper-vs-measured
//! values. The binaries under `src/bin/` are thin wrappers; `cargo run -p
//! certchain-bench --bin experiments` regenerates everything (that run is
//! what EXPERIMENTS.md records).
//!
//! Set `CERTCHAIN_PROFILE=quick` for a fast, smaller-scale run.

pub mod lab;

mod exp_ablation;
mod exp_figures;
mod exp_revisit;
mod exp_sweep;
mod exp_tables;

pub use exp_ablation::ablation;
pub use exp_figures::{figure1, figure4, figure5, figure6, figure7_8};
pub use exp_revisit::{revisit_report, table5};
pub use exp_sweep::sweep;
pub use exp_tables::{table1, table2, table3, table4, table6, table7, table8};
pub use lab::{chain_weight_of, profile_from_env, Lab};

/// One experiment's output.
pub struct ExperimentOutput {
    /// Experiment id, e.g. "table1".
    pub id: &'static str,
    /// The rendered artifact (table / figure / report text).
    pub rendered: String,
    /// Paper-vs-measured rows.
    pub comparison: certchain_report::ComparisonTable,
}

impl ExperimentOutput {
    /// Render everything for the console / EXPERIMENTS.md.
    pub fn to_text(&self) -> String {
        format!(
            "##### {} #####\n{}\n{}\n",
            self.id,
            self.rendered,
            self.comparison
                .render(&format!("{}: paper vs measured", self.id))
        )
    }
}

/// Run every experiment against one lab instance.
pub fn run_all(lab: &mut lab::Lab) -> Vec<ExperimentOutput> {
    vec![
        table1(lab),
        table2(lab),
        table3(lab),
        table4(lab),
        table6(lab),
        table7(lab),
        table8(lab),
        figure1(lab),
        figure4(lab),
        figure5(lab),
        figure6(lab),
        figure7_8(lab),
        ablation(lab),
        sweep(lab),
        table5(lab),
        revisit_report(lab),
    ]
}
