//! Thread-count invariance: the parallel pipeline must render the exact
//! same paper artifacts as the sequential one, byte for byte — whether
//! the records arrive as in-memory slices (batch) or are streamed off
//! serialized Zeek logs (the bounded-memory path `certchain analyze`
//! uses).

use certchain_bench::{table2, table3, table7, Lab};
use certchain_chainlab::{CrossSignRegistry, Pipeline, PipelineOptions};
use certchain_netsim::zeek::reader::{read_ssl_log, read_x509_log};
use certchain_netsim::zeek::tsv::{write_ssl_log, write_x509_log};
use certchain_netsim::{SimClock, SslLogStream, X509LogStream};
use certchain_obs::Registry;
use certchain_workload::{CampusProfile, CampusTrace};
use std::sync::Arc;

#[test]
fn tables_are_byte_identical_across_thread_counts() {
    let trace = CampusTrace::generate_with(CampusProfile::quick(), 0);
    let weights: Vec<f64> = trace.conn_meta.iter().map(|m| m.weight).collect();

    let analyze = |trace: &CampusTrace, threads: usize| {
        let pipeline = Pipeline::with_options(
            &trace.eco.trust,
            &trace.ct_index,
            CrossSignRegistry::from_disclosures(&trace.cross_sign_disclosures),
            PipelineOptions {
                threads,
                ..PipelineOptions::default()
            },
        );
        pipeline.analyze(&trace.ssl_records, &trace.x509_records, Some(&weights))
    };

    let baseline = analyze(&trace, 1);
    let mut lab = Lab {
        trace,
        analysis: baseline,
    };
    let render = |lab: &Lab| {
        (
            table2(lab).rendered,
            table3(lab).rendered,
            table7(lab).rendered,
        )
    };
    let sequential = render(&lab);

    for threads in [2, 8] {
        lab.analysis = analyze(&lab.trace, threads);
        let parallel = render(&lab);
        assert_eq!(sequential, parallel, "threads = {threads} diverged");
    }
}

/// The streaming ingestion path — serialized Zeek logs, record streams,
/// chunked accumulation — must render the same Tables 2/3/7 as the batch
/// path over the same logs, for every thread count.
#[test]
fn streaming_path_renders_identical_tables() {
    let trace = CampusTrace::generate_with(CampusProfile::quick(), 0);
    // Serialize the logs exactly as `certchain generate` writes them.
    let open = SimClock::campus_window_start().now();
    let mut ssl_buf = Vec::new();
    write_ssl_log(&mut ssl_buf, &trace.ssl_records, open).unwrap();
    let mut x509_buf = Vec::new();
    write_x509_log(&mut x509_buf, &trace.x509_records, open).unwrap();

    // Batch baseline: whole-log parse, unweighted in-memory analysis
    // (real Zeek logs carry no statistical weights, so the streaming path
    // is weight-1.0 by construction — compare like with like).
    let ssl = read_ssl_log(std::str::from_utf8(&ssl_buf).unwrap()).unwrap();
    let x509 = read_x509_log(std::str::from_utf8(&x509_buf).unwrap()).unwrap();
    let batch = Pipeline::with_options(
        &trace.eco.trust,
        &trace.ct_index,
        CrossSignRegistry::from_disclosures(&trace.cross_sign_disclosures),
        PipelineOptions {
            threads: 1,
            ..PipelineOptions::default()
        },
    )
    .analyze(&ssl, &x509, None);

    let stream_analyze = |trace: &CampusTrace, threads: usize| {
        let pipeline = Pipeline::with_options(
            &trace.eco.trust,
            &trace.ct_index,
            CrossSignRegistry::from_disclosures(&trace.cross_sign_disclosures),
            PipelineOptions {
                threads,
                ..PipelineOptions::default()
            },
        );
        pipeline
            .analyze_stream(
                SslLogStream::new(&ssl_buf[..]),
                X509LogStream::new(&x509_buf[..]),
            )
            .expect("well-formed logs stream cleanly")
    };

    let mut lab = Lab {
        trace,
        analysis: batch,
    };
    let render = |lab: &Lab| {
        (
            table2(lab).rendered,
            table3(lab).rendered,
            table7(lab).rendered,
        )
    };
    let baseline = render(&lab);

    for threads in [1, 2, 8] {
        lab.analysis = stream_analyze(&lab.trace, threads);
        let streamed = render(&lab);
        assert_eq!(
            baseline, streamed,
            "streaming path diverged at threads = {threads}"
        );
    }
}

/// Observability is a pure bystander: attaching a metrics registry must
/// not perturb a single output byte, and the snapshot's deterministic
/// section (counters, gauges, histograms) must be bit-identical at
/// thread counts 1, 2, and 8. Only the `timing` section may vary.
#[test]
fn metrics_never_perturb_tables_and_are_thread_invariant() {
    let trace = CampusTrace::generate_with(CampusProfile::quick(), 0);
    let weights: Vec<f64> = trace.conn_meta.iter().map(|m| m.weight).collect();

    let analyze = |trace: &CampusTrace, threads: usize, registry: Option<&Arc<Registry>>| {
        let mut pipeline = Pipeline::with_options(
            &trace.eco.trust,
            &trace.ct_index,
            CrossSignRegistry::from_disclosures(&trace.cross_sign_disclosures),
            PipelineOptions {
                threads,
                ..PipelineOptions::default()
            },
        );
        if let Some(r) = registry {
            pipeline = pipeline.with_metrics(Arc::clone(r));
        }
        pipeline.analyze(&trace.ssl_records, &trace.x509_records, Some(&weights))
    };

    let plain = analyze(&trace, 2, None);
    let registry = Arc::new(Registry::new());
    let observed = analyze(&trace, 2, Some(&registry));
    let mut lab = Lab {
        trace,
        analysis: plain,
    };
    let render = |lab: &Lab| {
        (
            table2(lab).rendered,
            table3(lab).rendered,
            table7(lab).rendered,
        )
    };
    let without_metrics = render(&lab);
    lab.analysis = observed;
    assert_eq!(
        without_metrics,
        render(&lab),
        "attaching a metrics registry changed the rendered tables"
    );

    let fingerprint_at = |threads: usize| {
        let registry = Arc::new(Registry::new());
        analyze(&lab.trace, threads, Some(&registry));
        registry.snapshot().deterministic_fingerprint()
    };
    let baseline = fingerprint_at(1);
    assert_eq!(
        baseline,
        registry.snapshot().deterministic_fingerprint(),
        "threads = 2 snapshot diverged from sequential"
    );
    for threads in [2, 8] {
        assert_eq!(
            baseline,
            fingerprint_at(threads),
            "deterministic snapshot section diverged at threads = {threads}"
        );
    }
}
