//! Thread-count invariance: the parallel pipeline must render the exact
//! same paper artifacts as the sequential one, byte for byte.

use certchain_bench::{table2, table3, table7, Lab};
use certchain_chainlab::{CrossSignRegistry, Pipeline, PipelineOptions};
use certchain_workload::{CampusProfile, CampusTrace};

#[test]
fn tables_are_byte_identical_across_thread_counts() {
    let trace = CampusTrace::generate_with(CampusProfile::quick(), 0);
    let weights: Vec<f64> = trace.conn_meta.iter().map(|m| m.weight).collect();

    let analyze = |trace: &CampusTrace, threads: usize| {
        let pipeline = Pipeline::with_options(
            &trace.eco.trust,
            &trace.ct_index,
            CrossSignRegistry::from_disclosures(&trace.cross_sign_disclosures),
            PipelineOptions {
                threads,
                ..PipelineOptions::default()
            },
        );
        pipeline.analyze(&trace.ssl_records, &trace.x509_records, Some(&weights))
    };

    let baseline = analyze(&trace, 1);
    let mut lab = Lab {
        trace,
        analysis: baseline,
    };
    let render = |lab: &Lab| {
        (
            table2(lab).rendered,
            table3(lab).rendered,
            table7(lab).rendered,
        )
    };
    let sequential = render(&lab);

    for threads in [2, 8] {
        lab.analysis = analyze(&lab.trace, threads);
        let parallel = render(&lab);
        assert_eq!(sequential, parallel, "threads = {threads} diverged");
    }
}
