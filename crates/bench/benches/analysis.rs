//! Analysis-pipeline benchmarks: the paper's per-stage costs over a
//! generated trace — trace generation, enrichment + categorization, path
//! analysis, interception detection.

use certchain_bench::Lab;
use certchain_chainlab::matchpath::analyze;
use certchain_chainlab::{CrossSignRegistry, Pipeline, PipelineOptions};
use certchain_workload::{CampusProfile, CampusTrace};
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};

fn tiny_profile() -> CampusProfile {
    // Smaller than `quick` so per-iteration time stays sane under Criterion.
    CampusProfile {
        seed: 7,
        chain_scale: 0.0005,
        conn_scale: 0.00005,
        public_chains: 100,
        public_conns_per_chain: 2,
    }
}

fn bench_trace_generation(c: &mut Criterion) {
    let mut group = c.benchmark_group("workload");
    group.sample_size(10);
    group.bench_function("generate_tiny_trace", |b| {
        b.iter(|| CampusTrace::generate(tiny_profile()))
    });
    group.finish();
}

fn bench_pipeline(c: &mut Criterion) {
    let trace = CampusTrace::generate(tiny_profile());
    let weights: Vec<f64> = trace.conn_meta.iter().map(|m| m.weight).collect();
    let mut group = c.benchmark_group("pipeline");
    group.sample_size(10);
    group.bench_function("full_analysis_tiny_trace", |b| {
        b.iter(|| {
            let pipeline = Pipeline::new(
                &trace.eco.trust,
                &trace.ct_index,
                CrossSignRegistry::from_disclosures(&trace.cross_sign_disclosures),
            );
            pipeline.analyze(&trace.ssl_records, &trace.x509_records, Some(&weights))
        })
    });
    group.finish();
}

fn bench_pipeline_threads(c: &mut Criterion) {
    let trace = CampusTrace::generate(tiny_profile());
    let weights: Vec<f64> = trace.conn_meta.iter().map(|m| m.weight).collect();
    let mut group = c.benchmark_group("pipeline/threads");
    group.sample_size(10);
    for threads in [1usize, 2, 4, 8] {
        group.bench_with_input(
            BenchmarkId::from_parameter(threads),
            &threads,
            |b, &threads| {
                b.iter(|| {
                    let pipeline = Pipeline::with_options(
                        &trace.eco.trust,
                        &trace.ct_index,
                        CrossSignRegistry::from_disclosures(&trace.cross_sign_disclosures),
                        PipelineOptions {
                            threads,
                            ..PipelineOptions::default()
                        },
                    );
                    pipeline.analyze(&trace.ssl_records, &trace.x509_records, Some(&weights))
                })
            },
        );
    }
    group.finish();
}

fn bench_trace_generation_threads(c: &mut Criterion) {
    let mut group = c.benchmark_group("workload/threads");
    group.sample_size(10);
    for threads in [1usize, 2, 4, 8] {
        group.bench_with_input(
            BenchmarkId::from_parameter(threads),
            &threads,
            |b, &threads| b.iter(|| CampusTrace::generate_with(tiny_profile(), threads)),
        );
    }
    group.finish();
}

fn bench_matchpath(c: &mut Criterion) {
    let lab = Lab::new(tiny_profile());
    // Pick a long hybrid chain for a representative path analysis.
    let chain = lab
        .analysis
        .chains
        .iter()
        .max_by_key(|c| c.certs.len())
        .expect("chains exist");
    let registry = CrossSignRegistry::new();
    c.bench_function("matchpath/longest_chain", |b| {
        b.iter(|| analyze(std::hint::black_box(&chain.certs), &registry))
    });
}

criterion_group!(
    benches,
    bench_trace_generation,
    bench_pipeline,
    bench_pipeline_threads,
    bench_trace_generation_threads,
    bench_matchpath
);
criterion_main!(benches);
