//! Table 5 / §5 benchmarks: scanning the evolved population and running
//! both validation methods (the `validators` and `revisit` targets from
//! DESIGN.md's experiment index).

use certchain_scanner::{compare, scan_all, validate_issuer_subject, validate_keysig};
use certchain_workload::evolve::RevisitPopulation;
use certchain_workload::pki::Ecosystem;
use certchain_workload::servers::hybrid;
use criterion::{criterion_group, criterion_main, Criterion};

fn population() -> &'static RevisitPopulation {
    static CELL: std::sync::OnceLock<RevisitPopulation> = std::sync::OnceLock::new();
    CELL.get_or_init(|| {
        let mut eco = Ecosystem::bootstrap(17);
        let hybrid_servers = hybrid::build(&mut eco, 0);
        let refs: Vec<_> = hybrid_servers.iter().collect();
        RevisitPopulation::generate(&mut eco, &refs)
    })
}

fn bench_validators(c: &mut Criterion) {
    let results = scan_all(population());
    // One representative multi-certificate chain.
    let sample = results
        .iter()
        .find(|r| r.chain.len() >= 3)
        .expect("multi-cert chains exist");

    c.bench_function("validators/issuer_subject_per_chain", |b| {
        b.iter(|| validate_issuer_subject(std::hint::black_box(sample)))
    });
    c.bench_function("validators/keysig_per_chain", |b| {
        b.iter(|| validate_keysig(std::hint::black_box(sample)))
    });

    let mut group = c.benchmark_group("revisit");
    group.sample_size(10);
    group.bench_function("table5_full_corpus", |b| {
        b.iter(|| compare(std::hint::black_box(&results)))
    });
    group.bench_function("scan_all_12676_servers", |b| {
        b.iter(|| scan_all(population()))
    });
    group.finish();
}

criterion_group!(benches, bench_validators);
criterion_main!(benches);
