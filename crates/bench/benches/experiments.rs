//! One bench target per paper table/figure: how long each experiment's
//! statistics take to regenerate from an already-analyzed trace.
//!
//! (The absolute-number reproduction itself is the `experiments` binary;
//! these benches time the table/figure computations.)

use certchain_bench::{
    figure1, figure4, figure5, figure6, figure7_8, table1, table2, table3, table4, table6, table7,
    table8, Lab,
};
use certchain_workload::CampusProfile;
use criterion::{criterion_group, criterion_main, Criterion};

fn lab() -> &'static Lab {
    static CELL: std::sync::OnceLock<Lab> = std::sync::OnceLock::new();
    CELL.get_or_init(|| {
        Lab::new(CampusProfile {
            seed: 7,
            chain_scale: 0.0005,
            conn_scale: 0.00005,
            public_chains: 100,
            public_conns_per_chain: 2,
        })
    })
}

fn bench_tables(c: &mut Criterion) {
    let lab = lab();
    let mut group = c.benchmark_group("experiments");
    group.sample_size(20);
    group.bench_function("table1_interception_census", |b| b.iter(|| table1(lab)));
    group.bench_function("table2_chain_statistics", |b| b.iter(|| table2(lab)));
    group.bench_function("table3_hybrid_categories", |b| b.iter(|| table3(lab)));
    group.bench_function("table4_port_distribution", |b| b.iter(|| table4(lab)));
    group.bench_function("table6_anchored_entities", |b| b.iter(|| table6(lab)));
    group.bench_function("table7_no_path_categories", |b| b.iter(|| table7(lab)));
    group.bench_function("table8_nonpub_paths", |b| b.iter(|| table8(lab)));
    group.finish();
}

fn bench_figures(c: &mut Criterion) {
    let lab = lab();
    let mut group = c.benchmark_group("experiments");
    group.sample_size(20);
    group.bench_function("figure1_length_cdf", |b| b.iter(|| figure1(lab)));
    group.bench_function("figure4_structure_matrix", |b| b.iter(|| figure4(lab)));
    group.bench_function("figure5_hybrid_graph", |b| b.iter(|| figure5(lab)));
    group.bench_function("figure6_mismatch_ratios", |b| b.iter(|| figure6(lab)));
    group.bench_function("figure7_8_complex_pki", |b| b.iter(|| figure7_8(lab)));
    group.finish();
}

criterion_group!(benches, bench_tables, bench_figures);
criterion_main!(benches);
