//! Substrate micro-benchmarks: DER, SHA-256, simulated signatures,
//! Merkle proofs — the building blocks every experiment sits on.

use certchain_asn1::Decoder;
use certchain_cryptosim::{sign, verify, KeyPair, Sha256};
use certchain_ctlog::merkle::{leaf_hash, verify_inclusion, MerkleTree};
use certchain_x509::{Certificate, CertificateBuilder, DistinguishedName, Serial, Validity};
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};

fn sample_cert() -> Certificate {
    let ca = KeyPair::derive(1, "bench:ca");
    let leaf = KeyPair::derive(1, "bench:leaf");
    CertificateBuilder::new()
        .serial(Serial::from_u64(42))
        .issuer(DistinguishedName::cn_o("Bench CA", "Bench Org"))
        .subject(DistinguishedName::cn("bench.example.org"))
        .validity(Validity::days_from(
            certchain_asn1::Asn1Time::from_unix(0),
            365,
        ))
        .public_key(leaf.public().clone())
        .leaf_for("bench.example.org")
        .sign(&ca)
}

fn bench_sha256(c: &mut Criterion) {
    let mut group = c.benchmark_group("sha256");
    for size in [64usize, 1024, 16 * 1024] {
        let data = vec![0xabu8; size];
        group.throughput(Throughput::Bytes(size as u64));
        group.bench_with_input(BenchmarkId::from_parameter(size), &data, |b, data| {
            b.iter(|| Sha256::digest(std::hint::black_box(data)))
        });
    }
    group.finish();
}

fn bench_der(c: &mut Criterion) {
    let cert = sample_cert();
    let der = cert.der().to_vec();
    c.bench_function("der/parse_certificate", |b| {
        b.iter(|| Certificate::parse(std::hint::black_box(&der)).unwrap())
    });
    c.bench_function("der/walk_tlv", |b| {
        b.iter(|| {
            let mut dec = Decoder::new(std::hint::black_box(&der));
            dec.any().unwrap()
        })
    });
}

fn bench_simsig(c: &mut Criterion) {
    let kp = KeyPair::derive(3, "bench:sig");
    let cert = sample_cert();
    let tbs = cert.tbs_der();
    let sig = sign(&kp, &tbs);
    c.bench_function("simsig/sign", |b| {
        b.iter(|| sign(&kp, std::hint::black_box(&tbs)))
    });
    c.bench_function("simsig/verify", |b| {
        b.iter(|| verify(kp.public(), std::hint::black_box(&tbs), &sig))
    });
}

fn bench_merkle(c: &mut Criterion) {
    let mut tree = MerkleTree::new();
    for i in 0..1024u32 {
        tree.push(&i.to_be_bytes());
    }
    let root = tree.root();
    let proof = tree.prove_inclusion(513).unwrap();
    let leaf = leaf_hash(&513u32.to_be_bytes());
    c.bench_function("merkle/root_1024", |b| b.iter(|| tree.root()));
    c.bench_function("merkle/prove_inclusion_1024", |b| {
        b.iter(|| tree.prove_inclusion(std::hint::black_box(513)).unwrap())
    });
    c.bench_function("merkle/verify_inclusion_1024", |b| {
        b.iter(|| verify_inclusion(&leaf, 513, 1024, &proof, &root))
    });
}

criterion_group!(benches, bench_sha256, bench_der, bench_simsig, bench_merkle);
criterion_main!(benches);
